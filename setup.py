"""Packaging for the Mercury & Freon reproduction.

Metadata lives here (plus setup.cfg) rather than pyproject.toml so that
`pip install -e .` works on offline environments without the `wheel`
package: with a pyproject.toml present, pip insists on a PEP 660
editable build, which setuptools cannot complete without wheel.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Mercury & Freon: temperature emulation and management for "
        "server systems (ASPLOS'06 reproduction)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
