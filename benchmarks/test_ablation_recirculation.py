"""Ablation: inter-machine air recirculation (section 2.2's "more
complex graphs").

Figure 1(c) assumes "the ideal situation in which there is no air
recirculation across the machines"; the paper notes recirculation "can
also be represented using more complex graphs".  This sweep builds ring
clusters where each machine re-ingests a fraction of its neighbour's
exhaust and measures how inlet and CPU temperatures climb with that
fraction — the effect data-center designers fight with hot/cold aisles.
"""

import pytest

from repro.config import table1
from repro.config.layouts import recirculating_cluster, validation_cluster
from repro.core.solver import Solver

from .conftest import emit

FRACTIONS = (0.0, 0.1, 0.25)
UTILIZATION = 0.8


def run_cluster(recirculation):
    if recirculation == 0.0:
        cluster = validation_cluster()
    else:
        cluster = recirculating_cluster(recirculation=recirculation)
    solver = Solver(
        list(cluster.machines.values()), cluster=cluster, record=False
    )
    for machine in solver.machines:
        solver.set_utilization(machine, table1.CPU, UTILIZATION)
        solver.set_utilization(machine, table1.DISK_PLATTERS, 0.4)
    solver.run(6000)
    machine = next(iter(solver.machines))
    return (
        solver.temperature(machine, "inlet"),
        solver.temperature(machine, table1.CPU),
    )


def test_ablation_recirculation(benchmark):
    rows = [f"{'recirc':>7} {'inlet (C)':>10} {'CPU (C)':>9}"]
    measured = {}
    for fraction in FRACTIONS:
        inlet, cpu = run_cluster(fraction)
        measured[fraction] = (inlet, cpu)
        rows.append(f"{fraction:>7.2f} {inlet:>10.2f} {cpu:>9.2f}")

    summary = (
        "Ablation — inter-machine recirculation (ring of 4 machines at "
        f"{UTILIZATION:.0%} CPU)\n" + "\n".join(rows)
        + "\n\nInterpretation: recirculated exhaust raises every inlet "
        "above the AC supply and the CPUs with it — the graph-level "
        "mechanism behind rack-top hot spots, expressible in Mercury by "
        "adding two edges per machine."
    )
    emit("ablation_recirculation", summary)

    # Monotone: more recirculation, hotter inlets and CPUs.
    assert measured[0.0][0] == pytest.approx(table1.INLET_TEMPERATURE, abs=0.05)
    assert measured[0.1][0] > measured[0.0][0] + 0.2
    assert measured[0.25][0] > measured[0.1][0] + 0.2
    assert measured[0.25][1] > measured[0.0][1] + 0.5

    benchmark.pedantic(run_cluster, args=(0.1,), iterations=1, rounds=1)
