"""Event-kernel idle fast-forward gate: big wins idle, free when busy.

Two scenarios on the pure-python reference engine:

* ``idle`` — a 40-machine cluster under a flat trickle of load with no
  control policy.  After the warm-up transient decays below
  ``idle_epsilon`` the solver coasts (holds temperatures, advances
  time), so most of the run skips the thermal solve entirely.  The
  gate: >= 2x wall-clock speedup with fast-forward on.  The price is
  the frozen residual transient, bounded by ``tau * idle_epsilon``
  (the cluster's thermal time constant is ~450 s); the measured
  deviation is recorded so the trade is visible in the artifact.

* ``dense`` — the Figure 11 scenario (diurnal trace plus the emergency
  fiddle script under the Freon policy), whose inputs never go quiet,
  so coasting never engages and fast-forward is pure bookkeeping.  The
  rounds are interleaved (off, on, repeat) and best-of-N compared,
  which cancels machine-wide drift.  The gate: < 2% overhead.

Writes ``benchmark_results/BENCH_kernel.json`` for the CI artifact.
"""

import time

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.cluster.tracegen import RequestTrace, TracePoint

from .conftest import emit, write_bench

#: Idle-scenario shape: a large cluster idling for an hour of sim time.
IDLE_MACHINES = 40
IDLE_DURATION = 7200.0
IDLE_RATE = 40.0

#: Coasting threshold for the idle gate.  The frozen residual is
#: bounded by the thermal time constant (~450 s) times this epsilon.
IDLE_EPSILON = 5e-3
THERMAL_TAU = 450.0

#: Fast-forward must at least double idle throughput.
IDLE_SPEEDUP_FLOOR = 2.0

#: Dense-scenario shape and gate.
DENSE_DURATION = 1200.0
DENSE_ROUNDS = 5
DENSE_OVERHEAD_CEILING = 0.02


def _idle_simulation(fast_forward):
    names = [f"machine{i}" for i in range(1, IDLE_MACHINES + 1)]
    trace = RequestTrace(
        [TracePoint(0.0, IDLE_RATE), TracePoint(IDLE_DURATION, IDLE_RATE)]
    )
    return ClusterSimulation(
        policy="none", machines=names, trace=trace,
        idle_fast_forward=fast_forward, idle_epsilon=IDLE_EPSILON,
    )


def _dense_run_seconds(fast_forward):
    simulation = ClusterSimulation(
        policy="freon", fiddle_script=emergency_script(),
        idle_fast_forward=fast_forward,
    )
    start = time.perf_counter()
    simulation.run(DENSE_DURATION)
    elapsed = time.perf_counter() - start
    assert simulation.solver.coasted_ticks == 0  # never quiet, never coasts
    return elapsed


def test_kernel_fastforward_gate():
    # --- idle scenario: one timed run per configuration -----------------
    slow = _idle_simulation(fast_forward=False)
    start = time.perf_counter()
    slow.run(IDLE_DURATION)
    idle_off_seconds = time.perf_counter() - start

    fast = _idle_simulation(fast_forward=True)
    start = time.perf_counter()
    fast.run(IDLE_DURATION)
    idle_on_seconds = time.perf_counter() - start

    speedup = idle_off_seconds / idle_on_seconds
    coasted = fast.solver.coasted_ticks
    deviation = max(
        abs(temp - fast.solver.machine(name).temperatures[node])
        for name in slow.machines
        for node, temp in slow.solver.machine(name).temperatures.items()
    )

    # --- dense scenario: interleaved best-of-N ---------------------------
    _dense_run_seconds(False)  # warm caches outside the timed rounds
    best_off = best_on = float("inf")
    for _ in range(DENSE_ROUNDS):
        best_off = min(best_off, _dense_run_seconds(False))
        best_on = min(best_on, _dense_run_seconds(True))
    overhead = best_on / best_off - 1.0

    results = {
        "engine": "python",
        "idle": {
            "machines": IDLE_MACHINES,
            "duration": IDLE_DURATION,
            "idle_epsilon": IDLE_EPSILON,
            "off_seconds": idle_off_seconds,
            "on_seconds": idle_on_seconds,
            "speedup": speedup,
            "coasted_ticks": coasted,
            "total_ticks": int(IDLE_DURATION),
            "max_temp_deviation_c": deviation,
            "deviation_bound_c": THERMAL_TAU * IDLE_EPSILON,
            "speedup_floor": IDLE_SPEEDUP_FLOOR,
        },
        "dense": {
            "scenario": "fig11 emergency, freon policy",
            "duration": DENSE_DURATION,
            "rounds": DENSE_ROUNDS,
            "best_off_seconds": best_off,
            "best_on_seconds": best_on,
            "overhead": overhead,
            "overhead_ceiling": DENSE_OVERHEAD_CEILING,
        },
    }
    write_bench("BENCH_kernel.json", results)

    emit(
        "kernel_fastforward",
        "Idle fast-forward — python engine\n"
        f"idle  ({IDLE_MACHINES} machines, {IDLE_DURATION:.0f} s): "
        f"off {idle_off_seconds:.2f} s, on {idle_on_seconds:.2f} s, "
        f"speedup {speedup:.2f}x, coasted {coasted}/{int(IDLE_DURATION)}, "
        f"max deviation {deviation:.3f} C "
        f"(bound {THERMAL_TAU * IDLE_EPSILON:.2f} C)\n"
        f"dense (fig11, best of {DENSE_ROUNDS}): "
        f"off {best_off:.3f} s, on {best_on:.3f} s, "
        f"overhead {overhead * 100:+.2f}%\n",
    )

    # Honesty check: the residual the coast froze stays within the
    # documented bound.
    assert deviation <= THERMAL_TAU * IDLE_EPSILON, (
        f"frozen residual {deviation:.3f} C exceeds the "
        f"{THERMAL_TAU * IDLE_EPSILON:.2f} C bound"
    )
    assert coasted > 0

    # The gates.
    assert speedup >= IDLE_SPEEDUP_FLOOR, (
        f"idle fast-forward speedup {speedup:.2f}x "
        f"(gate: >= {IDLE_SPEEDUP_FLOOR:.1f}x)"
    )
    assert overhead < DENSE_OVERHEAD_CEILING, (
        f"fast-forward bookkeeping costs {overhead * 100:.2f}% on the "
        f"dense scenario (gate: < {DENSE_OVERHEAD_CEILING * 100:.0f}%)"
    )
