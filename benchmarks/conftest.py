"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures: it runs
the experiment (once — the expensive fixtures are session-scoped), writes
the figure/table data under ``benchmark_results/``, prints a summary, and
times a representative kernel with pytest-benchmark.
"""

import json
import os
import resource
import sys
from pathlib import Path

import pytest

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.calibration import calibrate, emulate, measure_run
from repro.machine.server import SimulatedServer
from repro.machine.workloads import (
    MixedBenchmark,
    cpu_microbenchmark,
    disk_microbenchmark,
)

#: The one physical machine every section 3.1 experiment runs on.
MACHINE_SEED = 11

#: Solver engine the experiment benchmarks run on.  Default is the
#: reference python engine (the one the golden traces were generated
#: with); export REPRO_ENGINE=compiled to rerun every figure on the
#: vectorized NumPy engine.
SOLVER_ENGINE = os.environ.get("REPRO_ENGINE", "python")

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmark_results"


def emit(name: str, text: str) -> None:
    """Write a result table under benchmark_results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n[{name}] written to {path}")
    print(text)


def peak_rss_kb() -> int:
    """The process's peak resident set size so far, in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalize so
    every BENCH artifact records the same unit.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def write_bench(name: str, payload: dict) -> Path:
    """Write one BENCH_*.json artifact under benchmark_results/.

    The shared writer for every benchmark's machine-readable output:
    stamps the process's peak RSS into the payload (memory regressions
    gate alongside throughput) and pretty-prints deterministically.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload["peak_rss_kb"] = peak_rss_kb()
    path = RESULTS_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[{name}] written to {path}")
    return path


def series_rows(times, *columns, header=(), every=60):
    """Format aligned time-series rows, sampled every N seconds."""
    lines = []
    if header:
        lines.append("  ".join(f"{h:>12}" for h in header))
    for idx in range(0, len(times), every):
        row = [f"{times[idx]:>12.0f}"]
        row += [f"{column[idx]:>12.3f}" for column in columns]
        lines.append("  ".join(row))
    return "\n".join(lines)


@pytest.fixture(scope="session")
def validation_layout():
    """The Table 1 server layout."""
    return validation_machine()


@pytest.fixture(scope="session")
def calibration_runs(validation_layout):
    """The Figure 5/6 calibration recordings (paper-length runs)."""
    cpu_server = SimulatedServer(
        validation_layout, workload=cpu_microbenchmark(), seed=MACHINE_SEED
    )
    cpu_run = measure_run(
        cpu_server, duration=cpu_microbenchmark().duration, interval=1.0
    )
    disk_server = SimulatedServer(
        validation_layout, workload=disk_microbenchmark(), seed=MACHINE_SEED
    )
    disk_run = measure_run(
        disk_server, duration=disk_microbenchmark().duration, interval=1.0
    )
    return cpu_run, disk_run


@pytest.fixture(scope="session")
def calibrated_fit(validation_layout, calibration_runs):
    """Mercury's constants fitted against the calibration recordings."""
    cpu_run, disk_run = calibration_runs
    return calibrate(validation_layout, [cpu_run, disk_run], dt=5.0)


@pytest.fixture(scope="session")
def mixed_validation(validation_layout, calibrated_fit):
    """The Figure 7/8 validation run: mixed benchmark, no re-tuning."""
    server = SimulatedServer(
        validation_layout, workload=MixedBenchmark(duration=5000.0),
        seed=MACHINE_SEED,
    )
    run = measure_run(server, duration=5000.0, interval=1.0)
    emulated = emulate(
        validation_layout, run, k_overrides=calibrated_fit.k_overrides, dt=1.0
    )
    return run, emulated
