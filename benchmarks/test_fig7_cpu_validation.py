"""Figure 7: real-system CPU-air validation on the mixed benchmark.

After calibration, the inputs are frozen and Mercury is driven by a
"more challenging benchmark" exercising CPU and disk simultaneously with
rapidly changing utilizations.  The paper's claim: emulated temperatures
stay within 1 Celsius of the running system at all times.
"""

import numpy as np

from repro.config import table1
from repro.core.calibration import smooth_series

from .conftest import emit, series_rows


def test_fig7_cpu_air_validation(benchmark, mixed_validation):
    run, emulated = mixed_validation

    measured = run.temperatures[table1.CPU_AIR]
    smoothed = smooth_series(measured)
    series = emulated[table1.CPU_AIR]
    warmup = 120
    err = np.abs(np.asarray(smoothed[warmup:]) - np.asarray(series[warmup:]))

    table = series_rows(
        run.times,
        [u * 100 for u in run.utilizations[table1.CPU]],
        measured,
        series,
        header=("time(s)", "cpu util %", "real (C)", "emulated (C)"),
        every=120,
    )
    corr = float(np.corrcoef(
        np.asarray(smoothed[warmup:]), np.asarray(series[warmup:])
    )[0, 1])
    summary = (
        f"Figure 7 — CPU-air validation, mixed benchmark "
        f"({run.duration:.0f} s), no input adjustments\n"
        f"rmse={np.sqrt((err**2).mean()):.3f} C, max={err.max():.3f} C, "
        f"trend correlation={corr:.4f}\n"
        f"paper: within 1 C at all times (sensor accuracy itself 1.5 C)\n\n"
        + table
    )
    emit("fig7_cpu_validation", summary)

    assert err.max() < 1.0
    assert corr > 0.98

    def kernel():
        e = np.abs(np.asarray(smoothed[warmup:]) - np.asarray(series[warmup:]))
        return float(e.max())

    benchmark(kernel)
