"""Ablation: Freon's remote throttling vs CPU-local DVFS (section 4.3).

The paper argues the two can look similar under least-connections
balancing ("these techniques may produce a load distribution effect
similar to Freon's") but differ in mechanism: DVFS needs hardware
support, moves in coarse discrete steps, and cuts the machine's
processing capacity; Freon trims load continuously from the balancer.
This experiment runs both (plus an unmanaged baseline) on the Figure 11
scenario and reports temperatures, throughput, and lost capacity.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1

from .conftest import emit


def run_policy(policy):
    sim = ClusterSimulation(policy=policy, fiddle_script=emergency_script())
    return sim, sim.run(2000)


def test_ablation_remote_vs_local_throttling(benchmark):
    results = {}
    for policy in ("none", "freon", "local-dvfs"):
        results[policy] = run_policy(policy)

    rows = [
        f"{'policy':<12} {'m1 peak':>8} {'m3 peak':>8} {'drops %':>8} "
        f"{'actions':>8}"
    ]
    for policy, (sim, result) in results.items():
        actions = len(result.adjustments) + len(result.pstate_changes)
        rows.append(
            f"{policy:<12} {result.max_temperature('machine1'):>8.2f} "
            f"{result.max_temperature('machine3'):>8.2f} "
            f"{result.drop_fraction * 100:>8.2f} {actions:>8d}"
        )

    _, dvfs_result = results["local-dvfs"]
    throttled_seconds = sum(
        1.0 for r in dvfs_result.records
        if any(
            r.servers[m].cpu_utilization > 0.8 for m in ("machine1", "machine3")
        )
    )
    summary = (
        "Ablation — remote throttling (Freon) vs local DVFS vs unmanaged "
        "(Figure 11 scenario)\n" + "\n".join(rows)
        + f"\nDVFS P-state changes: "
        f"{[(c.time, c.index) for c in dvfs_result.pstate_changes]}\n"
        "\nInterpretation: with least-connections balancing both "
        "managers hold the hot CPUs at the threshold and drop nothing, "
        "exactly as section 4.3 predicts — but DVFS does it by burning "
        "the hot machines' utilization (slower clock doing the same "
        "work) and requires hardware support, while Freon acts purely "
        "from the balancer and generalizes to disks and NICs."
    )
    emit("ablation_local_throttling", summary)

    _, none_result = results["none"]
    _, freon_result = results["freon"]
    # Unmanaged: hot machines exceed the high threshold unchecked.
    assert none_result.max_temperature("machine1") > table1.T_HIGH_CPU + 1.0
    # Both managers control temperature without drops.
    for policy in ("freon", "local-dvfs"):
        _, result = results[policy]
        assert result.max_temperature("machine1") < table1.T_RED_CPU
        assert result.drop_fraction == 0.0
    # DVFS raises the hot machines' utilization (same work, slower clock):
    dvfs_peak_util = max(dvfs_result.series("machine1", "cpu_utilization"))
    freon_peak_util = max(freon_result.series("machine1", "cpu_utilization"))
    assert dvfs_peak_util > freon_peak_util + 0.05

    benchmark.pedantic(run_policy, args=("local-dvfs",), iterations=1, rounds=1)
