"""Ablation: what calibration buys (section 2.2's "sometimes unnecessary").

Compares Mercury driven by the nominal Table 1 constants against the
calibrated constants on the held-out mixed benchmark.  The paper claims
users "can improve accuracy by calibrating the inputs with a few real
measurements"; this quantifies the improvement on our substrate.
"""

import numpy as np

from repro.config import table1
from repro.core.calibration import emulate, smooth_series

from .conftest import emit


def test_ablation_calibration_vs_nominal(
    benchmark, validation_layout, calibrated_fit, mixed_validation
):
    run, emulated_fitted = mixed_validation
    emulated_nominal = emulate(validation_layout, run, dt=1.0)

    warmup = 120
    lines = [f"{'node':<16} {'variant':<11} {'rmse (C)':>9} {'max (C)':>9}"]
    improvements = {}
    for node in (table1.CPU_AIR, table1.DISK_PLATTERS):
        smoothed = np.asarray(smooth_series(run.temperatures[node])[warmup:])
        for label, series in (
            ("nominal", emulated_nominal[node]),
            ("calibrated", emulated_fitted[node]),
        ):
            err = np.abs(smoothed - np.asarray(series[warmup:]))
            lines.append(
                f"{node:<16} {label:<11} {np.sqrt((err**2).mean()):>9.3f} "
                f"{err.max():>9.3f}"
            )
            improvements[(node, label)] = err.max()

    summary = (
        "Ablation — calibrated vs nominal Table 1 inputs, mixed benchmark\n"
        + "\n".join(lines)
        + "\n\nInterpretation: nominal inputs already give trend-accurate "
        "behaviour (the paper: calibration 'is sometimes unnecessary'); "
        "calibration tightens the absolute error below the 1 C bound."
    )
    emit("ablation_calibration", summary)

    for node in (table1.CPU_AIR, table1.DISK_PLATTERS):
        assert improvements[(node, "calibrated")] <= improvements[
            (node, "nominal")
        ] + 0.05
        assert improvements[(node, "calibrated")] < 1.0

    benchmark.pedantic(
        emulate,
        args=(validation_layout, run),
        kwargs={"dt": 1.0},
        iterations=1,
        rounds=1,
    )
