"""Figure 12: Freon-EC — combined energy conservation and thermal
management.

Same trace and emergencies as Figure 11, machines 1 and 3 in region 0
and the others in region 1.  Expected shape (paper): the active
configuration shrinks to a single server in the overnight valley (by
60 s), grows back to four as load rises without dropping requests,
machines cool ~10 C while off, the peak-time emergencies are handled by
the base policy, and the configuration shrinks again as load subsides.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1

from .conftest import SOLVER_ENGINE, emit, series_rows


@pytest.fixture(scope="module")
def ec_result():
    sim = ClusterSimulation(
        policy="freon-ec", fiddle_script=emergency_script(), engine=SOLVER_ENGINE
    )
    return sim, sim.run(2000)


def test_fig12_freon_ec(benchmark, ec_result):
    sim, result = ec_result
    times = result.times()

    temp_table = series_rows(
        times,
        *[result.series(m, "cpu_temperature") for m in sim.machines],
        header=("time(s)", "m1 (C)", "m2 (C)", "m3 (C)", "m4 (C)"),
        every=120,
    )
    util_table = series_rows(
        times,
        *(
            [
                [u * 100 for u in result.series(m, "cpu_utilization")]
                for m in sim.machines
            ]
            + [[float(a) for a in result.active_series()]]
        ),
        header=("time(s)", "m1 %", "m2 %", "m3 %", "m4 %", "active"),
        every=120,
    )
    active = result.active_series()
    transitions = [(0, active[0])] + [
        (idx, b)
        for idx, (a, b) in enumerate(zip(active, active[1:]), start=1)
        if a != b
    ]
    summary = (
        "Figure 12 — Freon-EC: CPU temperatures (top), utilizations and "
        "active-server count (bottom)\n"
        f"regions: m1+m3 in region0, m2+m4 in region1; U_h={table1.EC_UTIL_HIGH},"
        f" U_l={table1.EC_UTIL_LOW}\n"
        f"reconfigurations: "
        f"{[(e.time, e.action, e.machine, e.reason) for e in result.ec_events]}\n"
        f"active-server transitions (t, count): {transitions}\n"
        f"adjustments: {[(t, m, round(o, 3)) for t, m, o in result.adjustments]}\n"
        f"dropped requests: {result.drop_fraction * 100:.2f}% (paper: 0%)\n\n"
        "CPU temperature (C):\n" + temp_table
        + "\n\nCPU utilization (%) and active servers:\n" + util_table
    )
    emit("fig12_freon_ec", summary)

    # Shape assertions.
    assert result.drop_fraction == 0.0
    assert min(active[:300]) == 1          # valley: down to one server
    assert max(active) == 4                # peak: everything on
    assert result.records[-1].active_servers < 4  # evening shrink
    assert {m for _, m, _ in result.adjustments} & {"machine1", "machine3"}
    for machine in sim.machines:
        assert result.max_temperature(machine) < table1.T_RED_CPU

    def run_experiment():
        sim2 = ClusterSimulation(
            policy="freon-ec", fiddle_script=emergency_script(),
            engine=SOLVER_ENGINE,
        )
        return sim2.run(2000)

    benchmark.pedantic(run_experiment, iterations=1, rounds=1)
