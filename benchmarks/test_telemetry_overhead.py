"""Telemetry overhead gate: disabled must be free, enabled must be cheap.

Three configurations of the same 40-machine compiled-engine solver loop:

* ``baseline`` — no telemetry argument at all (the pre-telemetry path);
* ``disabled`` — explicit ``telemetry=None`` resolving to the shared
  null facade (this IS the default; measured separately so the gate can
  distinguish "flag check" cost from measurement noise);
* ``enabled`` — a live :class:`~repro.telemetry.Telemetry` recording
  per-tick latency histograms and counters.

The rounds are interleaved (baseline, disabled, enabled, repeat) and the
best-of-N throughput per configuration is compared, which cancels
machine-wide drift.  The gate: the disabled path stays within noise of
baseline (< 5%), and full recording costs < 10% — so the compiled
engine's throughput win survives instrumentation.

Writes ``benchmark_results/BENCH_telemetry.json`` for the CI artifact.
"""

import time

import pytest

from repro.config import table1
from repro.config.layouts import validation_cluster
from repro.core.compiled import have_numpy
from repro.core.solver import Solver
from repro.telemetry import Telemetry

from .conftest import emit, write_bench

#: Cluster size of the gate (the scale the compiled engine targets).
N_MACHINES = 40

#: Interleaved measurement rounds per configuration.
ROUNDS = 5

#: Ticks per measurement round.
TICKS = 200

#: Disabled telemetry must stay within measurement noise of baseline.
DISABLED_TOLERANCE = 0.05

#: Full recording must cost less than this fraction of throughput.
ENABLED_TOLERANCE = 0.10


def _make_solver(telemetry):
    names = [f"machine{i}" for i in range(1, N_MACHINES + 1)]
    cluster = validation_cluster(machine_names=names)
    solver = Solver(
        list(cluster.machines.values()), cluster=cluster,
        record=False, engine="compiled", telemetry=telemetry,
    )
    for machine in names:
        solver.set_utilization(machine, table1.CPU, 0.7)
    for _ in range(5):  # warm up; the first compiled tick pays compilation
        solver.step()
    return solver


def _round_ticks_per_second(solver) -> float:
    start = time.perf_counter()
    for _ in range(TICKS):
        solver.step()
    return TICKS / (time.perf_counter() - start)


@pytest.mark.skipif(not have_numpy(), reason="compiled engine needs numpy")
def test_telemetry_overhead_gate():
    solvers = {
        "baseline": _make_solver(None),
        "disabled": _make_solver(None),
        "enabled": _make_solver(Telemetry()),
    }
    best = {name: 0.0 for name in solvers}
    for _ in range(ROUNDS):
        for name, solver in solvers.items():
            best[name] = max(best[name], _round_ticks_per_second(solver))

    disabled_overhead = 1.0 - best["disabled"] / best["baseline"]
    enabled_overhead = 1.0 - best["enabled"] / best["baseline"]
    results = {
        "machines": N_MACHINES,
        "engine": "compiled",
        "rounds": ROUNDS,
        "ticks_per_round": TICKS,
        "baseline_ticks_per_sec": best["baseline"],
        "disabled_ticks_per_sec": best["disabled"],
        "enabled_ticks_per_sec": best["enabled"],
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "disabled_tolerance": DISABLED_TOLERANCE,
        "enabled_tolerance": ENABLED_TOLERANCE,
    }
    write_bench("BENCH_telemetry.json", results)

    emit(
        "telemetry_overhead",
        "Telemetry overhead — 40-machine compiled-engine solver loop\n"
        f"{'config':>10} {'best ticks/s':>14} {'overhead':>10}\n"
        f"{'baseline':>10} {best['baseline']:>14.1f} {'-':>10}\n"
        f"{'disabled':>10} {best['disabled']:>14.1f} "
        f"{disabled_overhead * 100:>9.2f}%\n"
        f"{'enabled':>10} {best['enabled']:>14.1f} "
        f"{enabled_overhead * 100:>9.2f}%\n",
    )

    # Sanity: the enabled run actually recorded the loop.
    telemetry = solvers["enabled"].telemetry
    expected_ticks = 5 + ROUNDS * TICKS
    assert telemetry.registry.total("solver_ticks_total") == expected_ticks
    assert telemetry.registry.total("solver_tick_seconds") == expected_ticks

    # The gate.
    assert disabled_overhead < DISABLED_TOLERANCE, (
        f"null-telemetry path costs {disabled_overhead * 100:.2f}% "
        f"(must be within noise)"
    )
    assert enabled_overhead < ENABLED_TOLERANCE, (
        f"enabled telemetry costs {enabled_overhead * 100:.2f}% "
        f"(gate: < {ENABLED_TOLERANCE * 100:.0f}%)"
    )
