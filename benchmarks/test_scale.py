"""Datacenter-scale solve: the flattened array vs the per-machine loop.

The spatial-topology subsystem (``repro.topology``) exists so 1k-10k
machine rooms stay simulable.  Its claim is concrete: the per-machine
reference solver pays Python dict and object costs per machine per
tick, while :class:`~repro.topology.sim.FlatSolver` advances the whole
room as one machines×nodes array with a single vectorized
``tick_group`` call and a sparse recirculation matvec.

This benchmark gates on:

* **Equivalence** — the flattened solve agrees with the per-machine
  python-engine solver within 1e-9 Celsius on a small room (80
  machines, 40 ticks);
* **Throughput** — at 1000 machines the flattened solve is at least
  ``MIN_FLAT_SPEEDUP`` times faster per tick than the per-machine loop;
* **Scale** — 10k machines actually run (ticks/sec and memory are
  recorded, not assumed).

Timing methodology matches ``test_sweep_scaling``: CPU time with the
garbage collector parked, a warmup pass, paired trials, and the minimum
across trials as the estimator, with bounded retries when interference
pushes the ratio under the gate.

Writes ``benchmark_results/BENCH_scale.json`` (ticks/sec at 1k and 10k
machines plus the process's peak RSS) for the CI artifact.
"""

import gc
import time

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.solver import Solver
from repro.topology import FlatSolver, grid_topology

from .conftest import emit, write_bench

#: Room sizes: the speedup gate runs at SMALL, the scale record at BIG.
SMALL = 1000
BIG = 10_000

#: Solver ticks per timed trial at each size.  The per-machine baseline
#: at 1k machines costs ~100 ms/tick, so the trial stays short.
SMALL_TICKS = 10
BIG_TICKS = 25

#: Paired timing trials and bounded retries (min-over-trials estimator).
TRIALS = 3
MAX_EXTRA_TRIALS = 5

#: Required min-over-trials per-tick speedup of the flattened solve over
#: the per-machine python-engine loop at 1000 machines.
MIN_FLAT_SPEEDUP = 10.0

#: Equivalence room: big enough to exercise zones and both edge kinds.
EQUIV_MACHINES = 80
EQUIV_TICKS = 40
EQUIV_TOLERANCE = 1e-9


def _timed(fn):
    """CPU seconds for one call, garbage collector parked."""
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        result = fn()
        return time.process_time() - start, result
    finally:
        gc.enable()


def _flat_solver(machines: int) -> FlatSolver:
    topology = grid_topology(machines, zones=4)
    flat = FlatSolver(topology)
    flat.set_utilization(table1.CPU, 0.6)
    flat.set_utilization(table1.DISK_PLATTERS, 0.3)
    return flat


def _reference_solver(machines: int) -> Solver:
    topology = grid_topology(machines, zones=4)
    layouts = [validation_machine(name) for name in topology.machines]
    solver = Solver(layouts, topology=topology, record=False)
    for name in topology.machines:
        state = solver.machines[name]
        state.set_utilization(table1.CPU, 0.6)
        state.set_utilization(table1.DISK_PLATTERS, 0.3)
    return solver


def test_flat_solver_matches_reference():
    """The flattened room and the per-machine solver tell one story."""
    topology = grid_topology(EQUIV_MACHINES, zones=4)
    flat = _flat_solver(EQUIV_MACHINES)
    reference = _reference_solver(EQUIV_MACHINES)
    flat.step(EQUIV_TICKS)
    for _ in range(EQUIV_TICKS):
        reference.step()
    worst = 0.0
    for row, name in enumerate(topology.machines):
        state = reference.machines[name]
        for node in flat.plan.node_names:
            delta = abs(
                state.temperatures[node]
                - float(flat.group.T[row, flat.plan.node_index[node]])
            )
            worst = max(worst, delta)
    assert worst <= EQUIV_TOLERANCE, (
        f"flattened solve diverged from the per-machine reference by "
        f"{worst:.3e} C"
    )


def test_scale_speedup_gate():
    # Warmup: plan compilation, numpy one-time setup, allocation paths.
    _flat_solver(SMALL).step(2)
    warm_ref = _reference_solver(100)
    warm_ref.step()

    flat_times, loop_times = [], []

    def _trial():
        flat = _flat_solver(SMALL)
        elapsed, _ = _timed(lambda: flat.step(SMALL_TICKS))
        flat_times.append(elapsed / SMALL_TICKS)
        reference = _reference_solver(SMALL)

        def _run_loop():
            for _ in range(SMALL_TICKS):
                reference.step()

        elapsed, _ = _timed(_run_loop)
        loop_times.append(elapsed / SMALL_TICKS)

    for _ in range(TRIALS):
        _trial()
    while (
        min(loop_times) / min(flat_times) < MIN_FLAT_SPEEDUP
        and len(flat_times) < TRIALS + MAX_EXTRA_TRIALS
    ):
        _trial()

    flat_tick = min(flat_times)
    loop_tick = min(loop_times)
    speedup = loop_tick / flat_tick

    # The 10k-machine record: one construction, one timed burst.
    big = _flat_solver(BIG)
    big.step(2)  # flows compiled outside the timed region
    big_elapsed, _ = _timed(lambda: big.step(BIG_TICKS))
    big_tick = big_elapsed / BIG_TICKS

    results = {
        "machines_small": SMALL,
        "machines_big": BIG,
        "flat_ticks_per_sec_1k": 1.0 / flat_tick,
        "loop_ticks_per_sec_1k": 1.0 / loop_tick,
        "flat_ticks_per_sec_10k": 1.0 / big_tick,
        "flat_speedup_1k": speedup,
        "min_flat_speedup": MIN_FLAT_SPEEDUP,
        "trials": len(flat_times),
    }
    write_bench("BENCH_scale.json", results)

    emit(
        "scale_throughput",
        "Datacenter-scale solve — flattened array vs per-machine loop\n"
        f"{'machines':>10} {'flat ticks/s':>14} {'loop ticks/s':>14} "
        f"{'speedup':>9}\n"
        f"{SMALL:>10} {1.0 / flat_tick:>14.1f} {1.0 / loop_tick:>14.1f} "
        f"{speedup:>8.1f}x\n"
        f"{BIG:>10} {1.0 / big_tick:>14.1f} {'-':>14} {'-':>9}\n",
    )

    assert speedup >= MIN_FLAT_SPEEDUP, (
        f"flattened solve only {speedup:.1f}x over the per-machine loop "
        f"at {SMALL} machines (gate: {MIN_FLAT_SPEEDUP:.0f}x)"
    )
