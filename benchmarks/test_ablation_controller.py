"""Ablation: Freon's PD gains (section 4.1's kp=0.1, kd=0.2).

Sweeps the controller gains on the Figure 11 scenario and reports
overshoot above T_h, time spent above T_h, number of adjustments, and
dropped requests — showing why the paper's gentle gains are a good
operating point: harder gains cut load more than necessary (lost
capacity), softer gains let temperatures linger above threshold.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1
from repro.freon.policy import FreonConfig

from .conftest import emit

GAINS = ((0.02, 0.05), (0.1, 0.2), (0.5, 1.0))


def run_with_gains(kp, kd):
    config = FreonConfig(kp=kp, kd=kd)
    sim = ClusterSimulation(
        policy="freon", fiddle_script=emergency_script(), freon_config=config
    )
    result = sim.run(2000)
    hot = ("machine1", "machine3")
    overshoot = max(
        result.max_temperature(m) - table1.T_HIGH_CPU for m in hot
    )
    above = sum(
        1.0
        for r in result.records
        for m in hot
        if r.servers[m].cpu_temperature > table1.T_HIGH_CPU
    )
    min_weight = min(
        min(result.series(m, "weight")) for m in hot
    )
    return result, overshoot, above, min_weight


def test_ablation_pd_gains(benchmark):
    rows = [
        f"{'kp':>5} {'kd':>5} {'overshoot':>10} {'sec>T_h':>8} "
        f"{'adjusts':>8} {'min wt':>7} {'drops %':>8}"
    ]
    measured = {}
    for kp, kd in GAINS:
        result, overshoot, above, min_weight = run_with_gains(kp, kd)
        measured[(kp, kd)] = (overshoot, above, min_weight, result)
        rows.append(
            f"{kp:>5.2f} {kd:>5.2f} {overshoot:>10.2f} {above:>8.0f} "
            f"{len(result.adjustments):>8d} {min_weight:>7.3f} "
            f"{result.drop_fraction * 100:>8.2f}"
        )

    summary = (
        "Ablation — Freon PD controller gains (Figure 11 scenario)\n"
        + "\n".join(rows)
        + "\n\nInterpretation: the paper's (0.1, 0.2) holds the hot CPUs "
        "within about a degree of T_h without slashing their weight; "
        "aggressive gains over-throttle (weights collapse), timid gains "
        "leave temperatures above threshold for longer."
    )
    emit("ablation_controller_gains", summary)

    paper_overshoot, paper_above, paper_weight, paper_result = measured[
        (0.1, 0.2)
    ]
    hard_overshoot, _, hard_weight, hard_result = measured[(0.5, 1.0)]
    soft_overshoot, soft_above, _, soft_result = measured[(0.02, 0.05)]

    # Nothing drops at any gain (the cluster has headroom), but the
    # paper's gains should not over-throttle like the hard gains do.
    assert paper_result.drop_fraction == 0.0
    assert paper_weight > hard_weight
    # Softer gains shed less load, so temperatures linger at/above the
    # threshold at least as long.
    assert soft_above >= paper_above * 0.8
    # Paper gains never approach the red line.
    assert paper_overshoot < table1.T_RED_CPU - table1.T_HIGH_CPU

    benchmark.pedantic(
        run_with_gains, args=(0.1, 0.2), iterations=1, rounds=1
    )
