"""Figure 6: calibrating Mercury for disk usage and temperature.

Regenerates Figure 6 — disk utilization, the in-disk sensor reading, and
Mercury's emulated disk temperature over the disk microbenchmark.
"""

import numpy as np

from repro.config import table1
from repro.core.calibration import emulate, smooth_series

from .conftest import emit, series_rows


def test_fig6_disk_calibration(
    benchmark, validation_layout, calibration_runs, calibrated_fit
):
    _, disk_run = calibration_runs

    emulated = emulate(
        validation_layout,
        disk_run,
        k_overrides=calibrated_fit.k_overrides,
        dt=1.0,
    )

    measured = disk_run.temperatures[table1.DISK_PLATTERS]
    smoothed = smooth_series(measured)
    series = emulated[table1.DISK_PLATTERS]
    warmup = 120
    err = np.abs(np.asarray(smoothed[warmup:]) - np.asarray(series[warmup:]))

    table = series_rows(
        disk_run.times,
        [u * 100 for u in disk_run.utilizations[table1.DISK_PLATTERS]],
        measured,
        series,
        header=("time(s)", "disk util %", "real (C)", "emulated (C)"),
        every=300,
    )
    summary = (
        f"Figure 6 — disk calibration run ({disk_run.duration:.0f} s)\n"
        f"disk tracking vs smoothed in-disk sensor: "
        f"rmse={np.sqrt((err**2).mean()):.3f} C, max={err.max():.3f} C "
        f"(paper: within ~1 C; in-disk sensor itself is 3 C / 1 C-step)\n\n"
        + table
    )
    emit("fig6_disk_calibration", summary)

    assert err.max() < 1.0

    benchmark.pedantic(
        emulate,
        args=(validation_layout, disk_run),
        kwargs={"k_overrides": calibrated_fit.k_overrides, "dt": 1.0},
        iterations=1,
        rounds=1,
    )
