"""Ablation: the two-stage content-aware policy (section 4.3).

"In the face of a hot CPU, the system could distribute requests in such
a way that only memory or I/O-bound requests were sent to it.  Lower
weights and connection limits would only be used if this strategy did
not reduce the CPU temperature enough."  LVS could not do this; our
content-aware balancer can.  This experiment compares, for the same hot
server:

* **stage-1 / content-aware**: halve only the dynamic-request weight;
* **classic / whole-load**: halve the server's share of *all* requests.

Both reach a similar CPU utilization cut; the content-aware variant
keeps nearly all the server's static (disk) throughput, i.e. it sheds
less total work for the same cooling.
"""

import pytest

from repro.cluster.content_aware import (
    DYNAMIC,
    STATIC,
    ContentAwareBalancer,
    TwoStageFreon,
    classed_load,
)
from repro.cluster.webserver import RequestMix

from .conftest import emit

SERVERS = ["m1", "m2", "m3", "m4"]
OFFERED = {DYNAMIC: 96.0, STATIC: 224.0}  # the paper's 30/70 mix at ~70% load
CAPACITY = {s: 400.0 for s in SERVERS}


def hot_server_load(balancer):
    rates, _ = balancer.allocate(OFFERED, CAPACITY)
    load = classed_load(rates["m1"][DYNAMIC], rates["m1"][STATIC])
    return load, rates["m1"]


def test_ablation_two_stage_policy(benchmark):
    mix = RequestMix()

    # Baseline share.
    base_balancer = ContentAwareBalancer(SERVERS)
    base_load, base_rates = hot_server_load(base_balancer)

    # Stage 1: content-aware — two halvings of the dynamic weight.
    ca_balancer = ContentAwareBalancer(SERVERS)
    policy = TwoStageFreon(ca_balancer)
    policy.observe("m1", 70.0, now=60.0)
    policy.observe("m1", 70.0, now=120.0)
    ca_load, ca_rates = hot_server_load(ca_balancer)

    # Classic: the same weight cut applied to both classes.
    classic_balancer = ContentAwareBalancer(SERVERS)
    classic_balancer.set_weight("m1", DYNAMIC, 0.25)
    classic_balancer.set_weight("m1", STATIC, 0.25)
    classic_load, classic_rates = hot_server_load(classic_balancer)

    def row(label, load, rates):
        total = rates[DYNAMIC] + rates[STATIC]
        return (
            f"{label:<16} {load.cpu_utilization:>8.3f} "
            f"{load.disk_utilization:>9.3f} {rates[DYNAMIC]:>9.2f} "
            f"{rates[STATIC]:>9.2f} {total:>9.2f}"
        )

    rows = [
        f"{'variant':<16} {'cpu util':>8} {'disk util':>9} {'dyn r/s':>9} "
        f"{'stat r/s':>9} {'total':>9}",
        row("baseline", base_load, base_rates),
        row("content-aware", ca_load, ca_rates),
        row("classic weights", classic_load, classic_rates),
    ]
    summary = (
        "Ablation — two-stage content-aware policy vs classic weight cut "
        "(hot server m1, 30% dynamic mix)\n" + "\n".join(rows)
        + "\n\nInterpretation: both variants cut the hot CPU's utilization "
        "by a similar factor, but the content-aware stage keeps the "
        "server's static throughput — less total work shed for the same "
        "thermal relief, which is why section 4.3 wants content-aware "
        "balancers."
    )
    emit("ablation_two_stage", summary)

    # Comparable CPU relief...
    assert ca_load.cpu_utilization < base_load.cpu_utilization * 0.75
    assert classic_load.cpu_utilization < base_load.cpu_utilization * 0.75
    # ...but the content-aware server keeps its static throughput while
    # the classic cut sheds most of it.
    assert ca_rates[STATIC] > 0.9 * base_rates[STATIC]
    assert classic_rates[STATIC] < 0.5 * base_rates[STATIC]
    # Total work kept is strictly higher under the content-aware stage.
    assert sum(ca_rates.values()) > sum(classic_rates.values()) * 1.5

    def kernel():
        balancer = ContentAwareBalancer(SERVERS)
        policy2 = TwoStageFreon(balancer)
        policy2.observe("m1", 70.0, now=60.0)
        return balancer.allocate(OFFERED, CAPACITY)

    benchmark(kernel)
