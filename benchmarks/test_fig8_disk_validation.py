"""Figure 8: real-system disk validation on the mixed benchmark.

Same run as Figure 7, comparing the disk temperature instead.
"""

import numpy as np

from repro.config import table1
from repro.core.calibration import smooth_series

from .conftest import emit, series_rows


def test_fig8_disk_validation(benchmark, mixed_validation):
    run, emulated = mixed_validation

    measured = run.temperatures[table1.DISK_PLATTERS]
    smoothed = smooth_series(measured)
    series = emulated[table1.DISK_PLATTERS]
    warmup = 120
    err = np.abs(np.asarray(smoothed[warmup:]) - np.asarray(series[warmup:]))

    table = series_rows(
        run.times,
        [u * 100 for u in run.utilizations[table1.DISK_PLATTERS]],
        measured,
        series,
        header=("time(s)", "disk util %", "real (C)", "emulated (C)"),
        every=120,
    )
    corr = float(np.corrcoef(
        np.asarray(smoothed[warmup:]), np.asarray(series[warmup:])
    )[0, 1])
    summary = (
        f"Figure 8 — disk validation, mixed benchmark ({run.duration:.0f} s), "
        f"no input adjustments\n"
        f"rmse={np.sqrt((err**2).mean()):.3f} C, max={err.max():.3f} C, "
        f"trend correlation={corr:.4f}\n"
        f"paper: within 1 C at all times (in-disk sensor accuracy 3 C)\n\n"
        + table
    )
    emit("fig8_disk_validation", summary)

    assert err.max() < 1.0
    assert corr > 0.98

    def kernel():
        e = np.abs(np.asarray(smoothed[warmup:]) - np.asarray(series[warmup:]))
        return float(e.max())

    benchmark(kernel)
