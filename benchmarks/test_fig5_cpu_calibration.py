"""Figure 5: calibrating Mercury for CPU usage and temperature.

Regenerates the paper's Figure 5 series — CPU utilization, "real"
(simulated-machine sensor) CPU-air temperature, and Mercury's emulated
CPU-air temperature over the ~14,000 s CPU microbenchmark — and reports
how closely the calibrated emulation tracks the measurement.
"""

import numpy as np

from repro.config import table1
from repro.core.calibration import emulate, smooth_series

from .conftest import emit, series_rows


def test_fig5_cpu_calibration(
    benchmark, validation_layout, calibration_runs, calibrated_fit
):
    cpu_run, _ = calibration_runs

    emulated = emulate(
        validation_layout,
        cpu_run,
        k_overrides=calibrated_fit.k_overrides,
        dt=1.0,
    )

    measured = cpu_run.temperatures[table1.CPU_AIR]
    smoothed = smooth_series(measured)
    series = emulated[table1.CPU_AIR]
    warmup = 120
    err = np.abs(np.asarray(smoothed[warmup:]) - np.asarray(series[warmup:]))

    table = series_rows(
        cpu_run.times,
        [u * 100 for u in cpu_run.utilizations[table1.CPU]],
        measured,
        series,
        header=("time(s)", "cpu util %", "real (C)", "emulated (C)"),
        every=300,
    )
    summary = (
        f"Figure 5 — CPU calibration run ({cpu_run.duration:.0f} s)\n"
        f"calibrated fit: {calibrated_fit.describe()}\n"
        f"CPU-air tracking vs smoothed sensor: "
        f"rmse={np.sqrt((err**2).mean()):.3f} C, max={err.max():.3f} C "
        f"(paper: within ~1 C)\n\n" + table
    )
    emit("fig5_cpu_calibration", summary)

    assert err.max() < 1.0

    # Timed kernel: replaying the full calibration run through Mercury.
    benchmark.pedantic(
        emulate,
        args=(validation_layout, cpu_run),
        kwargs={"k_overrides": calibrated_fit.k_overrides, "dt": 1.0},
        iterations=1,
        rounds=1,
    )
