"""Chaos replay: Figure 11 under an infrastructure-failure storm.

The section 5 thermal emergencies (machine 1's inlet to 38.6 C and
machine 3's to 35.6 C at t=480 s) rerun with the fault injector active:
5% datagram loss on every tempd -> admd message, machine 2's disk sensor
stuck at a plausible 45 C, and machine 1's tempd crashed at t=1060 s —
while it is hot and restricted — for the watchdog to restart.  Freon's
resilience layer (retry/backoff, last-known-good holds, conservative
staleness fallback, watchdog restarts on the original wake grid) must
keep the outcome indistinguishable from the clean run: every hot CPU
pinned at T_h and zero dropped requests.

Seed 3 is used deliberately: it is one of the seeds where the 5% loss
actually destroys a datagram during the experiment, so the run exercises
a real loss, a real crash, and a lying sensor at once.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, chaos_script
from repro.config import table1
from repro.faults.injector import FaultInjector
from repro.telemetry import Telemetry

from .conftest import SOLVER_ENGINE, emit, series_rows

#: Seed for the fault RNG; seed 3 drops a real datagram mid-experiment.
CHAOS_SEED = 3

#: Allowed overshoot above T_h under faults (acceptance criterion).
TOLERANCE = 0.5


def run_chaos(seed=CHAOS_SEED, telemetry=None):
    sim = ClusterSimulation(
        policy="freon",
        fiddle_script=chaos_script(),
        injector=FaultInjector(seed=seed),
        engine=SOLVER_ENGINE,
        telemetry=telemetry,
    )
    return sim, sim.run(2000)


@pytest.fixture(scope="module")
def chaos_result():
    telemetry = Telemetry()
    sim, result = run_chaos(telemetry=telemetry)
    return sim, result, telemetry


def test_chaos_freon_holds_thresholds(benchmark, chaos_result):
    sim, result, telemetry = chaos_result
    times = result.times()

    temp_table = series_rows(
        times,
        *[result.series(m, "cpu_temperature") for m in sim.machines],
        header=("time(s)", "m1 (C)", "m2 (C)", "m3 (C)", "m4 (C)"),
        every=120,
    )
    # Drop / actuation counts now come from the telemetry registry (the
    # result object carries the same numbers; equality is asserted below).
    registry = telemetry.registry
    stats = {
        fate: registry.value("freon_datagrams_total", {"fate": fate})
        for fate in ("sent", "delivered", "dropped", "duplicated", "delayed")
    }
    adjustments = registry.value(
        "freon_actuations_total", {"action": "adjust"}
    )
    summary = (
        "Chaos replay — Figure 11 emergencies + fault storm\n"
        f"faults: 5% tempd->admd loss, machine2 disk sensor stuck at 45 C,\n"
        f"        machine1 tempd crashed at t=1060 s (watchdog restart)\n"
        f"fault log: {[(t, e) for t, e in result.fault_log]}\n"
        f"restarts:  {[(r.time, r.machine, r.daemon) for r in result.restarts]}\n"
        f"datagrams: sent={stats['sent']:g} delivered={stats['delivered']:g} "
        f"dropped={stats['dropped']:g} duplicated={stats['duplicated']:g}\n"
        f"adjustments: {adjustments:g}\n"
        f"dropped requests: {result.drop_fraction * 100:.2f}% (paper: 0%)\n"
        f"peak CPU temps: "
        f"{ {m: round(result.max_temperature(m), 2) for m in sim.machines} }\n"
        f"bound: T_h + {TOLERANCE} = {table1.T_HIGH_CPU + TOLERANCE} C\n\n"
        "CPU temperature (C):\n" + temp_table
    )
    emit("chaos_freon", summary)

    # The storm really happened ...
    assert stats["dropped"] >= 1
    # ... and telemetry's mirror agrees with the channel's own counters
    # and the admd actuation log.
    assert stats == {k: float(v) for k, v in result.datagram_stats.items()}
    assert adjustments == len(result.adjustments)
    assert registry.value(
        "watchdog_restarts_total", {"daemon": "tempd"}
    ) == len(result.restarts)
    assert [(r.machine, r.daemon) for r in result.restarts] == [
        ("machine1", "tempd")
    ]
    assert any("stuck" in event for _, event in result.fault_log)
    # ... and Freon absorbed it: no drops, every CPU within tolerance.
    assert result.drop_fraction == 0.0
    for machine in sim.machines:
        assert (
            result.max_temperature(machine)
            <= table1.T_HIGH_CPU + TOLERANCE
        )

    # Timed kernel: one full 2000 s chaos experiment.
    benchmark.pedantic(run_chaos, iterations=1, rounds=1)


def test_chaos_replay_is_bit_identical(chaos_result):
    """A bare (telemetry-free) rerun matches the instrumented run."""
    _, first, _ = chaos_result
    _, second = run_chaos()
    assert second.records == first.records
    assert second.fault_log == first.fault_log
    assert second.datagram_stats == first.datagram_stats
    assert [
        (r.time, r.machine, r.daemon) for r in second.restarts
    ] == [(r.time, r.machine, r.daemon) for r in first.restarts]
