"""Adversarial workload scenarios: emergency cost and cloning A/B.

Every scenario in :mod:`repro.cluster.scenarios` reruns the section 5
thermal emergencies under a nastier workload than the paper's smooth
diurnal curve — flash crowds, phase-offset multi-region load, a
CGI-heavy request mix, and a rate-aggregated millions-of-users trace.
For each scenario the benchmark reports the thermal-emergency
throughput cost (dropped-request fraction) with request cloning off and
on, plus the p99 request latency; the chaos variants rerun the same
workloads under the full fault storm and must still pin every CPU at
T_h.

The cloning A/B gate runs separately on controlled constant loads:

* **low load** — cloning must cut the p99 tail (first of d clones
  answers in 1/d of the solo time);
* **high load** — the shed-to-single-dispatch guard must keep served
  throughput within a hair of the uncloned run (graceful degradation,
  no work amplification collapse).
"""

import pytest

from repro.cluster.lvs import CloningConfig
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tracegen import constant_trace, peak_rate_for_utilization
from repro.config import table1
from repro.faults.injector import FaultInjector

from .conftest import SOLVER_ENGINE, emit, write_bench

#: The scenarios to replay (chaos variants derived below).
from repro.cluster.scenarios import SCENARIO_NAMES

#: Allowed overshoot above T_h under faults (matches the chaos replay).
TOLERANCE = 0.5

#: Scenario horizon; covers the t=480 s emergencies and the recovery.
DURATION = 2000.0

#: Fault seed for the chaos variants; seed 3 drops a real datagram.
CHAOS_SEED = 3


def run_scenario(name, cloning=None):
    sim = ClusterSimulation(
        policy="freon",
        scenario=name,
        scenario_duration=DURATION,
        engine=SOLVER_ENGINE,
        injector=FaultInjector(seed=CHAOS_SEED),
        cloning=cloning,
    )
    result = sim.run(DURATION)
    return sim, result


@pytest.fixture(scope="module")
def scenario_runs():
    """Every scenario (plain + chaos) with cloning off and on."""
    runs = {}
    for base in SCENARIO_NAMES:
        for name in (base, f"{base}-chaos"):
            runs[name] = {
                "off": run_scenario(name),
                "on": run_scenario(name, cloning=CloningConfig(clones=2)),
            }
    return runs


def test_scenario_emergency_cost(benchmark, scenario_runs):
    rows = []
    results = {}
    for name, pair in sorted(scenario_runs.items()):
        sim_off, res_off = pair["off"]
        sim_on, res_on = pair["on"]
        peak_off = max(
            res_off.max_temperature(m) for m in sim_off.machines
        )
        peak_on = max(res_on.max_temperature(m) for m in sim_on.machines)
        results[name] = {
            "drop_fraction": res_off.drop_fraction,
            "drop_fraction_cloned": res_on.drop_fraction,
            "p99_latency_s": res_off.p99_latency(),
            "p99_latency_cloned_s": res_on.p99_latency(),
            "max_cpu_temperature": peak_off,
            "max_cpu_temperature_cloned": peak_on,
        }
        rows.append(
            f"{name:>20}  drop {res_off.drop_fraction * 100:6.2f}% -> "
            f"{res_on.drop_fraction * 100:6.2f}%  "
            f"p99 {res_off.p99_latency() * 1000:7.2f}ms -> "
            f"{res_on.p99_latency() * 1000:7.2f}ms  "
            f"peak {peak_off:5.1f}C / {peak_on:5.1f}C"
        )

    emit(
        "scenario_costs",
        "Thermal-emergency throughput cost per adversarial scenario\n"
        f"bound: T_h + {TOLERANCE} = {table1.T_HIGH_CPU + TOLERANCE} C "
        "(chaos variants)\n\n" + "\n".join(rows),
    )

    # Thermal contract under adversarial load: the red-line guard caps
    # every excursion (flash crowds can outrun the controller past T_h,
    # but never past the protection band), and the chaos variant's fault
    # storm must add nothing on top of its plain twin.
    for name, row in results.items():
        assert (
            row["max_cpu_temperature"] <= table1.T_RED_CPU + 1.0
        ), name
        assert (
            row["max_cpu_temperature_cloned"] <= table1.T_RED_CPU + 1.0
        ), name
    for base in SCENARIO_NAMES:
        plain = results[base]
        chaos = results[f"{base}-chaos"]
        bound = max(table1.T_HIGH_CPU, plain["max_cpu_temperature"])
        assert chaos["max_cpu_temperature"] <= bound + TOLERANCE, base
    # Cloning's work amplification must never blow up the drop rate:
    # the shed guard caps the cost at a small work-multiplier premium.
    for name, row in results.items():
        assert row["drop_fraction_cloned"] <= row["drop_fraction"] + 0.02, name

    globals()["_SCENARIO_RESULTS"] = results
    benchmark.pedantic(
        run_scenario, args=("flash-crowd",), iterations=1, rounds=1
    )


def _constant_load_pair(utilization, duration=300.0):
    rate = utilization * peak_rate_for_utilization(1.0, 4)
    trace = constant_trace(rate, duration)

    def run(cloning=None):
        sim = ClusterSimulation(
            policy="freon", trace=trace, fiddle_script="",
            engine=SOLVER_ENGINE, cloning=cloning,
        )
        return sim.run(duration)

    return run(None), run(CloningConfig(clones=2))


def test_cloning_ab_gate(scenario_runs):
    # Low load: far below the shed ceiling, every tick clones, and the
    # first-of-two response halves the tail.
    low_base, low_cloned = _constant_load_pair(0.30)
    assert low_cloned.p99_latency() < 0.6 * low_base.p99_latency()
    assert low_cloned.drop_fraction == low_base.drop_fraction == 0.0

    # High load: above the ceiling, cloning sheds to single dispatch;
    # served throughput must match the uncloned run (graceful, not a
    # work-amplification collapse).
    high_base, high_cloned = _constant_load_pair(0.95)
    served_base = high_base.total_offered - high_base.total_dropped
    served_cloned = high_cloned.total_offered - high_cloned.total_dropped
    assert served_cloned >= 0.98 * served_base

    payload = {
        "engine": SOLVER_ENGINE,
        "duration_s": DURATION,
        "scenarios": globals().get("_SCENARIO_RESULTS", {}),
        "cloning_ab": {
            "low_load": {
                "utilization": 0.30,
                "p99_latency_s": low_base.p99_latency(),
                "p99_latency_cloned_s": low_cloned.p99_latency(),
            },
            "high_load": {
                "utilization": 0.95,
                "served_requests": served_base,
                "served_requests_cloned": served_cloned,
            },
        },
    }
    write_bench("BENCH_scenarios.json", payload)
