"""Extension experiment: Freon on a multi-tier service (section 7).

A four-server web tier fronts a four-server application tier; 30% of
served web requests spawn an app-tier call.  An inlet emergency hits one
application server mid-run.  Expected shape: per-tier Freon contains the
emergency inside the application tier (one adjustment, temperature held
at T_h, siblings absorb the load) and the pipeline serves every end-user
request; unmanaged, the hot back end sails past the red line.
"""

import pytest

from repro.cluster.multitier import MultiTierSimulation
from repro.config import table1

from .conftest import emit

EMERGENCY = "sleep 480\nfiddle app1 temperature inlet 38.6\n"


@pytest.fixture(scope="module")
def runs():
    results = {}
    for policy in ("none", "freon"):
        sim = MultiTierSimulation(policy=policy, fiddle_script=EMERGENCY)
        results[policy] = sim.run(2000)
    return results


def test_ext_multitier_freon(benchmark, runs):
    rows = [
        f"{'policy':<8} {'app1 peak':>10} {'app2 peak':>10} {'web1 peak':>10} "
        f"{'e2e drops %':>12} {'adjustments':>12}"
    ]
    for policy, result in runs.items():
        adjustments = sum(len(v) for v in result.adjustments.values())
        rows.append(
            f"{policy:<8} {result.max_temperature('app', 'app1'):>10.2f} "
            f"{result.max_temperature('app', 'app2'):>10.2f} "
            f"{result.max_temperature('web', 'web1'):>10.2f} "
            f"{result.end_to_end_drop_fraction * 100:>12.2f} "
            f"{adjustments:>12d}"
        )
    freon = runs["freon"]
    summary = (
        "Extension — multi-tier service under Freon (web tier -> app "
        "tier, emergency on app1 at t=480 s)\n" + "\n".join(rows)
        + f"\nfreon adjustments per tier: "
        f"{ {k: [(t, m) for t, m, _ in v] for k, v in freon.adjustments.items()} }\n"
        "\nInterpretation: per-tier Freon contains the emergency inside "
        "the application tier — the web tier never acts — and the "
        "pipeline serves every end-user request."
    )
    emit("ext_multitier", summary)

    unmanaged = runs["none"]
    assert unmanaged.max_temperature("app", "app1") > table1.T_RED_CPU
    assert freon.max_temperature("app", "app1") < table1.T_HIGH_CPU + 1.0
    assert freon.end_to_end_drop_fraction == 0.0
    assert freon.adjustments["web"] == []
    assert any(m == "app1" for _, m, _ in freon.adjustments["app"])

    def run_experiment():
        sim = MultiTierSimulation(policy="freon", fiddle_script=EMERGENCY)
        return sim.run(2000)

    benchmark.pedantic(run_experiment, iterations=1, rounds=1)
