"""Section 5.1 baseline: the traditional red-line shutdown policy.

Same trace and emergencies as Figure 11, but servers are simply turned
off when a CPU crosses T_r.  The paper: machine 1 went down at 1440 s,
machine 3 just before 1500 s, and the cluster dropped 14% of the trace;
Freon served everything.  The reproduced shape: both hot machines shut
down mid-peak and a double-digit share of peak-period requests is lost,
versus zero under Freon.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script

from .conftest import SOLVER_ENGINE, emit


@pytest.fixture(scope="module")
def runs():
    freon = ClusterSimulation(
        policy="freon", fiddle_script=emergency_script(), engine=SOLVER_ENGINE
    )
    freon_result = freon.run(2000)
    trad = ClusterSimulation(
        policy="traditional", fiddle_script=emergency_script(),
        engine=SOLVER_ENGINE,
    )
    trad_result = trad.run(2000)
    return freon_result, trad_result


def test_sec51_traditional_vs_freon(benchmark, runs):
    freon_result, trad_result = runs

    # Drops concentrated in the post-shutdown peak window.
    peak_offered = sum(
        r.offered_rate for r in trad_result.records if 1200 <= r.time <= 1800
    )
    peak_dropped = sum(
        r.dropped_rate for r in trad_result.records if 1200 <= r.time <= 1800
    )
    summary = (
        "Section 5.1 — traditional (red-line shutdown) vs Freon\n"
        f"traditional shutdowns: "
        f"{[(s.time, s.machine, round(s.temperature, 1)) for s in trad_result.shutdowns]}\n"
        f"traditional dropped: {trad_result.drop_fraction * 100:.2f}% of the "
        f"whole trace (paper: 14%)\n"
        f"traditional dropped during the peak window (1200-1800 s): "
        f"{peak_dropped / peak_offered * 100:.1f}%\n"
        f"Freon dropped: {freon_result.drop_fraction * 100:.2f}% (paper: 0%)\n"
    )
    emit("sec51_traditional", summary)

    # Shape: the traditional policy loses both hot machines and a
    # significant share of requests; Freon loses none.
    assert [s.machine for s in trad_result.shutdowns] == [
        "machine1", "machine3"
    ]
    assert trad_result.drop_fraction > 0.03
    assert peak_dropped / peak_offered > 0.10
    assert freon_result.drop_fraction == 0.0

    def run_experiment():
        sim = ClusterSimulation(
            policy="traditional", fiddle_script=emergency_script(),
            engine=SOLVER_ENGINE,
        )
        return sim.run(2000)

    benchmark.pedantic(run_experiment, iterations=1, rounds=1)
