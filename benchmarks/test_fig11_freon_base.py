"""Figure 11: base Freon under two simultaneous inlet emergencies.

Four Apache-style servers behind LVS, the diurnal trace peaking at 70%
utilization, fiddle raising machine 1's inlet to 38.6 C and machine 3's
to 35.6 C at t=480 s.  Expected shape (paper): the hot CPUs cross T_h
near the load peak, Freon shifts load away and pins them just under the
threshold, the healthy machines absorb the difference, and not a single
request is dropped.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1

from .conftest import SOLVER_ENGINE, emit, series_rows


@pytest.fixture(scope="module")
def freon_result():
    sim = ClusterSimulation(
        policy="freon", fiddle_script=emergency_script(), engine=SOLVER_ENGINE
    )
    return sim, sim.run(2000)


def test_fig11_freon_base_policy(benchmark, freon_result):
    sim, result = freon_result
    times = result.times()

    temp_table = series_rows(
        times,
        *[result.series(m, "cpu_temperature") for m in sim.machines],
        header=("time(s)", "m1 (C)", "m2 (C)", "m3 (C)", "m4 (C)"),
        every=120,
    )
    util_table = series_rows(
        times,
        *[
            [u * 100 for u in result.series(m, "cpu_utilization")]
            for m in sim.machines
        ],
        header=("time(s)", "m1 %", "m2 %", "m3 %", "m4 %"),
        every=120,
    )
    summary = (
        "Figure 11 — Freon base policy: CPU temperatures (top) and "
        "utilizations (bottom)\n"
        f"T_h^CPU = {table1.T_HIGH_CPU} C; emergencies at t=480 s "
        f"(m1 inlet -> 38.6 C, m3 inlet -> 35.6 C)\n"
        f"adjustments: {[(t, m, round(o, 3)) for t, m, o in result.adjustments]}\n"
        f"releases:    {result.releases}\n"
        f"dropped requests: {result.drop_fraction * 100:.2f}% "
        f"(paper: 0%)\n"
        f"peak CPU temps: "
        f"{ {m: round(result.max_temperature(m), 2) for m in sim.machines} }\n\n"
        "CPU temperature (C):\n" + temp_table + "\n\nCPU utilization (%):\n"
        + util_table
    )
    emit("fig11_freon_base", summary)

    # Shape assertions (see EXPERIMENTS.md).
    assert result.drop_fraction == 0.0
    adjusted = {m for _, m, _ in result.adjustments}
    assert adjusted == {"machine1", "machine3"}
    for machine in ("machine1", "machine3"):
        assert result.max_temperature(machine) < table1.T_RED_CPU
    for machine in ("machine2", "machine4"):
        assert result.max_temperature(machine) < table1.T_HIGH_CPU

    # Timed kernel: one full 2000 s Freon experiment.
    def run_experiment():
        sim2 = ClusterSimulation(
            policy="freon", fiddle_script=emergency_script(),
            engine=SOLVER_ENGINE,
        )
        return sim2.run(2000)

    benchmark.pedantic(run_experiment, iterations=1, rounds=1)
