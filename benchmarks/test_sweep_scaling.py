"""Sweep-engine scaling: batched vs sequential on the Figure 11 grid.

The sweep engine has two execution paths (``repro.parallel.sweep``):

* ``strategy="fork"`` with one worker — the sequential baseline, one
  full simulation per run;
* ``strategy="batch"`` — every run stacked as extra rows on one
  vectorized compiled solver (``repro.parallel.batch``).

This benchmark runs a 16-run Figure-11-style grid (4 policies x 4 fault
seeds, the section 5 thermal emergency, compiled engine) through both
paths and gates on:

* **Determinism** — the batched artifact, the sequential artifact, and
  a 2-worker fork artifact are byte-identical (the hard gate);
* **Throughput** — the batched path is at least ``MIN_BATCH_SPEEDUP``
  times faster than the sequential path.

Timing methodology: CPU time (``time.process_time``) with the garbage
collector disabled inside the timed region, a warmup pass, and
``TRIALS`` paired trials.  The speedup is computed from each path's
*minimum* across trials — the standard low-noise estimator (anything
above the minimum is scheduler/frequency interference, which CPU time
reduces but does not eliminate on a shared box).

Writes ``benchmark_results/BENCH_sweep.json`` for the CI artifact.
"""

import gc
import json
import time

from repro.parallel import expand_grid, fig11_grid, sweep

from .conftest import emit, write_bench

#: Simulated seconds per run; short — throughput, not physics, is
#: measured (the artifact-identity gate is what proves equivalence).
DURATION = 400.0

#: The four Figure 11 policies; with 4 fault seeds each the grid has
#: exactly 16 runs.
FIG11_POLICIES = ("none", "traditional", "freon", "freon-ec")
SEEDS = 4

#: Paired (sequential, batched) timing trials.
TRIALS = 5

#: Extra paired trials allowed when the speedup sits below the gate —
#: the min estimator only improves with more samples, so retrying
#: filters interference without biasing a genuinely-too-slow batch
#: path over the line.
MAX_EXTRA_TRIALS = 5

#: Required min-over-trials speedup of the batched strategy over the
#: sequential fork path on this 16-run grid.
MIN_BATCH_SPEEDUP = 3.0


def _timed(fn):
    """CPU seconds for one call, garbage collector parked."""
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        result = fn()
        return time.process_time() - start, result
    finally:
        gc.enable()


def test_sweep_batch_speedup_gate():
    grid = fig11_grid(
        duration=DURATION, seeds=SEEDS, engine="compiled",
        policies=FIG11_POLICIES,
    )
    specs = expand_grid(grid)
    assert len(specs) == 16
    ticks_per_run = int(round(DURATION))  # dt = 1 s

    # Warmup: touch every code path once (plan compilation, numpy
    # one-time setup, import side effects) outside the timed region.
    sweep(specs[:3], strategy="fork")
    sweep(specs[:3], strategy="batch")

    sequential_times, batch_times = [], []
    artifacts = {}

    def _trial():
        elapsed, artifact = _timed(lambda: sweep(specs, strategy="fork"))
        sequential_times.append(elapsed)
        artifacts.setdefault("fork", artifact)
        elapsed, artifact = _timed(lambda: sweep(specs, strategy="batch"))
        batch_times.append(elapsed)
        artifacts.setdefault("batch", artifact)

    for _ in range(TRIALS):
        _trial()
    while (
        min(sequential_times) / min(batch_times) < MIN_BATCH_SPEEDUP
        and len(batch_times) < TRIALS + MAX_EXTRA_TRIALS
    ):
        _trial()
    # Fan-out determinism: a real 2-worker pool must merge to the same
    # bytes (unmeasured — process spawn time is not what this gates).
    artifacts["fork-2workers"] = sweep(specs, workers=2, strategy="fork")

    best_sequential = min(sequential_times)
    best_batch = min(batch_times)
    speedup = best_sequential / best_batch
    total_ticks = ticks_per_run * len(specs)
    results = {
        "grid_runs": len(specs),
        "duration_per_run": DURATION,
        "ticks_per_run": ticks_per_run,
        "trials": len(batch_times),
        "sequential_cpu_seconds": sequential_times,
        "batch_cpu_seconds": batch_times,
        "best_sequential_cpu_seconds": best_sequential,
        "best_batch_cpu_seconds": best_batch,
        "sequential_ticks_per_second": total_ticks / best_sequential,
        "batch_ticks_per_second": total_ticks / best_batch,
        "batch_speedup": speedup,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
    }
    write_bench("BENCH_sweep.json", results)

    emit(
        "sweep_scaling",
        f"Sweep throughput — Figure 11 grid, {len(specs)} runs x "
        f"{DURATION:g}s ({ticks_per_run} ticks each)\n"
        f"{'path':>12} {'cpu (s)':>10} {'ticks/s':>12}\n"
        f"{'sequential':>12} {best_sequential:>10.3f} "
        f"{total_ticks / best_sequential:>12.0f}\n"
        f"{'batched':>12} {best_batch:>10.3f} "
        f"{total_ticks / best_batch:>12.0f}\n"
        f"batched speedup: {speedup:.2f}x "
        f"(gate: >= {MIN_BATCH_SPEEDUP:.1f}x)\n",
    )

    # The hard gate: every path merges to byte-identical artifacts.
    reference = json.dumps(artifacts["fork"], sort_keys=True)
    for name in ("batch", "fork-2workers"):
        assert json.dumps(artifacts[name], sort_keys=True) == reference, (
            f"sweep artifact via {name} differs from the sequential path"
        )

    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched sweep achieved {speedup:.2f}x over sequential "
        f"(gate: >= {MIN_BATCH_SPEEDUP:.1f}x on the 16-run grid; "
        f"sequential={best_sequential:.3f}s batch={best_batch:.3f}s)"
    )
