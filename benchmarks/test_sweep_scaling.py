"""Sweep-engine scaling: the Figure 11 grid across a worker pool.

Runs the Figure 11 policy grid (padded with a seed axis to 8+ runs)
serially and at increasing worker counts up to ``min(8, cpu_count())``,
and verifies two things:

* **Determinism** — every worker count produces a byte-identical merged
  artifact (this is the hard gate and runs even on one core);
* **Scaling** — with real parallelism available, the pool achieves a
  speedup of at least ``MIN_EFFICIENCY x`` ideal at each measured
  worker count (near-linear: 8 workers on an unloaded 8-core box
  measure ~6x+; CI boxes get a conservative floor).

Writes ``benchmark_results/BENCH_sweep.json`` for the CI artifact.
"""

import json
import multiprocessing
import time

from repro.parallel import expand_grid, fig11_grid, sweep

from .conftest import RESULTS_DIR, emit

#: Simulated seconds per run; short — scaling, not physics, is measured.
DURATION = 200.0

#: Seed-axis padding: 5 policies x 2 seeds = 10 runs, enough to keep
#: an 8-worker pool busy.
SEEDS = 2

#: Worker counts to measure (capped at the host's core count).
WORKER_STEPS = (1, 2, 4, 8)

#: Required fraction of ideal speedup at each worker count.
MIN_EFFICIENCY = 0.55


def _measure(specs, workers):
    start = time.perf_counter()
    artifact = sweep(specs, workers=workers)
    return time.perf_counter() - start, artifact


def test_sweep_scaling_gate():
    cores = multiprocessing.cpu_count()
    grid = fig11_grid(duration=DURATION, seeds=SEEDS)
    specs = expand_grid(grid)
    # Scaling steps cap at the core count, but a 2-worker pool always
    # runs so the determinism gate exercises real fan-out even on one
    # core (the pool just time-slices there).
    steps = sorted({min(w, cores) for w in WORKER_STEPS} | {2})

    elapsed = {}
    artifacts = {}
    for workers in steps:
        elapsed[workers], artifacts[workers] = _measure(specs, workers)

    serial = elapsed[1]
    speedups = {w: serial / elapsed[w] for w in steps}
    results = {
        "grid_runs": len(specs),
        "duration_per_run": DURATION,
        "cpu_count": cores,
        "workers": steps,
        "elapsed_seconds": {str(w): elapsed[w] for w in steps},
        "speedup": {str(w): speedups[w] for w in steps},
        "min_efficiency": MIN_EFFICIENCY,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sweep.json"
    path.write_text(json.dumps(results, indent=2) + "\n")

    rows = "\n".join(
        f"{w:>8} {elapsed[w]:>12.2f} {speedups[w]:>9.2f}x"
        for w in steps
    )
    emit(
        "sweep_scaling",
        f"Sweep scaling — Figure 11 grid, {len(specs)} runs x "
        f"{DURATION:g}s, {cores} core(s)\n"
        f"{'workers':>8} {'elapsed (s)':>12} {'speedup':>10}\n{rows}\n",
    )

    # The hard gate: identical artifacts at every worker count.
    reference = json.dumps(artifacts[steps[0]], sort_keys=True)
    for workers in steps[1:]:
        assert json.dumps(artifacts[workers], sort_keys=True) == reference, (
            f"sweep artifact at {workers} workers differs from serial"
        )

    # The scaling gate only means something with real parallelism.
    for workers in steps:
        if workers == 1 or workers > cores:
            continue
        floor = MIN_EFFICIENCY * workers
        assert speedups[workers] >= floor, (
            f"{workers} workers achieved {speedups[workers]:.2f}x "
            f"(gate: >= {floor:.2f}x on {cores} cores)"
        )
