"""Section 3.2: Mercury vs. the reference (Fluent-substitute) simulator.

Fourteen steady-state experiments over different CPU/disk power
combinations on the 2-D server case.  The paper reports Mercury within
0.25 C (disk) and 0.32 C (CPU) of Fluent after calibration.
"""

import pytest

from repro.reference.lumped import (
    DEFAULT_POWER_POINTS,
    calibrate_from_reference,
    comparison_table,
)
from repro.reference.mesh import standard_case
from repro.reference.steady import solve_steady

from .conftest import emit


@pytest.fixture(scope="module")
def lumped_calibration():
    return calibrate_from_reference()


def test_sec32_steady_state_comparison(benchmark, lumped_calibration):
    rows = comparison_table(
        DEFAULT_POWER_POINTS, calibration=lumped_calibration
    )

    lines = [
        f"{'cpu W':>6} {'disk W':>7} {'ref cpu':>9} {'merc cpu':>9} "
        f"{'err':>7} {'ref disk':>9} {'merc disk':>10} {'err':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row.cpu_power:>6.0f} {row.disk_power:>7.0f} "
            f"{row.reference_cpu:>9.2f} {row.mercury_cpu:>9.2f} "
            f"{row.cpu_error:>+7.3f} {row.reference_disk:>9.2f} "
            f"{row.mercury_disk:>10.2f} {row.disk_error:>+7.3f}"
        )
    max_cpu = max(abs(row.cpu_error) for row in rows)
    max_disk = max(abs(row.disk_error) for row in rows)
    summary = (
        f"Section 3.2 — Mercury vs reference 2-D steady-state solver, "
        f"{len(rows)} experiments\n"
        f"calibration fit rmse: {lumped_calibration.rmse:.3f} C\n"
        f"fitted k (W/K): "
        f"{ {k: round(v, 2) for k, v in lumped_calibration.k_values.items()} }\n"
        f"max |CPU error| = {max_cpu:.3f} C (paper: 0.32 C)\n"
        f"max |disk error| = {max_disk:.3f} C (paper: 0.25 C)\n\n"
        + "\n".join(lines)
    )
    emit("sec32_fluent_steady", summary)

    assert max_cpu < 0.32
    assert max_disk < 0.25

    # Timed kernel: one reference steady-state solve (what Fluent took
    # "several hours to days" for on real geometry).
    mesh = standard_case(cpu_power=25.0, disk_power=10.0)
    benchmark.pedantic(solve_steady, args=(mesh,), iterations=1, rounds=3)
