"""Section 2.3 timing claims: solver iteration and readsensor latency.

The paper reports the solver taking "roughly 100 usec on average to
compute each iteration" on the Figure 1 graphs, and readsensor() having
"an average response time of 300 usec", beating the 500 usec access time
of the real SCSI in-disk sensor.
"""

import statistics
import time

import pytest

from repro.config import table1
from repro.config.layouts import validation_cluster, validation_machine
from repro.core.solver import Solver
from repro.sensors.api import SensorConnection
from repro.sensors.server import SensorService, UdpSensorServer

from .conftest import emit

#: The real SCSI in-disk sensor's average access time (paper).
SCSI_SENSOR_LATENCY = 500e-6


def test_sec23_solver_iteration_time(benchmark):
    layout = validation_machine()
    solver = Solver([layout], record=False)
    solver.set_utilization("machine1", table1.CPU, 0.7)
    solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.4)

    result = benchmark(solver.step)

    mean = benchmark.stats.stats.mean
    emit(
        "sec23_solver_iteration",
        f"Section 2.3 — solver iteration time (Figure 1 graphs)\n"
        f"measured mean: {mean * 1e6:.1f} usec per iteration\n"
        f"paper: ~100 usec per iteration\n",
    )
    # Same order of magnitude as the paper's C implementation.
    assert mean < 1e-3


def test_sec23_cluster_iteration_time(benchmark):
    cluster = validation_cluster()
    solver = Solver(list(cluster.machines.values()), cluster=cluster,
                    record=False)
    for machine in solver.machines:
        solver.set_utilization(machine, table1.CPU, 0.7)

    benchmark(solver.step)
    mean = benchmark.stats.stats.mean
    emit(
        "sec23_cluster_iteration",
        f"Section 2.3 — solver iteration time, 4-machine cluster\n"
        f"measured mean: {mean * 1e6:.1f} usec per iteration\n",
    )
    assert mean < 4e-3


def test_sec23_readsensor_inprocess_latency(benchmark):
    layout = validation_machine()
    service = SensorService(Solver([layout], record=False),
                            aliases=table1.sensor_map())
    with SensorConnection(service, component="disk") as sensor:
        benchmark(sensor.read)
    mean = benchmark.stats.stats.mean
    emit(
        "sec23_readsensor_inprocess",
        f"Section 2.3 — readsensor() latency, in-process transport\n"
        f"measured mean: {mean * 1e6:.1f} usec\n"
        f"real SCSI in-disk sensor: {SCSI_SENSOR_LATENCY * 1e6:.0f} usec\n",
    )
    assert mean < SCSI_SENSOR_LATENCY


def test_sec23_readsensor_udp_latency(benchmark):
    layout = validation_machine()
    service = SensorService(Solver([layout], record=False),
                            aliases=table1.sensor_map())
    with UdpSensorServer(service) as server:
        host, port = server.address
        with SensorConnection(host, port, component="disk") as sensor:
            sensor.read()  # warm both ends
            benchmark.pedantic(sensor.read, iterations=50, rounds=10)
    mean = benchmark.stats.stats.mean
    emit(
        "sec23_readsensor_udp",
        f"Section 2.3 — readsensor() latency, UDP loopback transport\n"
        f"measured mean: {mean * 1e6:.1f} usec\n"
        f"paper: ~300 usec over the network; real SCSI sensor ~500 usec\n",
    )
    # Localhost UDP should comfortably beat the physical disk sensor.
    assert mean < 5e-3
