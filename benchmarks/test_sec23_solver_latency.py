"""Section 2.3 timing claims: solver iteration and readsensor latency.

The paper reports the solver taking "roughly 100 usec on average to
compute each iteration" on the Figure 1 graphs, and readsensor() having
"an average response time of 300 usec", beating the 500 usec access time
of the real SCSI in-disk sensor.
"""

import statistics
import time

import pytest

from repro.config import table1
from repro.config.layouts import validation_cluster, validation_machine
from repro.core.compiled import have_numpy
from repro.core.solver import Solver
from repro.sensors.api import SensorConnection
from repro.sensors.server import SensorService, UdpSensorServer

from .conftest import SOLVER_ENGINE, emit, write_bench

#: The real SCSI in-disk sensor's average access time (paper).
SCSI_SENSOR_LATENCY = 500e-6


def test_sec23_solver_iteration_time(benchmark):
    layout = validation_machine()
    solver = Solver([layout], record=False, engine=SOLVER_ENGINE)
    solver.set_utilization("machine1", table1.CPU, 0.7)
    solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.4)

    result = benchmark(solver.step)

    mean = benchmark.stats.stats.mean
    emit(
        "sec23_solver_iteration",
        f"Section 2.3 — solver iteration time (Figure 1 graphs)\n"
        f"measured mean: {mean * 1e6:.1f} usec per iteration\n"
        f"paper: ~100 usec per iteration\n",
    )
    # Same order of magnitude as the paper's C implementation.
    assert mean < 1e-3


def test_sec23_cluster_iteration_time(benchmark):
    cluster = validation_cluster()
    solver = Solver(list(cluster.machines.values()), cluster=cluster,
                    record=False, engine=SOLVER_ENGINE)
    for machine in solver.machines:
        solver.set_utilization(machine, table1.CPU, 0.7)

    benchmark(solver.step)
    mean = benchmark.stats.stats.mean
    emit(
        "sec23_cluster_iteration",
        f"Section 2.3 — solver iteration time, 4-machine cluster\n"
        f"measured mean: {mean * 1e6:.1f} usec per iteration\n",
    )
    assert mean < 4e-3


def test_sec23_readsensor_inprocess_latency(benchmark):
    layout = validation_machine()
    service = SensorService(Solver([layout], record=False),
                            aliases=table1.sensor_map())
    with SensorConnection(service, component="disk") as sensor:
        benchmark(sensor.read)
    mean = benchmark.stats.stats.mean
    emit(
        "sec23_readsensor_inprocess",
        f"Section 2.3 — readsensor() latency, in-process transport\n"
        f"measured mean: {mean * 1e6:.1f} usec\n"
        f"real SCSI in-disk sensor: {SCSI_SENSOR_LATENCY * 1e6:.0f} usec\n",
    )
    assert mean < SCSI_SENSOR_LATENCY


def test_sec23_readsensor_udp_latency(benchmark):
    layout = validation_machine()
    service = SensorService(Solver([layout], record=False),
                            aliases=table1.sensor_map())
    with UdpSensorServer(service) as server:
        host, port = server.address
        with SensorConnection(host, port, component="disk") as sensor:
            sensor.read()  # warm both ends
            benchmark.pedantic(sensor.read, iterations=50, rounds=10)
    mean = benchmark.stats.stats.mean
    emit(
        "sec23_readsensor_udp",
        f"Section 2.3 — readsensor() latency, UDP loopback transport\n"
        f"measured mean: {mean * 1e6:.1f} usec\n"
        f"paper: ~300 usec over the network; real SCSI sensor ~500 usec\n",
    )
    # Localhost UDP should comfortably beat the physical disk sensor.
    assert mean < 5e-3


# ----------------------------------------------------------------------
# engine comparison: python vs compiled ticks/sec at 1/10/40 machines
# ----------------------------------------------------------------------

#: Cluster sizes the comparison sweeps (the paper emulates large clusters
#: by replication; 40 machines is the scale the compiled engine targets).
COMPARISON_SIZES = (1, 10, 40)


def _ticks_per_second(engine: str, n_machines: int) -> float:
    """Measure steady-state solver throughput for one engine/size point."""
    names = [f"machine{i}" for i in range(1, n_machines + 1)]
    cluster = validation_cluster(machine_names=names)
    solver = Solver(list(cluster.machines.values()), cluster=cluster,
                    record=False, engine=engine)
    for machine in names:
        solver.set_utilization(machine, table1.CPU, 0.7)
    for _ in range(5):  # warm up (first compiled tick pays compilation)
        solver.step()
    ticks = 0
    elapsed = 0.0
    while elapsed < 0.25:
        start = time.perf_counter()
        for _ in range(20):
            solver.step()
        elapsed += time.perf_counter() - start
        ticks += 20
    return ticks / elapsed


@pytest.mark.skipif(not have_numpy(), reason="compiled engine needs numpy")
def test_sec23_engine_comparison():
    """Write BENCH_solver.json: python vs compiled throughput by size."""
    results = {}
    for n in COMPARISON_SIZES:
        python_tps = _ticks_per_second("python", n)
        compiled_tps = _ticks_per_second("compiled", n)
        results[str(n)] = {
            "machines": n,
            "python_ticks_per_sec": python_tps,
            "compiled_ticks_per_sec": compiled_tps,
            "speedup": compiled_tps / python_tps,
        }

    write_bench("BENCH_solver.json", results)

    lines = ["Section 2.3 — solver throughput, python vs compiled engine",
             f"{'machines':>10} {'python t/s':>12} {'compiled t/s':>13} "
             f"{'speedup':>9}"]
    for n in COMPARISON_SIZES:
        row = results[str(n)]
        lines.append(
            f"{n:>10} {row['python_ticks_per_sec']:>12.1f} "
            f"{row['compiled_ticks_per_sec']:>13.1f} "
            f"{row['speedup']:>8.2f}x"
        )
    emit("sec23_engine_comparison", "\n".join(lines) + "\n")

    # The CI gate: at cluster scale the vectorized engine must win.
    assert results["40"]["speedup"] > 1.0
