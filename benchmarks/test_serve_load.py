"""Serving-plane load gates: datagram throughput and scrape latency.

Two measurements of the live thermal service under concurrent load, on
one asyncio event loop (the deployment shape of ``repro serve``):

* ``datagrams`` — several async clients blast sensor queries at an
  :class:`~repro.serve.datagrams.AsyncUdpSensorServer` as fast as
  replies come back (closed loop, so every datagram counted was also
  answered).  The gate: sustained throughput over the floor.

* ``scrape`` — a free-running :class:`~repro.serve.ThermalService`
  advances the Figure 11 cluster while concurrent scrapers hit
  ``/metrics`` and parse every response.  Latency is measured
  per-scrape while the simulation competes for the loop — the p99 gate
  bounds how long a Prometheus scrape can stall behind solver chunks.

Writes ``benchmark_results/BENCH_serve.json`` for the CI artifact.
"""

import asyncio
import time

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.solver import Solver
from repro.sensors.protocol import SensorQuery, SensorReply
from repro.sensors.server import SensorService
from repro.serve import AsyncUdpSensorServer, ThermalService, http_get
from repro.telemetry import Telemetry
from repro.telemetry.exposition import parse_prometheus

from .conftest import emit, write_bench

#: Closed-loop datagram clients and how long they hammer the endpoint.
DATAGRAM_CLIENTS = 8
DATAGRAM_SECONDS = 2.0

#: Sustained sensor datagrams/second the loop must clear (conservative:
#: a localhost asyncio endpoint typically clears tens of thousands).
DATAGRAMS_PER_SECOND_FLOOR = 1000.0

#: Concurrent /metrics scrapers and the per-run scrape budget.
SCRAPERS = 4
SCRAPE_SIM_SECONDS = 1200.0

#: Latency gates for one /metrics scrape under load, seconds.
SCRAPE_P99_CEILING = 0.5


class _QueryClient(asyncio.DatagramProtocol):
    """Closed-loop client: fires the next query as each reply lands."""

    def __init__(self, machine, component, stop_at):
        self.machine = machine
        self.component = component
        self.stop_at = stop_at
        self.replies = 0
        self.done = asyncio.get_running_loop().create_future()
        self._request_id = 0

    def connection_made(self, transport):
        self.transport = transport
        self._send()

    def _send(self):
        self._request_id += 1
        self.transport.sendto(
            SensorQuery(
                request_id=self._request_id,
                machine=self.machine,
                component=self.component,
            ).encode()
        )

    def datagram_received(self, data, addr):
        SensorReply.decode(data)
        self.replies += 1
        if time.monotonic() >= self.stop_at:
            if not self.done.done():
                self.done.set_result(self.replies)
            self.transport.close()
        else:
            self._send()


async def _measure_datagrams():
    layout = validation_machine()
    solver = Solver([layout], record=False)
    service = SensorService(solver, aliases=table1.sensor_map())
    async with AsyncUdpSensorServer(service) as server:
        loop = asyncio.get_running_loop()
        stop_at = time.monotonic() + DATAGRAM_SECONDS
        started = time.monotonic()
        clients = []
        for _ in range(DATAGRAM_CLIENTS):
            _, client = await loop.create_datagram_endpoint(
                lambda: _QueryClient(layout.name, table1.CPU, stop_at),
                remote_addr=server.address,
            )
            clients.append(client)
        totals = await asyncio.gather(*(c.done for c in clients))
        elapsed = time.monotonic() - started
        return sum(totals) / elapsed, sum(totals), elapsed


async def _measure_scrapes():
    simulation = ClusterSimulation(
        policy="freon", fiddle_script=emergency_script(),
        telemetry=Telemetry(),
    )
    async with ThermalService(simulation) as service:
        host, port = service.address
        run = asyncio.create_task(
            service.serve(duration=SCRAPE_SIM_SECONDS, pace=0.0)
        )
        latencies = []

        async def scraper():
            while not run.done():
                started = time.monotonic()
                status, _, body = await http_get(host, port, "/metrics")
                latencies.append(time.monotonic() - started)
                assert status == 200
                assert parse_prometheus(body.decode("utf-8"))

        await asyncio.gather(run, *(scraper() for _ in range(SCRAPERS)))
        return latencies


def _percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def test_serve_load_gates():
    rate, total, elapsed = asyncio.run(_measure_datagrams())
    latencies = asyncio.run(_measure_scrapes())
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    results = {
        "datagrams": {
            "clients": DATAGRAM_CLIENTS,
            "seconds": elapsed,
            "total": total,
            "per_second": rate,
            "floor_per_second": DATAGRAMS_PER_SECOND_FLOOR,
        },
        "scrape": {
            "scrapers": SCRAPERS,
            "sim_seconds": SCRAPE_SIM_SECONDS,
            "samples": len(latencies),
            "p50_seconds": p50,
            "p99_seconds": p99,
            "p99_ceiling_seconds": SCRAPE_P99_CEILING,
        },
    }
    write_bench("BENCH_serve.json", results)

    emit(
        "serve_load",
        "Live thermal service under load — one asyncio loop\n"
        f"datagrams: {total} queries answered in {elapsed:.2f} s by "
        f"{DATAGRAM_CLIENTS} closed-loop clients = {rate:,.0f}/s "
        f"(gate: >= {DATAGRAMS_PER_SECOND_FLOOR:,.0f}/s)\n"
        f"scrapes:   {len(latencies)} /metrics scrapes by {SCRAPERS} "
        f"concurrent scrapers while fig11 free-runs; "
        f"p50 {p50 * 1000:.1f} ms, p99 {p99 * 1000:.1f} ms "
        f"(gate: p99 < {SCRAPE_P99_CEILING * 1000:.0f} ms)\n",
    )

    assert total > 0 and len(latencies) >= SCRAPERS
    assert rate >= DATAGRAMS_PER_SECOND_FLOOR, (
        f"sensor endpoint sustained {rate:,.0f} datagrams/s "
        f"(gate: >= {DATAGRAMS_PER_SECOND_FLOOR:,.0f}/s)"
    )
    assert p99 < SCRAPE_P99_CEILING, (
        f"/metrics p99 {p99:.3f} s under load "
        f"(gate: < {SCRAPE_P99_CEILING:.1f} s)"
    )
