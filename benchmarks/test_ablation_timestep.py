"""Ablation: solver time step — accuracy vs cost.

The paper runs "one iteration per second by default" and notes the solver
"could execute for a large number of iterations at a time, thereby
providing greater accuracy.  However ... our default setting is enough".
This sweep quantifies that: a fine 0.1 s run is the yardstick, and each
candidate dt is scored on final-temperature deviation and per-simulated-
second compute cost.
"""

import time

import pytest

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.solver import Solver
from repro.machine.workloads import MixedBenchmark

from .conftest import emit

DTS = (0.25, 1.0, 5.0)
DURATION = 2000.0


def run_with_dt(layout, workload, dt):
    solver = Solver([layout], dt=dt, record=False)
    start = time.perf_counter()
    t = 0.0
    while t < DURATION:
        utils = workload.utilizations(t)
        if utils:
            solver.set_utilizations("machine1", utils)
        solver.step()
        t = solver.time
    elapsed = time.perf_counter() - start
    return (
        solver.temperature("machine1", table1.CPU),
        solver.temperature("machine1", table1.CPU_AIR),
        elapsed,
    )


def test_ablation_solver_timestep(benchmark):
    layout = validation_machine()
    workload = MixedBenchmark(duration=DURATION, seed=5)

    reference_cpu, reference_air, _ = run_with_dt(layout, workload, 0.1)
    rows = [f"{'dt (s)':>7} {'CPU dev (C)':>12} {'air dev (C)':>12} "
            f"{'wall (ms)':>10}"]
    deviations = {}
    for dt in DTS:
        cpu, air, elapsed = run_with_dt(layout, workload, dt)
        deviations[dt] = max(abs(cpu - reference_cpu), abs(air - reference_air))
        rows.append(
            f"{dt:>7.2f} {cpu - reference_cpu:>+12.4f} "
            f"{air - reference_air:>+12.4f} {elapsed * 1e3:>10.1f}"
        )

    summary = (
        "Ablation — solver time step (reference: dt=0.1 s), mixed "
        f"benchmark, {DURATION:.0f} s\n" + "\n".join(rows)
        + "\n\nInterpretation: the default 1 s tick tracks the fine "
        "integration to hundredths of a degree at a tenth of the cost; "
        "even 5 s stays well under the 1 C accuracy budget."
    )
    emit("ablation_timestep", summary)

    assert deviations[1.0] < 0.1
    assert deviations[5.0] < 1.0

    benchmark.pedantic(
        run_with_dt, args=(layout, workload, 1.0), iterations=1, rounds=1
    )
