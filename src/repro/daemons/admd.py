"""admd: Freon's admission-control daemon at the load balancer.

Section 4.1: on an ADJUST message for a hot server, admd

* sets the server's LVS weight so it receives ``1/(output+1)`` of the
  load it is currently receiving, and
* "orders LVS to limit the maximum allowed number of concurrent requests
  to the hot server at the average number of concurrent requests over
  the last time interval" — which admd knows because it "wakes up
  periodically (every five seconds in our experiments) and queries LVS
  about this statistic".

A RELEASE message eliminates all restrictions; a REDLINE message makes
admd turn the server off through the cluster's power-control hook
("Modern CPUs and disks turn themselves off when these temperatures are
reached; Freon extends the action to entire servers").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..cluster.lvs import LoadBalancer, ServerState
from ..freon.policy import FreonConfig, weight_for_share_reduction
from ..telemetry import ensure as _ensure_telemetry
from .tempd import (
    MSG_ADJUST,
    MSG_REDLINE,
    MSG_RELEASE,
    MSG_STATUS,
    TempdMessage,
)


class Admd:
    """The base Freon admission-control daemon."""

    def __init__(
        self,
        balancer: LoadBalancer,
        config: Optional[FreonConfig] = None,
        turn_off: Optional[Callable[[str], None]] = None,
        telemetry=None,
    ) -> None:
        self.balancer = balancer
        self.config = config or FreonConfig()
        self._turn_off = turn_off
        self.telemetry = _ensure_telemetry(telemetry)
        self._tel_actions = {
            action: self.telemetry.counter(
                "freon_actuations_total", {"action": action},
                help="admd actuations on the load balancer, by action.",
            )
            for action in ("adjust", "release", "redline")
        }
        self._stats_elapsed = 0.0
        #: Rolling (time, connections) samples per server.
        self._samples: Dict[str, Deque[Tuple[float, float]]] = {
            server.name: deque() for server in balancer.servers()
        }
        self.adjustments: List[Tuple[float, str, float]] = []
        self.releases: List[Tuple[float, str]] = []
        self.redlined: List[Tuple[float, str]] = []

    # -- LVS statistics sampling -------------------------------------------

    def tick(self, dt: float, now: float) -> None:
        """Advance the statistics clock; sample LVS every stats period."""
        self._stats_elapsed += dt
        if self._stats_elapsed + 1e-9 < self.config.stats_period:
            return
        self._stats_elapsed = 0.0
        self.sample(now)

    def sample(self, now: float) -> None:
        """Record one LVS connection-count sample per server."""
        horizon = now - self.config.monitor_period
        for name, connections in self.balancer.connection_stats().items():
            window = self._samples[name]
            window.append((now, connections))
            while window and window[0][0] < horizon:
                window.popleft()

    def average_connections(self, machine: str) -> float:
        """Mean concurrent connections over the last monitor period."""
        window = self._samples.get(machine)
        if not window:
            return self.balancer.server(machine).active_connections
        return sum(c for _, c in window) / len(window)

    # -- message handling ------------------------------------------------------

    def deliver(self, message: TempdMessage) -> None:
        """Handle one tempd message."""
        if message.type == MSG_ADJUST:
            self._handle_adjust(message)
        elif message.type == MSG_RELEASE:
            self._handle_release(message)
        elif message.type == MSG_REDLINE:
            self._handle_redline(message)
        elif message.type == MSG_STATUS:
            self._handle_status(message)

    def _handle_adjust(self, message: TempdMessage) -> None:
        machine = message.machine
        server = self.balancer.server(machine)
        if server.state is not ServerState.ACTIVE:
            return
        weights = {
            s.name: s.weight for s in self.balancer.active_servers()
        }
        new_weight = weight_for_share_reduction(
            weights, machine, message.output, telemetry=self.telemetry
        )
        self.balancer.set_weight(machine, new_weight)
        self.balancer.set_connection_limit(
            machine, self.average_connections(machine)
        )
        self.adjustments.append((message.time, machine, message.output))
        self._tel_actions["adjust"].inc()
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "freon_weight", {"machine": machine},
                help="Current LVS weight set by Freon.",
            ).set(new_weight)
            self.telemetry.event(
                "freon_adjust", "admd", machine=machine,
                output=message.output, weight=new_weight,
            )

    def _handle_release(self, message: TempdMessage) -> None:
        machine = message.machine
        self.balancer.set_weight(machine, self.config.base_weight)
        self.balancer.set_connection_limit(machine, None)
        self.releases.append((message.time, machine))
        self._tel_actions["release"].inc()
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "freon_weight", {"machine": machine},
                help="Current LVS weight set by Freon.",
            ).set(self.config.base_weight)
            self.telemetry.event("freon_release", "admd", machine=machine)

    def _handle_redline(self, message: TempdMessage) -> None:
        machine = message.machine
        self.redlined.append((message.time, machine))
        self._tel_actions["redline"].inc()
        if self.telemetry.enabled:
            self.telemetry.event("freon_redline", "admd", machine=machine)
        if self._turn_off is not None:
            self._turn_off(machine)

    def _handle_status(self, message: TempdMessage) -> None:
        """Base Freon ignores STATUS; Freon-EC overrides this."""
