"""The Mercury/Freon daemons: monitord, tempd, and admd."""

from .admd import Admd
from .monitord import Monitord
from .tempd import Tempd, TempdMessage
from .transport import AdmdListener, TempdSender

__all__ = ["Admd", "AdmdListener", "Monitord", "Tempd", "TempdMessage", "TempdSender"]
