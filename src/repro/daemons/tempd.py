"""tempd: Freon's per-server temperature daemon (paper section 4.1).

"A Freon process, called tempd or temperature daemon, at each server
monitors the temperature of the CPU(s) and disk(s) of the server.  Tempd
wakes up periodically (once per minute in our experiments) to check
component temperatures."  When any component exceeds its high threshold,
tempd sends admd the PD-controller output; it repeats that every period
until the component cools below the high threshold, and orders admd to
lift all restrictions once *every* component is below its low threshold.

tempd reads temperatures through the Mercury sensor library (or any
callable with the same shape) — on real hardware it would read physical
sensors; the interface is identical, which is the whole point of Mercury.

For Freon-EC, tempd "also sends utilization information to admd
periodically"; enable that with a ``utilization_reader``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SensorError
from ..freon.controller import ControllerBank
from ..freon.policy import FreonConfig
from ..telemetry import ensure as _ensure_telemetry

#: Message types tempd emits.
MSG_ADJUST = "adjust"
MSG_RELEASE = "release"
MSG_REDLINE = "redline"
MSG_STATUS = "status"


@dataclass(frozen=True)
class TempdMessage:
    """One tempd -> admd datagram (as a structured value)."""

    type: str
    machine: str
    time: float
    output: float = 0.0
    temperatures: Dict[str, float] = field(default_factory=dict)
    utilizations: Dict[str, float] = field(default_factory=dict)


class Tempd:
    """One server's temperature daemon.

    Parameters
    ----------
    machine:
        Server name, as known to admd and the balancer.
    temperature_reader:
        Callable returning {"cpu": T, "disk": T, ...} for this server.
    send:
        Callable delivering a :class:`TempdMessage` to admd.
    config:
        Thresholds, gains, and periods.
    utilization_reader:
        Optional callable returning component utilizations; when given,
        a STATUS message is sent every period (Freon-EC mode).

    Inside a :class:`~repro.cluster.simulation.ClusterSimulation` the
    event kernel schedules :meth:`wake` directly on the monitor-period
    grid — including across daemon crashes and restarts, so alignment
    is structural rather than re-derived.  The :meth:`tick` clock is
    for standalone use.
    """

    def __init__(
        self,
        machine: str,
        temperature_reader: Callable[[], Dict[str, float]],
        send: Callable[[TempdMessage], None],
        config: Optional[FreonConfig] = None,
        utilization_reader: Optional[Callable[[], Dict[str, float]]] = None,
        telemetry=None,
    ) -> None:
        self.machine = machine
        self.config = config or FreonConfig()
        self._read_temperatures = temperature_reader
        self._read_utilizations = utilization_reader
        self._send = send
        self._controllers = ControllerBank(kp=self.config.kp, kd=self.config.kd)
        self._elapsed = 0.0
        self.telemetry = _ensure_telemetry(telemetry)
        labels = {"machine": machine}
        self._tel_wakes = self.telemetry.counter(
            "tempd_wakes_total", labels, help="tempd monitor-period wake-ups.",
        )
        self._tel_read_failures = self.telemetry.counter(
            "tempd_read_failures_total", labels,
            help="Wake-ups whose sensor read failed.",
        )
        self._tel_stale = self.telemetry.counter(
            "tempd_stale_wakes_total", labels,
            help="Failed-read wake-ups holding the last-known-good posture.",
        )
        self._tel_conservative = self.telemetry.counter(
            "tempd_conservative_wakes_total", labels,
            help="Failed-read wake-ups falling back to conservative throttling.",
        )
        self._tel_output = self.telemetry.gauge(
            "tempd_pd_output", labels,
            help="Most recent PD-controller output sent to admd.",
        )
        #: True while admd has restrictions in place for this server.
        self.restricted = False
        #: Components currently above their high threshold.
        self.hot_components: List[str] = []
        self.messages_sent = 0
        #: Last successful (time, readings) pair, for sensor-failure holds.
        self._last_good: Optional[Tuple[float, Dict[str, float]]] = None
        #: PD output of the most recent ADJUST, held during staleness.
        self._last_output: Optional[float] = None
        self.read_failures = 0
        self.stale_wakes = 0
        self.conservative_wakes = 0

    def tick(self, dt: float, now: float) -> List[TempdMessage]:
        """Advance the daemon clock; act when a monitor period elapses."""
        self._elapsed += dt
        if self._elapsed + 1e-9 < self.config.monitor_period:
            return []
        self._elapsed = 0.0
        return self.wake(now)

    def wake(self, now: float) -> List[TempdMessage]:
        """One wake-up: read temperatures, run the policy, send messages."""
        self._tel_wakes.inc()
        try:
            temperatures = dict(self._read_temperatures())
        except SensorError:
            return self._wake_without_readings(now)
        self._last_good = (now, dict(temperatures))
        sent: List[TempdMessage] = []
        highs = {c: self.config.high(c) for c in temperatures}
        self.hot_components = [
            c for c, t in temperatures.items() if t > highs[c]
        ]

        # Red-line check comes first: past T_r the server must shut down.
        red_hot = [
            c for c, t in temperatures.items() if t >= self.config.red(c)
        ]
        if red_hot:
            sent.append(
                TempdMessage(
                    type=MSG_REDLINE,
                    machine=self.machine,
                    time=now,
                    temperatures=temperatures,
                )
            )

        if self.hot_components:
            output = self._controllers.combined_output(temperatures, highs)
            self.restricted = True
            self._last_output = output
            self._tel_output.set(output)
            sent.append(
                TempdMessage(
                    type=MSG_ADJUST,
                    machine=self.machine,
                    time=now,
                    output=output,
                    temperatures=temperatures,
                )
            )
        else:
            # Keep derivative state fresh while below the high thresholds.
            self._controllers.combined_output(temperatures, highs)
            all_cool = all(
                t < self.config.low(c) for c, t in temperatures.items()
            )
            if self.restricted and all_cool:
                self.restricted = False
                self._controllers.reset()
                sent.append(
                    TempdMessage(
                        type=MSG_RELEASE,
                        machine=self.machine,
                        time=now,
                        temperatures=temperatures,
                    )
                )

        if self._read_utilizations is not None:
            sent.append(
                TempdMessage(
                    type=MSG_STATUS,
                    machine=self.machine,
                    time=now,
                    temperatures=temperatures,
                    utilizations=dict(self._read_utilizations()),
                )
            )

        self._finish_wake(sent)
        return sent

    def _finish_wake(self, sent: List[TempdMessage]) -> None:
        for message in sent:
            self._send(message)
        self.messages_sent += len(sent)
        if self.telemetry.enabled:
            for message in sent:
                self.telemetry.counter(
                    "tempd_messages_total",
                    {"machine": self.machine, "type": message.type},
                    help="tempd messages sent to admd, by type.",
                ).inc()

    def _wake_without_readings(self, now: float) -> List[TempdMessage]:
        """Resilience path: the sensor read failed this wake-up.

        Within the staleness limit of the last good reading, hold the
        current posture (re-assert the last PD output if restricted, do
        nothing otherwise).  Past the limit, fail conservative: ask admd
        to throttle this server rather than run it blind near T_h.
        """
        self.read_failures += 1
        self._tel_read_failures.inc()
        last = self._last_good
        fresh_enough = (
            last is not None
            and now - last[0] <= self.config.sensor_staleness_limit + 1e-9
        )
        stale_temps = dict(last[1]) if last is not None else {}
        sent: List[TempdMessage] = []
        if fresh_enough:
            self.stale_wakes += 1
            self._tel_stale.inc()
            if self.telemetry.enabled:
                self.telemetry.event(
                    "tempd_stale_hold", "tempd", machine=self.machine,
                    restricted=self.restricted,
                )
            if self.restricted and self._last_output is not None:
                sent.append(
                    TempdMessage(
                        type=MSG_ADJUST,
                        machine=self.machine,
                        time=now,
                        output=self._last_output,
                        temperatures=stale_temps,
                    )
                )
        else:
            self.conservative_wakes += 1
            self._tel_conservative.inc()
            if self.telemetry.enabled:
                self.telemetry.event(
                    "tempd_conservative_fallback", "tempd",
                    machine=self.machine,
                    output=self.config.conservative_output,
                )
            self.restricted = True
            self._last_output = self.config.conservative_output
            self._tel_output.set(self.config.conservative_output)
            sent.append(
                TempdMessage(
                    type=MSG_ADJUST,
                    machine=self.machine,
                    time=now,
                    output=self.config.conservative_output,
                    temperatures=stale_temps,
                )
            )
        self._finish_wake(sent)
        return sent
