"""UDP transport for Freon's tempd -> admd messages (Figure 9).

"tempd sends a UDP message to a Freon process at the load-balancer node,
called admd."  In-process experiments hand :class:`TempdMessage` values
straight to ``Admd.deliver``; this module provides the wire path for
deployments where tempd really runs on each server: a compact JSON
datagram encoding, a listener thread on the admd side, and a sender
handle for the tempd side.

JSON (rather than a packed struct) is used deliberately: Freon messages
are low-rate (one per server per minute), carry nested maps of
per-component readings, and benefit from being greppable in packet
captures.  Each datagram stays well under a single MTU.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Callable, Optional, Tuple

from ..errors import SensorError
from ..faults.backoff import DAEMON_JOIN_TIMEOUT, SERVER_POLL_INTERVAL
from ..telemetry import ensure as _ensure_telemetry
from .tempd import TempdMessage

#: Safety bound: a Freon message must fit one comfortable datagram.
MAX_MESSAGE_BYTES = 4096

_FIELDS = ("type", "machine", "time", "output", "temperatures", "utilizations")


def encode_message(message: TempdMessage) -> bytes:
    """Serialize a tempd message to one JSON datagram."""
    payload = {
        "type": message.type,
        "machine": message.machine,
        "time": message.time,
        "output": message.output,
        "temperatures": dict(message.temperatures),
        "utilizations": dict(message.utilizations),
    }
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_MESSAGE_BYTES:
        raise SensorError(
            f"tempd message too large for one datagram ({len(data)} bytes)"
        )
    return data


def decode_message(data: bytes) -> TempdMessage:
    """Parse one JSON datagram back into a tempd message."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SensorError(f"malformed tempd datagram: {exc}") from None
    if not isinstance(payload, dict):
        raise SensorError("malformed tempd datagram: not an object")
    missing = [field for field in _FIELDS if field not in payload]
    if missing:
        raise SensorError(f"tempd datagram missing fields: {missing}")
    if not isinstance(payload["type"], str) or not isinstance(
        payload["machine"], str
    ):
        raise SensorError("tempd datagram fields have wrong types")
    try:
        return TempdMessage(
            type=payload["type"],
            machine=payload["machine"],
            time=float(payload["time"]),
            output=float(payload["output"]),
            temperatures={
                str(k): float(v) for k, v in payload["temperatures"].items()
            },
            utilizations={
                str(k): float(v) for k, v in payload["utilizations"].items()
            },
        )
    except (TypeError, ValueError, AttributeError) as exc:
        raise SensorError(f"tempd datagram fields have wrong types: {exc}") from None


class TempdSender:
    """tempd's side: a ``send`` callable delivering over UDP.

    Pass an instance as the ``send`` argument of
    :class:`~repro.daemons.tempd.Tempd`.
    """

    def __init__(self, address: Tuple[str, int], telemetry=None) -> None:
        self._address = address
        self._sock: Optional[socket.socket] = socket.socket(
            socket.AF_INET, socket.SOCK_DGRAM
        )
        self.sent = 0
        self._tel_sent = _ensure_telemetry(telemetry).counter(
            "freon_udp_messages_sent_total",
            help="tempd messages sent over UDP.",
        )

    def __call__(self, message: TempdMessage) -> None:
        sock = self._sock
        if sock is None:
            raise SensorError("send on a closed TempdSender")
        sock.sendto(encode_message(message), self._address)
        self.sent += 1
        self._tel_sent.inc()

    def close(self) -> None:
        """Release the socket.  Idempotent: extra calls are no-ops.

        The socket is detached before closing, so a concurrent ``send``
        gets a clean :class:`SensorError` instead of racing a half-closed
        descriptor.
        """
        sock, self._sock = self._sock, None
        if sock is not None:
            sock.close()

    def __enter__(self) -> "TempdSender":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _AdmdHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        data, _sock = self.request
        server = self.server
        try:
            message = decode_message(data)
        except SensorError:
            server.malformed += 1  # type: ignore[attr-defined]
            server.tel_malformed.inc()  # type: ignore[attr-defined]
            return
        with server.deliver_lock:  # type: ignore[attr-defined]
            server.deliver(message)  # type: ignore[attr-defined]
            server.received += 1  # type: ignore[attr-defined]
            server.tel_received.inc()  # type: ignore[attr-defined]


class AdmdListener:
    """admd's side: a UDP endpoint feeding ``deliver`` with messages.

    ``deliver`` is typically ``Admd.deliver``; calls are serialized with
    an internal lock, since the threading server may handle datagrams
    from several tempds concurrently.
    """

    def __init__(
        self,
        deliver: Callable[[TempdMessage], None],
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
    ) -> None:
        telemetry = _ensure_telemetry(telemetry)
        self._server = socketserver.ThreadingUDPServer((host, port), _AdmdHandler)
        self._server.deliver = deliver  # type: ignore[attr-defined]
        self._server.deliver_lock = threading.Lock()  # type: ignore[attr-defined]
        self._server.received = 0  # type: ignore[attr-defined]
        self._server.malformed = 0  # type: ignore[attr-defined]
        self._server.tel_received = telemetry.counter(  # type: ignore[attr-defined]
            "freon_udp_messages_received_total",
            help="tempd messages received and delivered to admd.",
        )
        self._server.tel_malformed = telemetry.counter(  # type: ignore[attr-defined]
            "freon_udp_messages_malformed_total",
            help="UDP datagrams dropped as malformed.",
        )
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) tempds should send to."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ephemeral ``port=0``)."""
        return self.address[1]

    @property
    def received(self) -> int:
        """Messages delivered so far."""
        return self._server.received  # type: ignore[attr-defined]

    @property
    def malformed(self) -> int:
        """Datagrams dropped as malformed."""
        return self._server.malformed  # type: ignore[attr-defined]

    def start(self) -> "AdmdListener":
        """Start serving on a daemon thread."""
        if self._closed:
            raise SensorError("listener already stopped")
        if self._thread is not None:
            raise SensorError("listener already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": SERVER_POLL_INTERVAL},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down, join the listener thread, and release the socket.

        Idempotent and exception-safe: extra calls are no-ops, the
        socket is always closed even if the shutdown handshake raises,
        and a listener that was never started still releases the socket
        it bound in ``__init__`` (so pool workers cannot leak it).
        """
        if self._closed:
            return
        self._closed = True
        thread, self._thread = self._thread, None
        try:
            if thread is not None:
                self._server.shutdown()
                thread.join(timeout=DAEMON_JOIN_TIMEOUT)
        finally:
            self._server.server_close()

    def __enter__(self) -> "AdmdListener":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
