"""monitord: the per-machine component-utilization monitoring daemon.

"The monitor daemon, called monitord, periodically samples the
utilization of the components of the machine on which it is running and
reports that information to the solver. ... utilization information is
computed from /proc.  The frequency of utilization updates sent to the
solver is a tunable parameter set to 1 second by default.  Our current
implementation uses 128-byte UDP messages to update the solver."

Two reporting modes are implemented, as in the paper:

* **/proc mode** (default) — interval utilizations from the simulated
  /proc counters;
* **performance-counter mode** (section 2.3, "Mercury for modern
  processors") — the CPU's utilization is replaced by the "low-level
  utilization" derived from counter-estimated energy, so the solver's
  linear model remains valid for non-linear CPUs.

The daemon is simulation-clock driven: the harness calls :meth:`tick`
once per simulated period.  Transport is either a direct
:class:`~repro.sensors.server.SensorService` or a UDP endpoint.
"""

from __future__ import annotations

import socket
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector

from ..config import table1
from ..machine.perfcounters import (
    CounterUtilizationReporter,
    calibrated_estimator,
)
from ..machine.procfs import ProcReader
from ..machine.server import SimulatedServer
from ..sensors import protocol
from ..sensors.server import SensorService
from ..telemetry import ensure as _ensure_telemetry

#: Default update period, seconds.
DEFAULT_PERIOD = 1.0


class Monitord:
    """One machine's monitoring daemon.

    Parameters
    ----------
    machine:
        Name the solver knows this machine by.
    server:
        The (simulated) physical machine to sample.
    transport:
        A :class:`SensorService` for in-process delivery, or a
        ``(host, port)`` tuple for real UDP datagrams.
    period:
        Seconds of simulated time between updates.
    use_counters:
        Enable the performance-counter CPU mode (the server must have
        been built with ``with_counters=True``).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; while it
        reports this machine's monitord stalled or crashed, ticks elapse
        without sampling, so the solver keeps seeing stale utilizations.
    """

    def __init__(
        self,
        machine: str,
        server: SimulatedServer,
        transport: Union[SensorService, Tuple[str, int]],
        period: float = DEFAULT_PERIOD,
        use_counters: bool = False,
        injector: Optional["FaultInjector"] = None,
        telemetry=None,
    ) -> None:
        if period <= 0.0:
            raise ValueError("period must be positive")
        self.machine = machine
        self.server = server
        self.period = period
        self._reader = ProcReader(server.procfs)
        self._service: Optional[SensorService] = None
        self._sock: Optional[socket.socket] = None
        self._address: Optional[Tuple[str, int]] = None
        if isinstance(transport, SensorService):
            self._service = transport
        else:
            self._address = transport
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._counter_reporter: Optional[CounterUtilizationReporter] = None
        if use_counters:
            if server.counters is None:
                raise ValueError(
                    "counter mode requested but the server has no counters"
                )
            cpu_model = server.layout.components[table1.CPU].power_model
            self._counter_reporter = CounterUtilizationReporter(
                counters=server.counters,
                estimator=calibrated_estimator(cpu_model, server.counters),
                power_model=cpu_model,
            )
        self.injector = injector
        self.telemetry = _ensure_telemetry(telemetry)
        labels = {"machine": machine}
        self._tel_updates = self.telemetry.counter(
            "monitord_updates_total", labels,
            help="Utilization updates sent to the solver.",
        )
        self._tel_stalled = self.telemetry.counter(
            "monitord_stalled_total", labels,
            help="Updates suppressed by an injected stall or crash.",
        )
        self.updates_sent = 0
        self.updates_stalled = 0
        self._elapsed = 0.0

    def tick(self, dt: float = 1.0) -> Optional[Dict[str, float]]:
        """Advance the daemon's clock; send an update when a period elapses.

        Returns the utilizations sent, or None when no update was due
        (including while an injected stall or crash suppresses sampling —
        the first tick after recovery sends immediately).
        """
        self._elapsed += dt
        if self._elapsed + 1e-9 < self.period:
            return None
        if self.injector is not None and not self.injector.monitord_active(
            self.machine
        ):
            self.updates_stalled += 1
            self._tel_stalled.inc()
            return None
        self._elapsed = 0.0
        return self.send_update()

    def send_update(self) -> Dict[str, float]:
        """Sample /proc (and counters) and push one update to the solver."""
        utilizations = self._reader.sample()
        if self._counter_reporter is not None:
            utilizations[table1.CPU] = self._counter_reporter.sample()
        update = protocol.UtilizationUpdate(
            machine=self.machine, utilizations=utilizations
        )
        if self._service is not None:
            self._service.handle_update(update.encode())
        else:
            assert self._sock is not None and self._address is not None
            self._sock.sendto(update.encode(), self._address)
        self.updates_sent += 1
        self._tel_updates.inc()
        return utilizations

    def close(self) -> None:
        """Release the UDP socket, if any."""
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "Monitord":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
