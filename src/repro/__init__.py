"""Mercury & Freon: temperature emulation and management for server systems.

A from-scratch Python reproduction of Heath et al., ASPLOS 2006:

* **Mercury** (:mod:`repro.core`, :mod:`repro.sensors`,
  :mod:`repro.daemons`, :mod:`repro.fiddle`, :mod:`repro.mdot`) — a
  temperature *emulation* suite: a coarse-grained graph-based
  finite-element solver fed by component utilizations, exposing
  temperatures through a sensor-device-style API, with runtime
  "fiddling" to inject thermal emergencies.
* **Freon** (:mod:`repro.freon`) — thermal-emergency management for a
  web-server cluster behind a weighted least-connections balancer, plus
  Freon-EC, which combines energy conservation with thermal management.
* **Substrates** (:mod:`repro.machine`, :mod:`repro.reference`,
  :mod:`repro.cluster`) — the simulated physical server, the 2-D
  reference thermal simulator standing in for Fluent, and the LVS +
  Apache-style cluster model the evaluation needs.

Quickstart (a runnable doctest — ten simulated minutes at 80% CPU load
settle the validation machine's CPU just above 57 C):

    >>> from repro import validation_machine, Solver
    >>> layout = validation_machine()
    >>> solver = Solver([layout])
    >>> solver.set_utilization("machine1", "CPU", 0.8)
    >>> solver.run(600)
    >>> round(solver.temperature("machine1", "CPU"), 1)
    57.2

See README.md for a tour and DESIGN.md for the system inventory.
"""

from .config.layouts import validation_cluster, validation_machine
from .core.calibration import calibrate, compare, emulate, measure_run
from .core.graph import (
    AirEdge,
    AirRegion,
    ClusterAirEdge,
    ClusterLayout,
    Component,
    CoolingSource,
    HeatEdge,
    MachineLayout,
)
from .core.power import (
    ConstantPowerModel,
    LinearPowerModel,
    PowerModel,
    ScaledPowerModel,
    TablePowerModel,
)
from .core.solver import Solver
from .core.trace import UtilizationTrace, load_traces, run_offline, save_traces
from .errors import ReproError
from .fiddle.tool import Fiddle
from .sensors.api import SensorConnection, closesensor, opensensor, readsensor
from .sensors.server import SensorService, UdpSensorServer

__version__ = "1.0.0"

__all__ = [
    "AirEdge",
    "AirRegion",
    "ClusterAirEdge",
    "ClusterLayout",
    "Component",
    "ConstantPowerModel",
    "CoolingSource",
    "Fiddle",
    "HeatEdge",
    "LinearPowerModel",
    "MachineLayout",
    "PowerModel",
    "ReproError",
    "ScaledPowerModel",
    "SensorConnection",
    "SensorService",
    "Solver",
    "TablePowerModel",
    "UdpSensorServer",
    "UtilizationTrace",
    "calibrate",
    "closesensor",
    "compare",
    "emulate",
    "load_traces",
    "measure_run",
    "opensensor",
    "readsensor",
    "run_offline",
    "save_traces",
    "validation_cluster",
    "validation_machine",
]
