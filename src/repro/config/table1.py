"""Every constant of the paper's Table 1, as structured data.

Table 1 lists the component properties (mass, specific heat capacity,
min/max power), the boundary conditions (inlet temperature, fan speed),
the heat-transfer constants of the intra-machine heat-flow graph, the
intra-machine air fractions, and the inter-machine air fractions used in
both the validation (section 3) and the Freon studies (section 5).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .. import units

# -- vertex names (Figure 1) -------------------------------------------

DISK_PLATTERS = "Disk Platters"
DISK_SHELL = "Disk Shell"
CPU = "CPU"
POWER_SUPPLY = "Power Supply"
MOTHERBOARD = "Motherboard"

INLET = "Inlet"
DISK_AIR = "Disk Air"
PS_AIR = "PS Air"
CPU_AIR = "CPU Air"
VOID_AIR = "Void Space Air"
DISK_AIR_DOWN = "Disk Air Downstream"
PS_AIR_DOWN = "PS Air Downstream"
CPU_AIR_DOWN = "CPU Air Downstream"
EXHAUST = "Exhaust"

COMPONENT_NAMES = (DISK_PLATTERS, DISK_SHELL, CPU, POWER_SUPPLY, MOTHERBOARD)
AIR_REGION_NAMES = (
    INLET,
    DISK_AIR,
    PS_AIR,
    CPU_AIR,
    VOID_AIR,
    DISK_AIR_DOWN,
    PS_AIR_DOWN,
    CPU_AIR_DOWN,
    EXHAUST,
)

# -- component properties ------------------------------------------------

#: Mass in kg.
MASS: Dict[str, float] = {
    DISK_PLATTERS: 0.336,
    DISK_SHELL: 0.505,
    CPU: 0.151,
    POWER_SUPPLY: 1.643,
    MOTHERBOARD: 0.718,
}

#: Specific heat capacity in J/(K kg).  Aluminium for the disk drive
#: pieces, CPU-plus-heat-sink, and power supply; FR4 for the motherboard.
SPECIFIC_HEAT: Dict[str, float] = {
    DISK_PLATTERS: units.ALUMINUM_SPECIFIC_HEAT,
    DISK_SHELL: units.ALUMINUM_SPECIFIC_HEAT,
    CPU: units.ALUMINUM_SPECIFIC_HEAT,
    POWER_SUPPLY: units.ALUMINUM_SPECIFIC_HEAT,
    MOTHERBOARD: units.FR4_SPECIFIC_HEAT,
}

#: (min, max) power in Watts.  The disk shell produces no heat of its own.
POWER_RANGE: Dict[str, Tuple[float, float]] = {
    DISK_PLATTERS: (9.0, 14.0),
    DISK_SHELL: (0.0, 0.0),
    CPU: (7.0, 31.0),
    POWER_SUPPLY: (40.0, 40.0),
    MOTHERBOARD: (4.0, 4.0),
}

#: Components whose utilization monitord samples and reports.
MONITORED: Tuple[str, ...] = (CPU, DISK_PLATTERS)

# -- boundary conditions --------------------------------------------------

#: Machine-room supply air temperature, Celsius.
INLET_TEMPERATURE = 21.6

#: Case fan volumetric flow, cubic feet per minute.
FAN_CFM = 38.6

# -- heat-flow graph edges: (from, to, k in Watts/Kelvin) -----------------

HEAT_EDGES: List[Tuple[str, str, float]] = [
    (DISK_PLATTERS, DISK_SHELL, 2.0),
    (DISK_SHELL, DISK_AIR, 1.9),
    (CPU, CPU_AIR, 0.75),
    (POWER_SUPPLY, PS_AIR, 4.0),
    (MOTHERBOARD, VOID_AIR, 10.0),
    (MOTHERBOARD, CPU, 0.1),
]

# -- intra-machine air-flow edges: (from, to, fraction) --------------------

AIR_EDGES: List[Tuple[str, str, float]] = [
    (INLET, DISK_AIR, 0.4),
    (INLET, PS_AIR, 0.5),
    (INLET, VOID_AIR, 0.1),
    (DISK_AIR, DISK_AIR_DOWN, 1.0),
    (DISK_AIR_DOWN, VOID_AIR, 1.0),
    (PS_AIR, PS_AIR_DOWN, 1.0),
    (PS_AIR_DOWN, VOID_AIR, 0.85),
    (PS_AIR_DOWN, CPU_AIR, 0.15),
    (VOID_AIR, CPU_AIR, 0.05),
    (VOID_AIR, EXHAUST, 0.95),
    (CPU_AIR, CPU_AIR_DOWN, 1.0),
    (CPU_AIR_DOWN, EXHAUST, 1.0),
]

# -- inter-machine air-flow edges (Figure 1(c)) ----------------------------

AC = "AC"
CLUSTER_EXHAUST = "Cluster Exhaust"
CLUSTER_MACHINES = ("machine1", "machine2", "machine3", "machine4")

CLUSTER_EDGES: List[Tuple[str, str, float]] = [
    (AC, "machine1", 0.25),
    (AC, "machine2", 0.25),
    (AC, "machine3", 0.25),
    (AC, "machine4", 0.25),
    ("machine1", CLUSTER_EXHAUST, 1.0),
    ("machine2", CLUSTER_EXHAUST, 1.0),
    ("machine3", CLUSTER_EXHAUST, 1.0),
    ("machine4", CLUSTER_EXHAUST, 1.0),
]

# -- Freon thresholds (section 5) ------------------------------------------

#: High / low / red-line temperature thresholds, Celsius, per sensor.
T_HIGH_CPU = 67.0
T_LOW_CPU = 64.0
T_HIGH_DISK = 65.0
T_LOW_DISK = 62.0
#: "T_h should be set just below T_r, e.g. 2 degrees lower".
T_RED_CPU = 69.0
T_RED_DISK = 67.0

#: PD controller gains (section 4.1).
FREON_KP = 0.1
FREON_KD = 0.2

#: Freon-EC utilization thresholds (section 4.2).
EC_UTIL_HIGH = 0.70
EC_UTIL_LOW = 0.60

#: Section 5 emergency settings: inlet temperatures forced by fiddle.
EMERGENCY_TIME = 480.0
EMERGENCY_INLET_M1 = 38.6
EMERGENCY_INLET_M3 = 35.6


def sensor_map() -> Dict[str, str]:
    """Sensor-name aliases exposed through the sensor library.

    ``readsensor`` callers use short names ("cpu", "disk"); this maps them
    to graph vertices.  The paper measures *CPU air* (a sensor on top of
    the heat sink) and the disk's internal sensor (the shell/core).
    """
    return {
        "cpu": CPU,
        "cpu_air": CPU_AIR,
        "disk": DISK_PLATTERS,
        "disk_shell": DISK_SHELL,
        "inlet": INLET,
        "exhaust": EXHAUST,
        "motherboard": MOTHERBOARD,
        "power_supply": POWER_SUPPLY,
    }
