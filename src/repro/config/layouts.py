"""Programmatic builders for the paper's Figure 1 graphs.

:func:`validation_machine` builds the intra-machine heat-flow and
air-flow graphs of Figures 1(a)/(b) with the constants of Table 1 —
the single Pentium-III server used for the real-machine validation.
:func:`validation_cluster` builds the four-machine cluster of
Figure 1(c) used for the Freon studies.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.graph import (
    AirEdge,
    AirRegion,
    ClusterAirEdge,
    ClusterLayout,
    Component,
    CoolingSource,
    HeatEdge,
    MachineLayout,
)
from ..core.power import ConstantPowerModel, LinearPowerModel, PowerModel
from . import table1


def _power_model(name: str) -> PowerModel:
    low, high = table1.POWER_RANGE[name]
    if low == high:
        return ConstantPowerModel(low)
    return LinearPowerModel(p_base=low, p_max=high)


def validation_machine(
    name: str = "machine1",
    inlet_temperature: float = table1.INLET_TEMPERATURE,
    fan_cfm: float = table1.FAN_CFM,
    k_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
) -> MachineLayout:
    """The Table 1 server as a :class:`MachineLayout`.

    ``k_overrides`` replaces individual heat-edge constants, keyed by the
    canonical (sorted) endpoint pair — this is how calibrated constants
    are re-materialized into a layout.
    """
    components = [
        Component(
            name=component,
            mass=table1.MASS[component],
            specific_heat=table1.SPECIFIC_HEAT[component],
            power_model=_power_model(component),
            monitored=component in table1.MONITORED,
        )
        for component in table1.COMPONENT_NAMES
    ]
    air_regions = [AirRegion(region) for region in table1.AIR_REGION_NAMES]
    heat_edges = []
    for a, b, k in table1.HEAT_EDGES:
        key = (a, b) if a <= b else (b, a)
        if k_overrides is not None and key in k_overrides:
            k = k_overrides[key]
        heat_edges.append(HeatEdge(a, b, k))
    air_edges = [AirEdge(src, dst, f) for src, dst, f in table1.AIR_EDGES]
    return MachineLayout(
        name=name,
        components=components,
        air_regions=air_regions,
        heat_edges=heat_edges,
        air_edges=air_edges,
        inlet=table1.INLET,
        exhaust=table1.EXHAUST,
        inlet_temperature=inlet_temperature,
        fan_cfm=fan_cfm,
    )


def validation_cluster(
    machine_names: Sequence[str] = table1.CLUSTER_MACHINES,
    supply_temperature: float = table1.INLET_TEMPERATURE,
    k_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
) -> ClusterLayout:
    """The Figure 1(c) cluster: one AC feeding N identical machines.

    The graph "represents the ideal situation in which there is no air
    recirculation across the machines": the AC splits its supply evenly
    and every machine exhausts into the cluster exhaust.
    """
    machines = [
        validation_machine(name, inlet_temperature=supply_temperature,
                           k_overrides=k_overrides)
        for name in machine_names
    ]
    share = 1.0 / len(machines)
    edges = [
        ClusterAirEdge(table1.AC, machine.name, share) for machine in machines
    ] + [
        ClusterAirEdge(machine.name, table1.CLUSTER_EXHAUST, 1.0)
        for machine in machines
    ]
    return ClusterLayout(
        machines=machines,
        sources=[CoolingSource(table1.AC, supply_temperature)],
        edges=edges,
        sinks=[table1.CLUSTER_EXHAUST],
    )


def recirculating_cluster(
    machine_names: Sequence[str] = table1.CLUSTER_MACHINES,
    supply_temperature: float = table1.INLET_TEMPERATURE,
    recirculation: float = 0.1,
) -> ClusterLayout:
    """A cluster variant where each machine re-ingests a neighbour's exhaust.

    Section 2.2 notes that "recirculation and rack layout effects can also
    be represented using more complex graphs"; this builder demonstrates
    one: machine ``i`` sends ``recirculation`` of its exhaust to machine
    ``i+1``'s inlet (ring order), the rest to the cluster exhaust.
    """
    if not 0.0 <= recirculation < 1.0:
        raise ValueError("recirculation fraction must be in [0, 1)")
    machines = [
        validation_machine(name, inlet_temperature=supply_temperature)
        for name in machine_names
    ]
    count = len(machines)
    share = 1.0 / count
    edges = [ClusterAirEdge(table1.AC, m.name, share) for m in machines]
    for idx, machine in enumerate(machines):
        neighbour = machines[(idx + 1) % count]
        edges.append(ClusterAirEdge(machine.name, neighbour.name, recirculation))
        edges.append(
            ClusterAirEdge(machine.name, table1.CLUSTER_EXHAUST, 1.0 - recirculation)
        )
    return ClusterLayout(
        machines=machines,
        sources=[CoolingSource(table1.AC, supply_temperature)],
        edges=edges,
        sinks=[table1.CLUSTER_EXHAUST],
    )
