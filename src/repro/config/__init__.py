"""Paper constants (Table 1) and builders for the Figure 1 layouts."""

from . import table1
from .cmp import cmp_machine, set_core_utilizations
from .layouts import recirculating_cluster, validation_cluster, validation_machine

__all__ = [
    "cmp_machine", "recirculating_cluster", "set_core_utilizations",
    "table1", "validation_cluster", "validation_machine",
]
