"""Chip-multiprocessor layouts: two-level CPU emulation (section 7).

"We also plan to study the emulation of chip multiprocessors, which will
probably have to be done in two levels, for each core and the entire
chip."  This builder does exactly that on top of the Table 1 server:

* each **core** is a small component with its own utilization and a
  per-core share of the CPU's dynamic power;
* the **package** (heat spreader + heat sink, carrying most of the
  Table 1 CPU mass) aggregates the cores through per-core conductances
  and is the only CPU-side node touching the air stream;
* the uncore/static power stays in the package.

Core temperatures respond quickly (small mass) and individually — a
single busy core runs hotter than its idle siblings — while the package
integrates them, which is the two-level behaviour the paper anticipates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.graph import AirEdge, AirRegion, Component, HeatEdge, MachineLayout
from ..core.power import ConstantPowerModel, LinearPowerModel
from . import table1

#: Fraction of the CPU's dynamic power budget spent in the cores (the
#: rest is uncore: interconnect, caches, memory controller).
CORE_POWER_SHARE = 0.8

#: Per-core die mass (kg): a few grams of silicon and heat-spreader copper.
CORE_MASS = 0.004

#: Core-to-package conductance (W/K).  Die-to-spreader paths are short
#: and wide, so this is much larger than the package-to-air conductance.
CORE_TO_PACKAGE_K = 2.5


def core_name(index: int) -> str:
    """Canonical name of core ``index`` ("Core 0", "Core 1", ...)."""
    return f"Core {index}"


def cmp_machine(
    cores: int = 4,
    name: str = "machine1",
    inlet_temperature: float = table1.INLET_TEMPERATURE,
    fan_cfm: float = table1.FAN_CFM,
    k_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
) -> MachineLayout:
    """The Table 1 server with its CPU split into a CMP.

    The aggregate power envelope matches Table 1's CPU (7 W idle, 31 W
    all-cores-busy): each of the ``cores`` cores spans an equal slice of
    the core power budget, and the package models the uncore.
    """
    if cores < 1:
        raise ValueError("a CMP needs at least one core")
    cpu_base, cpu_max = table1.POWER_RANGE[table1.CPU]
    dynamic = cpu_max - cpu_base
    core_dynamic = dynamic * CORE_POWER_SHARE / cores
    core_idle = cpu_base * 0.3 / cores  # leakage lives mostly in the cores
    package_idle = cpu_base - core_idle * cores
    package_max = package_idle + dynamic * (1.0 - CORE_POWER_SHARE)

    package_mass = table1.MASS[table1.CPU] - CORE_MASS * cores
    if package_mass <= 0.0:
        raise ValueError("too many cores for the Table 1 CPU mass budget")

    components: List[Component] = [
        Component(
            name=core_name(i),
            mass=CORE_MASS,
            specific_heat=table1.SPECIFIC_HEAT[table1.CPU],
            power_model=LinearPowerModel(core_idle, core_idle + core_dynamic),
            monitored=True,
        )
        for i in range(cores)
    ]
    components.append(
        Component(
            name="CPU Package",
            mass=package_mass,
            specific_heat=table1.SPECIFIC_HEAT[table1.CPU],
            # The uncore scales with the *average* core utilization, which
            # monitord reports as this component's utilization.
            power_model=LinearPowerModel(package_idle, package_max),
            monitored=True,
        )
    )
    for component in table1.COMPONENT_NAMES:
        if component == table1.CPU:
            continue
        low, high = table1.POWER_RANGE[component]
        model = (
            ConstantPowerModel(low)
            if low == high
            else LinearPowerModel(low, high)
        )
        components.append(
            Component(
                name=component,
                mass=table1.MASS[component],
                specific_heat=table1.SPECIFIC_HEAT[component],
                power_model=model,
                monitored=component in table1.MONITORED,
            )
        )

    heat_edges: List[HeatEdge] = [
        HeatEdge(core_name(i), "CPU Package", CORE_TO_PACKAGE_K)
        for i in range(cores)
    ]
    for a, b, k in table1.HEAT_EDGES:
        # The package inherits the CPU's edges to the air and motherboard.
        a = "CPU Package" if a == table1.CPU else a
        b = "CPU Package" if b == table1.CPU else b
        key = (a, b) if a <= b else (b, a)
        if k_overrides is not None and key in k_overrides:
            k = k_overrides[key]
        heat_edges.append(HeatEdge(a, b, k))

    air_regions = [AirRegion(region) for region in table1.AIR_REGION_NAMES]
    air_edges = [AirEdge(src, dst, f) for src, dst, f in table1.AIR_EDGES]
    return MachineLayout(
        name=name,
        components=components,
        air_regions=air_regions,
        heat_edges=heat_edges,
        air_edges=air_edges,
        inlet=table1.INLET,
        exhaust=table1.EXHAUST,
        inlet_temperature=inlet_temperature,
        fan_cfm=fan_cfm,
    )


def set_core_utilizations(solver, machine: str, utilizations: "List[float]") -> None:
    """Feed per-core utilizations plus the derived package utilization.

    monitord in CMP mode reports one utilization per core and lets the
    package's (uncore) utilization be their average.
    """
    for index, value in enumerate(utilizations):
        solver.set_utilization(machine, core_name(index), value)
    average = sum(utilizations) / len(utilizations) if utilizations else 0.0
    solver.set_utilization(machine, "CPU Package", average)
