"""Material properties for the reference (Fluent-substitute) simulator.

The 2-D server-case model of section 3.2 meshes a case containing a CPU,
a disk, and a power supply.  Each mesh cell carries a material; the
steady-state solver needs the thermal conductivity (W/(m K)) and, for
transient use, the volumetric heat capacity (J/(m^3 K)).

Air's conductivity grows mildly with temperature — that is the physical
non-linearity that keeps a lumped constant-k model (Mercury) from being
*exactly* equivalent to the meshed model, giving the small residual
errors the paper reports (0.25-0.32 Celsius).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Material:
    """Thermal properties of one mesh material."""

    name: str
    #: Thermal conductivity at the reference temperature, W/(m K).
    conductivity: float
    #: Volumetric heat capacity rho * c, J/(m^3 K).
    volumetric_heat_capacity: float
    #: Fractional change of conductivity per Kelvin above the reference.
    conductivity_slope: float = 0.0

    def conductivity_at(self, temperature: float, reference: float = 25.0) -> float:
        """Temperature-dependent conductivity (never below 10% of nominal)."""
        k = self.conductivity * (
            1.0 + self.conductivity_slope * (temperature - reference)
        )
        return max(k, 0.1 * self.conductivity)


#: Still air.  The conductivity here is an *effective* value that folds in
#: local convective mixing, which is why it is far above the molecular
#: 0.026 W/(m K); the prescribed advection field handles bulk transport.
AIR = Material(
    name="air",
    conductivity=0.5,
    volumetric_heat_capacity=1.16 * 1005.0,
    conductivity_slope=0.003,
)

#: Aluminium (heat sinks, disk housing, PSU casing).
ALUMINUM = Material(
    name="aluminum",
    conductivity=205.0,
    volumetric_heat_capacity=2700.0 * 896.0,
)

#: FR4 board laminate.
FR4 = Material(
    name="fr4",
    conductivity=0.5,
    volumetric_heat_capacity=1850.0 * 1245.0,
)

#: Generic packaged-silicon block (CPU die + package, disk internals).
PACKAGE = Material(
    name="package",
    conductivity=40.0,
    volumetric_heat_capacity=2330.0 * 700.0,
)
