"""Transient integration of the 2-D case mesh (vectorized).

The steady solver answers section 3.2's question; this explicit
time-integrator answers a different one the engineering tools also serve:
*how fast* the meshed case responds to a power step.  It reuses the same
finite-volume discretization (conduction with harmonic-mean face
conductivities, upwind advection with wake entrainment) and marches it
forward with per-cell heat capacities, fully vectorized over the grid.

Temperature-dependent conductivities change slowly, so the face
conductance arrays are refreshed every ``_K_REFRESH_STEPS`` rather than
every step; the error this introduces is far below the scheme's own
truncation error.

Used in tests to cross-check the steady solver (the transient solution
must converge to it) and to extract meshed-model time constants that
Mercury's lumped masses can be compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from .. import units
from .mesh import CaseMesh

#: Stability safety factor on the explicit time-step bound.
_CFL_SAFETY = 0.4

#: Steps between refreshes of the temperature-dependent conductances.
_K_REFRESH_STEPS = 200


@dataclass
class TransientResult:
    """Temperature field history of a transient run."""

    mesh: CaseMesh
    times: List[float]
    #: Mean block temperature per sample, per block name.
    block_history: Dict[str, List[float]]
    #: Final full field, shape (ny, nx).
    final: np.ndarray

    def block_temperature(self, name: str) -> float:
        """Final mean temperature of a block."""
        return self.block_history[name][-1]

    def time_to_fraction(self, name: str, fraction: float = 0.632) -> float:
        """Time for a block to cover ``fraction`` of its total rise.

        With ``fraction`` = 1 - 1/e this is the block's effective time
        constant for the run's power step.
        """
        series = self.block_history[name]
        start, end = series[0], series[-1]
        if abs(end - start) < 1e-9:
            return 0.0
        target = start + fraction * (end - start)
        for t, value in zip(self.times, series):
            if (value - target) * (end - start) >= 0.0:
                return t
        return self.times[-1]


def stable_dt(mesh: CaseMesh) -> float:
    """The explicit scheme's stability bound for this mesh."""
    d = mesh.cell_size
    velocity = mesh.velocity_field()
    rho_c_air = units.AIR_DENSITY * units.AIR_SPECIFIC_HEAT
    worst = float("inf")
    for y in range(mesh.ny):
        for x in range(mesh.nx):
            mat = mesh.material[y][x]
            # Conservative k estimate (hot air conducts a bit better).
            k = mat.conductivity_at(80.0)
            capacity = mat.volumetric_heat_capacity * d * d  # per depth
            conduction = 4.0 * k  # four faces, A/d == 1 per depth
            advection = rho_c_air * velocity[y, x] * d
            rate = conduction + advection
            if rate > 0.0:
                worst = min(worst, capacity / rate)
    return _CFL_SAFETY * worst


def _material_arrays(mesh: CaseMesh) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(base conductivity, conductivity slope, volumetric heat capacity)."""
    ny, nx = mesh.ny, mesh.nx
    base = np.empty((ny, nx))
    slope = np.empty((ny, nx))
    capacity = np.empty((ny, nx))
    for y in range(ny):
        for x in range(nx):
            mat = mesh.material[y][x]
            base[y, x] = mat.conductivity
            slope[y, x] = mat.conductivity_slope
            capacity[y, x] = mat.volumetric_heat_capacity
    return base, slope, capacity


def _upstream_operator(
    mesh: CaseMesh, velocity: np.ndarray
) -> Tuple[csr_matrix, np.ndarray]:
    """Sparse operator mapping the field to per-cell upstream temperature.

    ``upstream = U @ T.ravel() + b * T_inlet`` for every cell with flow;
    cells without flow get zero rows (their advective term is masked out).
    Wake cells draw from the entrained west-column donors, matching the
    steady solver.
    """
    ny, nx = mesh.ny, mesh.nx
    n = ny * nx
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    b = np.zeros(n)

    def idx(x: int, y: int) -> int:
        return y * nx + x

    for y in range(ny):
        for x in range(nx):
            if velocity[y, x] <= 0.0:
                continue
            cell = idx(x, y)
            if x == 0:
                b[cell] = 1.0
            elif mesh.is_air(x - 1, y) and velocity[y, x - 1] > 0.0:
                rows.append(cell)
                cols.append(idx(x - 1, y))
                vals.append(1.0)
            else:
                west: List[Tuple[int, float]] = []
                for reach in (3, ny):
                    west = [
                        (yy, velocity[yy, x - 1])
                        for yy in range(ny)
                        if abs(yy - y) <= reach and velocity[yy, x - 1] > 0.0
                    ]
                    if west:
                        break
                total = sum(v for _, v in west)
                if total > 0.0:
                    for yy, v in west:
                        rows.append(cell)
                        cols.append(idx(x - 1, yy))
                        vals.append(v / total)
                else:
                    b[cell] = 1.0
    return csr_matrix((vals, (rows, cols)), shape=(n, n)), b


def solve_transient(
    mesh: CaseMesh,
    duration: float,
    initial: Optional[np.ndarray] = None,
    sample_every: float = 5.0,
    dt: Optional[float] = None,
) -> TransientResult:
    """Integrate the mesh for ``duration`` seconds from ``initial``.

    ``initial`` defaults to a uniform field at the inlet temperature (a
    cold start against a power step).  The integrator uses the largest
    stable explicit step unless ``dt`` is given.
    """
    if duration <= 0.0:
        raise ValueError("duration must be positive")
    ny, nx = mesh.ny, mesh.nx
    d = mesh.cell_size
    depth = mesh.depth
    velocity = mesh.velocity_field()
    rho_c_air = units.AIR_DENSITY * units.AIR_SPECIFIC_HEAT
    if dt is None:
        dt = stable_dt(mesh)
    if dt <= 0.0:
        raise ValueError("dt must be positive")

    temps = (
        np.full((ny, nx), mesh.inlet_temperature)
        if initial is None
        else initial.astype(float).copy()
    )

    base_k, slope_k, vol_capacity = _material_arrays(mesh)
    capacity = vol_capacity * d * d * depth
    source_power = mesh.source * d * d * depth  # W per cell
    m_dot = rho_c_air * velocity * d * depth
    flow_mask = velocity > 0.0
    upstream_op, inlet_weight = _upstream_operator(mesh, velocity)
    inlet_air_left = np.array(
        [mesh.is_air(0, y) for y in range(ny)], dtype=bool
    )

    # Block-cell index lists for sampling.
    block_cells = {
        name: tuple(np.array(list(zip(*mesh.block_cells(name))))[::-1])
        for name in mesh.blocks
    }  # (y_indices, x_indices)

    def block_mean(name: str) -> float:
        ys, xs = block_cells[name]
        return float(temps[ys, xs].mean())

    def refresh_conductances(field: np.ndarray):
        k = base_k * (1.0 + slope_k * (field - 25.0))
        k = np.maximum(k, 0.1 * base_k)
        gx = 2.0 * k[:, :-1] * k[:, 1:] / (k[:, :-1] + k[:, 1:]) * depth
        gy = 2.0 * k[:-1, :] * k[1:, :] / (k[:-1, :] + k[1:, :]) * depth
        g_inlet = 2.0 * k[:, 0] * depth
        return gx, gy, g_inlet

    gx, gy, g_inlet = refresh_conductances(temps)

    times: List[float] = [0.0]
    block_history: Dict[str, List[float]] = {
        name: [block_mean(name)] for name in mesh.blocks
    }

    elapsed = 0.0
    next_sample = sample_every
    steps = int(np.ceil(duration / dt))
    for step in range(steps):
        if step and step % _K_REFRESH_STEPS == 0:
            gx, gy, g_inlet = refresh_conductances(temps)
        flux = np.zeros_like(temps)
        dx_flow = gx * (temps[:, 1:] - temps[:, :-1])
        flux[:, :-1] += dx_flow
        flux[:, 1:] -= dx_flow
        dy_flow = gy * (temps[1:, :] - temps[:-1, :])
        flux[:-1, :] += dy_flow
        flux[1:, :] -= dy_flow
        flux[inlet_air_left, 0] += g_inlet[inlet_air_left] * (
            mesh.inlet_temperature - temps[inlet_air_left, 0]
        )
        upstream = (
            upstream_op @ temps.ravel() + inlet_weight * mesh.inlet_temperature
        ).reshape(ny, nx)
        flux[flow_mask] += m_dot[flow_mask] * (
            upstream[flow_mask] - temps[flow_mask]
        )
        temps = temps + dt * (flux + source_power) / capacity
        elapsed += dt
        if elapsed >= next_sample or step == steps - 1:
            times.append(elapsed)
            for name in mesh.blocks:
                block_history[name].append(block_mean(name))
            next_sample += sample_every

    return TransientResult(
        mesh=mesh, times=times, block_history=block_history, final=temps
    )
