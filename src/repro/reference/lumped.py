"""Bridging the 2-D reference model and Mercury (paper section 3.2).

The paper calibrated Mercury against Fluent by feeding it "the
heat-transfer properties of the material-to-air boundaries" that Fluent
computed, "with a rough approximation of the air flow that was also
provided by Fluent", then compared steady-state temperatures for 14
combinations of CPU and disk power.  This module reproduces that loop:

* :func:`lumped_case_layout` — a Mercury :class:`MachineLayout` of the
  2-D case: the inlet splits into a disk stream, a PSU stream, and a
  bypass; each stream routes partly over the CPU and partly straight to
  the exhaust (in the mesh, most PSU exhaust air passes *above* the CPU);
* :func:`steady_temperatures` — run Mercury to steady state at fixed
  component powers;
* :func:`calibrate_from_reference` — seed the conductances from one
  reference solution and least-squares polish conductances *and* air
  fractions against a few reference points;
* :func:`comparison_table` — the 14-experiment Mercury-vs-reference
  table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from .. import units
from ..core.graph import AirEdge, AirRegion, Component, HeatEdge, MachineLayout
from ..core.power import LinearPowerModel
from ..core.solver import Solver
from .mesh import CaseMesh, standard_case
from .steady import SteadyResult, solve_steady

#: Upper bound (W) used to map power onto the linear model's utilization.
_POWER_CEILING = 60.0

#: Node names of the lumped case model.
CASE_INLET = "Inlet"
CASE_DISK_AIR = "Disk Air"
CASE_PSU_AIR = "PSU Air"
CASE_BYPASS = "Bypass Air"
CASE_CPU_AIR = "CPU Air"
CASE_EXHAUST = "Exhaust"
CASE_COMPONENTS = ("cpu", "disk", "psu")

#: The air-routing parameters of the lumped model, with geometry-derived
#: defaults ("a rough approximation of the air flow"): inlet splits, and
#: the share of each front stream that passes over the CPU.
DEFAULT_FRACTIONS: Dict[str, float] = {
    "inlet_disk": 0.25,     # disk occupies 4 of 16 rows
    "inlet_psu": 0.3125,    # PSU occupies 5 of 16 rows
    "disk_to_cpu": 0.8,     # disk sits level with the CPU
    "psu_to_cpu": 0.1,      # PSU air passes above the CPU
    "bypass_to_cpu": 0.5,
}


def case_flow_cfm(mesh: CaseMesh) -> float:
    """Volumetric flow through the 2-D case, in ft^3/min."""
    open_cells = sum(1 for y in range(mesh.ny) if mesh.is_air(0, y))
    flow_m3s = mesh.inlet_velocity * open_cells * mesh.cell_size * mesh.depth
    return units.m3s_to_cfm(flow_m3s)


def lumped_case_layout(
    k_values: Mapping[str, float],
    fractions: Optional[Mapping[str, float]] = None,
    mesh: Optional[CaseMesh] = None,
    name: str = "case2d",
) -> MachineLayout:
    """Mercury's coarse model of the 2-D case (see module docstring)."""
    if mesh is None:
        mesh = standard_case()
    f = dict(DEFAULT_FRACTIONS)
    if fractions:
        f.update(fractions)
    f_bypass = 1.0 - f["inlet_disk"] - f["inlet_psu"]
    if f_bypass < 0.0:
        raise ValueError("inlet fractions exceed 1")
    # Masses only set how fast the lumped model *reaches* steady state
    # (never the steady temperatures themselves), so they are kept small
    # to make steady-state evaluation cheap.
    masses = {"cpu": 0.02, "disk": 0.05, "psu": 0.15}
    components = [
        Component(
            name=comp,
            mass=masses[comp],
            specific_heat=units.ALUMINUM_SPECIFIC_HEAT,
            power_model=LinearPowerModel(0.0, _POWER_CEILING),
            monitored=True,
        )
        for comp in CASE_COMPONENTS
    ]
    air_regions = [
        AirRegion(region)
        for region in (
            CASE_INLET,
            CASE_DISK_AIR,
            CASE_PSU_AIR,
            CASE_BYPASS,
            CASE_CPU_AIR,
            CASE_EXHAUST,
        )
    ]
    heat_edges = [
        HeatEdge("disk", CASE_DISK_AIR, k_values["disk"]),
        HeatEdge("psu", CASE_PSU_AIR, k_values["psu"]),
        HeatEdge("cpu", CASE_CPU_AIR, k_values["cpu"]),
    ]
    air_edges = [
        AirEdge(CASE_INLET, CASE_DISK_AIR, f["inlet_disk"]),
        AirEdge(CASE_INLET, CASE_PSU_AIR, f["inlet_psu"]),
        AirEdge(CASE_INLET, CASE_BYPASS, f_bypass),
        AirEdge(CASE_DISK_AIR, CASE_CPU_AIR, f["disk_to_cpu"]),
        AirEdge(CASE_DISK_AIR, CASE_EXHAUST, 1.0 - f["disk_to_cpu"]),
        AirEdge(CASE_PSU_AIR, CASE_CPU_AIR, f["psu_to_cpu"]),
        AirEdge(CASE_PSU_AIR, CASE_EXHAUST, 1.0 - f["psu_to_cpu"]),
        AirEdge(CASE_BYPASS, CASE_CPU_AIR, f["bypass_to_cpu"]),
        AirEdge(CASE_BYPASS, CASE_EXHAUST, 1.0 - f["bypass_to_cpu"]),
        AirEdge(CASE_CPU_AIR, CASE_EXHAUST, 1.0),
    ]
    return MachineLayout(
        name=name,
        components=components,
        air_regions=air_regions,
        heat_edges=heat_edges,
        air_edges=air_edges,
        inlet=CASE_INLET,
        exhaust=CASE_EXHAUST,
        inlet_temperature=mesh.inlet_temperature,
        fan_cfm=case_flow_cfm(mesh),
    )


def steady_temperatures(
    layout: MachineLayout,
    powers: Mapping[str, float],
    tolerance: float = 1e-3,
    max_time: float = 20000.0,
) -> Dict[str, float]:
    """Run Mercury at fixed powers until temperatures stop moving.

    Returns the temperature of every node.  Convergence is declared when
    no node moves more than ``tolerance`` Kelvin over 50 s of simulated
    time.
    """
    solver = Solver([layout], dt=1.0, record=False)
    for comp, power in powers.items():
        solver.set_utilization(layout.name, comp, power / _POWER_CEILING)
    window = 50
    elapsed = 0.0
    previous = dict(solver.machine(layout.name).temperatures)
    while elapsed < max_time:
        solver.step(window)
        elapsed += window
        current = solver.machine(layout.name).temperatures
        drift = max(abs(current[k] - previous[k]) for k in current)
        if drift < tolerance:
            return dict(current)
        previous = dict(current)
    return dict(solver.machine(layout.name).temperatures)


def conductances_from_reference(result: SteadyResult) -> Dict[str, float]:
    """The material-to-air conductances a reference solution implies."""
    return {name: result.effective_conductance(name) for name in CASE_COMPONENTS}


@dataclass(frozen=True)
class LumpedCalibration:
    """The fitted lumped model parameters."""

    k_values: Dict[str, float]
    fractions: Dict[str, float]
    rmse: float


def calibrate_from_reference(
    mesh: Optional[CaseMesh] = None,
    calibration_powers: Sequence[Tuple[float, float]] = (
        (15.0, 8.0), (15.0, 14.0), (35.0, 8.0), (35.0, 14.0)
    ),
    psu_power: float = 40.0,
) -> LumpedCalibration:
    """Fit the lumped constants and air fractions against the reference.

    Conductances are seeded from the material-to-air boundary properties
    of the first calibration solution; a bounded least-squares pass then
    tunes the three ``k`` values and the five routing fractions so
    Mercury's steady block temperatures match the reference at every
    calibration point.
    """
    if mesh is None:
        mesh = standard_case()
    cpu0, disk0 = calibration_powers[0]
    mesh.set_power("cpu", cpu0)
    mesh.set_power("disk", disk0)
    mesh.set_power("psu", psu_power)
    seed_result = solve_steady(mesh)
    k_seed = conductances_from_reference(seed_result)

    targets: List[Tuple[float, float, Dict[str, float]]] = []
    for cpu_power, disk_power in calibration_powers:
        mesh.set_power("cpu", cpu_power)
        mesh.set_power("disk", disk_power)
        reference = solve_steady(mesh)
        targets.append(
            (
                cpu_power,
                disk_power,
                {name: reference.block_temperature(name) for name in CASE_COMPONENTS},
            )
        )

    k_order = list(CASE_COMPONENTS)
    f_order = list(DEFAULT_FRACTIONS)

    def unpack(x: np.ndarray) -> Tuple[Dict[str, float], Dict[str, float]]:
        k_values = {
            name: float(k_seed[name] * np.exp(x[i])) for i, name in enumerate(k_order)
        }
        fractions = {
            name: float(x[len(k_order) + j]) for j, name in enumerate(f_order)
        }
        return k_values, fractions

    def residuals(x: np.ndarray) -> np.ndarray:
        k_values, fractions = unpack(x)
        if fractions["inlet_disk"] + fractions["inlet_psu"] > 0.98:
            return np.full(len(targets) * len(k_order), 1e3)
        layout = lumped_case_layout(k_values, fractions=fractions, mesh=mesh)
        out: List[float] = []
        for cpu_power, disk_power, reference_temps in targets:
            temps = steady_temperatures(
                layout, {"cpu": cpu_power, "disk": disk_power, "psu": psu_power}
            )
            for name in k_order:
                out.append(temps[name] - reference_temps[name])
        return np.asarray(out)

    x0 = np.concatenate(
        [np.zeros(len(k_order)), [DEFAULT_FRACTIONS[name] for name in f_order]]
    )
    lower = np.concatenate([np.full(len(k_order), -3.0), np.full(len(f_order), 0.02)])
    upper = np.concatenate([np.full(len(k_order), 3.0), np.full(len(f_order), 0.95)])
    fit = least_squares(
        residuals, x0, bounds=(lower, upper), max_nfev=80, xtol=1e-8, diff_step=0.05
    )
    k_values, fractions = unpack(fit.x)
    final = residuals(fit.x)
    rmse = float(np.sqrt(np.mean(final**2)))
    return LumpedCalibration(k_values=k_values, fractions=fractions, rmse=rmse)


@dataclass(frozen=True)
class ComparisonRow:
    """One line of the section 3.2 validation table."""

    cpu_power: float
    disk_power: float
    reference_cpu: float
    mercury_cpu: float
    reference_disk: float
    mercury_disk: float

    @property
    def cpu_error(self) -> float:
        """Mercury-minus-reference CPU temperature (Celsius)."""
        return self.mercury_cpu - self.reference_cpu

    @property
    def disk_error(self) -> float:
        """Mercury-minus-reference disk temperature (Celsius)."""
        return self.mercury_disk - self.reference_disk


def comparison_table(
    power_points: Sequence[Tuple[float, float]],
    calibration: Optional[LumpedCalibration] = None,
    mesh: Optional[CaseMesh] = None,
    psu_power: float = 40.0,
) -> List[ComparisonRow]:
    """Mercury vs. reference steady temperatures at each power point."""
    if mesh is None:
        mesh = standard_case()
    if calibration is None:
        calibration = calibrate_from_reference(mesh)
    layout = lumped_case_layout(
        calibration.k_values, fractions=calibration.fractions, mesh=mesh
    )
    rows: List[ComparisonRow] = []
    for cpu_power, disk_power in power_points:
        mesh.set_power("cpu", cpu_power)
        mesh.set_power("disk", disk_power)
        mesh.set_power("psu", psu_power)
        reference = solve_steady(mesh)
        temps = steady_temperatures(
            layout, {"cpu": cpu_power, "disk": disk_power, "psu": psu_power}
        )
        rows.append(
            ComparisonRow(
                cpu_power=cpu_power,
                disk_power=disk_power,
                reference_cpu=reference.block_temperature("cpu"),
                mercury_cpu=temps["cpu"],
                reference_disk=reference.block_temperature("disk"),
                mercury_disk=temps["disk"],
            )
        )
    return rows


#: The paper ran 14 experiments over different CPU/disk power pairs.
DEFAULT_POWER_POINTS: Tuple[Tuple[float, float], ...] = (
    (10.0, 8.0), (10.0, 14.0),
    (15.0, 8.0), (15.0, 14.0),
    (20.0, 8.0), (20.0, 14.0),
    (25.0, 8.0), (25.0, 14.0),
    (30.0, 8.0), (30.0, 14.0),
    (35.0, 8.0), (35.0, 14.0),
    (40.0, 8.0), (40.0, 14.0),
)
