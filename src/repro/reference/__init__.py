"""The Fluent-substitute reference simulator (2-D finite-volume model)."""

from .lumped import (
    DEFAULT_POWER_POINTS,
    ComparisonRow,
    LumpedCalibration,
    calibrate_from_reference,
    comparison_table,
    lumped_case_layout,
    steady_temperatures,
)
from .mesh import Block, CaseMesh, standard_case
from .steady import SteadyResult, solve_steady

__all__ = [
    "Block", "CaseMesh", "ComparisonRow", "DEFAULT_POWER_POINTS",
    "LumpedCalibration", "SteadyResult", "calibrate_from_reference",
    "comparison_table", "lumped_case_layout", "solve_steady",
    "standard_case", "steady_temperatures",
]
