"""Steady-state finite-volume solver for the 2-D case mesh.

This plays Fluent's role in section 3.2: an independent, fine-grained
model that "computes steady-state temperatures based on a fixed power
consumption for each hardware component".  Per cell the energy balance is

``sum_faces k_face A/d (T_nb - T) + advection + source = 0``

with harmonic-mean face conductivities, first-order upwind advection on
the prescribed velocity field, a Dirichlet inlet (left edge), an outflow
right edge, and adiabatic top/bottom walls.  Air conductivity depends on
temperature, so the linear system is re-assembled in a Picard loop until
the temperature field stops moving.

The result object also computes the quantities the paper extracted from
Fluent to calibrate Mercury: per-block mean temperatures, the heat each
block sheds to the air, and the implied lumped conductances
("Fluent was able to calculate the heat-transfer properties of the
material-to-air boundaries").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import spsolve

from .. import units
from .materials import AIR
from .mesh import CaseMesh

#: Picard-iteration convergence threshold (max cell change, Kelvin).
_PICARD_TOL = 1e-4
_PICARD_MAX_ITER = 60


@dataclass
class SteadyResult:
    """Converged steady-state field plus block-level summaries."""

    mesh: CaseMesh
    temperatures: np.ndarray  # (ny, nx)
    iterations: int

    def block_temperature(self, name: str) -> float:
        """Mean temperature of a component block (what the paper compares)."""
        cells = self.mesh.block_cells(name)
        return float(np.mean([self.temperatures[y, x] for x, y in cells]))

    def block_peak_temperature(self, name: str) -> float:
        """Hottest cell of a component block."""
        cells = self.mesh.block_cells(name)
        return float(np.max([self.temperatures[y, x] for x, y in cells]))

    def mean_air_temperature(self) -> float:
        """Mean temperature over all air cells."""
        mask = np.array(
            [
                [self.mesh.is_air(x, y) for x in range(self.mesh.nx)]
                for y in range(self.mesh.ny)
            ]
        )
        return float(np.mean(self.temperatures[mask]))

    def outlet_temperature(self) -> float:
        """Flow-weighted air temperature leaving the right edge."""
        mesh = self.mesh
        u = mesh.velocity_field()
        x = mesh.nx - 1
        num = 0.0
        den = 0.0
        for y in range(mesh.ny):
            if mesh.is_air(x, y) and u[y, x] > 0.0:
                num += u[y, x] * self.temperatures[y, x]
                den += u[y, x]
        return num / den if den > 0.0 else mesh.inlet_temperature

    def local_air_temperature(self, name: str) -> float:
        """Mean temperature of the air cells bordering a block."""
        mesh = self.mesh
        block = mesh.blocks[name]
        temps = []
        for y in range(block.y0 - 1, block.y1 + 1):
            for x in range(block.x0 - 1, block.x1 + 1):
                if 0 <= x < mesh.nx and 0 <= y < mesh.ny and mesh.is_air(x, y):
                    inside_x = block.x0 <= x < block.x1
                    inside_y = block.y0 <= y < block.y1
                    on_border = (
                        (x in (block.x0 - 1, block.x1) and block.y0 <= y < block.y1)
                        or (y in (block.y0 - 1, block.y1) and block.x0 <= x < block.x1)
                    )
                    if on_border and not (inside_x and inside_y):
                        temps.append(self.temperatures[y, x])
        return float(np.mean(temps)) if temps else mesh.inlet_temperature

    def effective_conductance(self, name: str) -> float:
        """Lumped block-to-local-air conductance k = P / (T_block - T_air).

        This is the material-to-air boundary property the paper fed from
        Fluent into Mercury as the heat edge's ``k``.
        """
        block = self.mesh.blocks[name]
        delta = self.block_temperature(name) - self.local_air_temperature(name)
        if delta <= 0.0:
            raise ValueError(f"block {name!r} is not hotter than its air")
        return block.power / delta


def solve_steady(mesh: CaseMesh,
                 initial: Optional[np.ndarray] = None) -> SteadyResult:
    """Solve the steady advection-diffusion problem on ``mesh``."""
    ny, nx = mesh.ny, mesh.nx
    n = nx * ny
    d = mesh.cell_size
    depth = mesh.depth
    velocity = mesh.velocity_field()
    rho_c = units.AIR_DENSITY * units.AIR_SPECIFIC_HEAT

    temps = (
        np.full((ny, nx), mesh.inlet_temperature)
        if initial is None
        else initial.copy()
    )

    def idx(x: int, y: int) -> int:
        return y * nx + x

    for iteration in range(1, _PICARD_MAX_ITER + 1):
        rows: list = []
        cols: list = []
        vals: list = []
        rhs = np.zeros(n)

        def add(r: int, c: int, v: float) -> None:
            rows.append(r)
            cols.append(c)
            vals.append(v)

        for y in range(ny):
            for x in range(nx):
                cell = idx(x, y)
                mat = mesh.material[y][x]
                k_cell = mat.conductivity_at(temps[y, x])
                diag = 0.0
                # -- conduction through the four faces (per unit depth
                #    times depth; square cells make A/d == depth) --
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nx_, ny_ = x + dx, y + dy
                    if 0 <= nx_ < nx and 0 <= ny_ < ny:
                        k_nb = mesh.material[ny_][nx_].conductivity_at(
                            temps[ny_, nx_]
                        )
                        k_face = (
                            2.0 * k_cell * k_nb / (k_cell + k_nb)
                            if (k_cell + k_nb) > 0.0
                            else 0.0
                        )
                        g = k_face * depth  # W/K through the face
                        add(cell, idx(nx_, ny_), g)
                        diag -= g
                    elif dx == -1 and mesh.is_air(x, y):
                        # Left edge air cell: Dirichlet inlet through a
                        # half-cell conduction path.
                        g = 2.0 * k_cell * depth
                        rhs[cell] -= g * mesh.inlet_temperature
                        diag -= g
                    # other boundaries: adiabatic (top/bottom/solid-left)
                    # or outflow (right; handled by advection)
                # -- upwind advection (positive-x flow only) --
                u = velocity[y, x]
                if u > 0.0:
                    m_dot = rho_c * u * d * depth  # W/K through the cell
                    if x == 0:
                        rhs[cell] -= m_dot * mesh.inlet_temperature
                    elif mesh.is_air(x - 1, y) and velocity[y, x - 1] > 0.0:
                        add(cell, idx(x - 1, y), m_dot)
                    else:
                        # Wake cell (solid immediately upstream): fed by
                        # entrainment from the *nearby* west-column
                        # streamlines, so no phantom inlet-temperature
                        # air is injected mid-case and stratification is
                        # preserved.  Widen the window only if the near
                        # rows are all solid.
                        west = []
                        for reach in (3, ny):
                            west = [
                                (yy, velocity[yy, x - 1])
                                for yy in range(ny)
                                if abs(yy - y) <= reach
                                and velocity[yy, x - 1] > 0.0
                            ]
                            if west:
                                break
                        total = sum(v for _, v in west)
                        if total > 0.0:
                            for yy, v in west:
                                add(cell, idx(x - 1, yy), m_dot * v / total)
                        else:
                            rhs[cell] -= m_dot * mesh.inlet_temperature
                    diag -= m_dot
                add(cell, cell, diag)
                rhs[cell] -= mesh.source[y, x] * d * d * depth

        matrix = csr_matrix((vals, (rows, cols)), shape=(n, n))
        solution = spsolve(matrix, rhs).reshape(ny, nx)
        change = float(np.max(np.abs(solution - temps)))
        temps = solution
        if change < _PICARD_TOL:
            return SteadyResult(mesh=mesh, temperatures=temps, iterations=iteration)
    return SteadyResult(mesh=mesh, temperatures=temps, iterations=_PICARD_MAX_ITER)
