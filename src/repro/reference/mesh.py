"""2-D structured mesh of a server case for the reference simulator.

Section 3.2: "We modeled a 2D description of a server case, with a CPU,
a disk, and a power supply."  :class:`CaseMesh` is that description — a
regular grid of square cells, each carrying a material, an optional
volumetric heat source, and a prescribed horizontal air velocity.

The flow field is prescribed rather than solved (this is an
advection-diffusion model, not a Navier-Stokes CFD code — see DESIGN.md):
air enters the left edge at the inlet temperature, moves right, and
leaves through the right edge.  Velocity in each column is scaled so the
volumetric flow is conserved around obstructions, the way a duct
constriction accelerates flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .materials import AIR, Material


@dataclass(frozen=True)
class Block:
    """A rectangular component footprint on the mesh (cell coordinates).

    ``x0 <= x < x1`` and ``y0 <= y < y1``; power is distributed uniformly
    over the block's cells.
    """

    name: str
    x0: int
    y0: int
    x1: int
    y1: int
    material: Material
    power: float = 0.0

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"block {self.name!r} has an empty extent")
        if self.power < 0.0:
            raise ValueError(f"block {self.name!r} has negative power")

    @property
    def cells(self) -> int:
        """Number of cells the block covers."""
        return (self.x1 - self.x0) * (self.y1 - self.y0)


class CaseMesh:
    """A meshed 2-D server case with component blocks and an air stream."""

    def __init__(
        self,
        nx: int,
        ny: int,
        cell_size: float,
        depth: float,
        inlet_temperature: float,
        inlet_velocity: float,
        blocks: "List[Block]",
    ) -> None:
        if nx < 3 or ny < 3:
            raise ValueError("mesh must be at least 3x3 cells")
        if cell_size <= 0.0 or depth <= 0.0:
            raise ValueError("cell size and depth must be positive")
        if inlet_velocity <= 0.0:
            raise ValueError("inlet velocity must be positive")
        self.nx = nx
        self.ny = ny
        self.cell_size = cell_size
        self.depth = depth
        self.inlet_temperature = inlet_temperature
        self.inlet_velocity = inlet_velocity
        self.blocks: Dict[str, Block] = {}
        self.material: List[List[Material]] = [
            [AIR for _ in range(nx)] for _ in range(ny)
        ]
        #: Volumetric heat source per cell, W/m^3.
        self.source = np.zeros((ny, nx))
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: Block) -> None:
        """Place a component block; blocks may not overlap."""
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        if not (0 <= block.x0 and block.x1 <= self.nx
                and 0 <= block.y0 and block.y1 <= self.ny):
            raise ValueError(f"block {block.name!r} exceeds the mesh")
        for y in range(block.y0, block.y1):
            for x in range(block.x0, block.x1):
                if self.material[y][x] is not AIR:
                    raise ValueError(
                        f"block {block.name!r} overlaps another block at ({x},{y})"
                    )
        volume = block.cells * self.cell_size * self.cell_size * self.depth
        density = block.power / volume if volume > 0 else 0.0
        for y in range(block.y0, block.y1):
            for x in range(block.x0, block.x1):
                self.material[y][x] = block.material
                self.source[y, x] = density
        self.blocks[block.name] = block

    def set_power(self, name: str, power: float) -> None:
        """Change a block's total dissipated power (W)."""
        if power < 0.0:
            raise ValueError("power must be non-negative")
        block = self.blocks[name]
        volume = block.cells * self.cell_size * self.cell_size * self.depth
        density = power / volume
        for y in range(block.y0, block.y1):
            for x in range(block.x0, block.x1):
                self.source[y, x] = density
        self.blocks[name] = Block(
            block.name, block.x0, block.y0, block.x1, block.y1,
            block.material, power,
        )

    def is_air(self, x: int, y: int) -> bool:
        """True when cell (x, y) is an air cell."""
        return self.material[y][x].name == AIR.name

    def velocity_field(self) -> np.ndarray:
        """Horizontal velocity (m/s) per cell, flow-conserving per column.

        The inlet column is fully open; downstream columns carry the same
        volumetric flow through whatever free height remains, so air
        accelerates past obstructions.  Solid cells have zero velocity.
        """
        open_inlet = sum(1 for y in range(self.ny) if self.is_air(0, y))
        if open_inlet == 0:
            raise ValueError("inlet column is fully blocked")
        flow_cells = self.inlet_velocity * open_inlet  # cell-velocity budget
        field = np.zeros((self.ny, self.nx))
        for x in range(self.nx):
            open_cells = sum(1 for y in range(self.ny) if self.is_air(x, y))
            if open_cells == 0:
                continue
            u = flow_cells / open_cells
            for y in range(self.ny):
                if self.is_air(x, y):
                    field[y, x] = u
        return field

    def block_cells(self, name: str) -> List[Tuple[int, int]]:
        """(x, y) coordinates of the cells a block covers."""
        block = self.blocks[name]
        return [
            (x, y)
            for y in range(block.y0, block.y1)
            for x in range(block.x0, block.x1)
        ]


def standard_case(
    cpu_power: float = 20.0,
    disk_power: float = 10.0,
    psu_power: float = 40.0,
    inlet_temperature: float = 21.6,
    inlet_velocity: float = 0.2,
) -> CaseMesh:
    """The section 3.2 case: disk near the inlet, PSU above, CPU downstream.

    A 48 x 16 grid of 1 cm cells (48 cm x 16 cm case seen from the side,
    10 cm of modeled depth): the geometry loosely matches a 2U server.
    """
    from .materials import ALUMINUM, PACKAGE

    return CaseMesh(
        nx=48,
        ny=16,
        cell_size=0.01,
        depth=0.10,
        inlet_temperature=inlet_temperature,
        inlet_velocity=inlet_velocity,
        blocks=[
            Block("disk", 8, 2, 14, 6, PACKAGE, disk_power),
            Block("psu", 8, 10, 16, 15, ALUMINUM, psu_power),
            Block("cpu", 26, 4, 30, 9, PACKAGE, cpu_power),
        ],
    )
