"""The sweep engine: fan runs across workers, merge one artifact.

The parent expands a grid into :class:`~repro.parallel.spec.RunSpec`
lists, ships them to a ``multiprocessing`` pool as plain dicts, and
merges what comes back.  Three properties make the fan-out safe:

* **Determinism** — a run is a pure function of its spec (the fault RNG
  is seeded via :func:`repro.faults.derive_seed` from the spec's seed
  and run id), and the merge is order-independent, so any worker count
  and any completion order produce a byte-identical artifact.
* **Crash recovery** — workers checkpoint every ``checkpoint_every``
  simulated seconds; a crashed run is resumed by the parent from the
  last checkpoint instead of restarting the sweep.
* **Plain-data boundaries** — specs, checkpoints, records, and dumped
  telemetry registries are JSON-able dicts; no live object (solver,
  socket, clock closure) ever crosses a process boundary.

Per-run telemetry registries are merged into one
:class:`~repro.telemetry.Registry` with a ``run`` label namespacing
every child, so the merged Prometheus snapshot holds the whole sweep.
"""

from __future__ import annotations

import json
import multiprocessing
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.lvs import CloningConfig
from ..cluster.simulation import (
    FREON_K_OVERRIDES,
    ClusterSimulation,
    chaos_script,
    emergency_script,
)
from ..config.layouts import validation_cluster
from ..core.compiled import compile_layout, have_numpy
from ..errors import SweepError
from ..faults import derive_seed
from ..freon.policy import ComponentThresholds, FreonConfig
from ..telemetry import (
    Registry,
    Telemetry,
    dump_registry,
    load_registry,
    to_prometheus,
)
from .spec import RunResult, RunSpec

#: Version tag of the merged sweep artifact layout.
ARTIFACT_VERSION = 1

#: Metric families measuring *host* performance (wall-clock durations).
#: Every other family is a pure function of the simulation and therefore
#: identical across processes; these vary per machine and per run, so
#: they are dropped from sweep results to keep the merged artifact
#: byte-identical regardless of worker count.  (They remain available
#: in single-run tools like ``repro top``.)
HOST_METRICS = frozenset({"solver_tick_seconds"})


class WorkerCrash(SweepError):
    """A worker died mid-run (test hook: ``RunSpec.crash_at``).

    Carries the run's last periodic checkpoint (or ``None`` when the
    crash predates the first one) so the parent can resume instead of
    restarting.
    """

    def __init__(self, message: str, checkpoint: Optional[dict] = None) -> None:
        super().__init__(message)
        self.checkpoint = checkpoint


def _build_scale_simulation(spec: RunSpec):
    """Construct the flattened-datacenter run a ``stack="scale"`` spec
    describes.

    The topology comes from the spec's ``topology`` JSON when set;
    otherwise ``cluster_size`` doubles as the size of a default grid
    room.  Scenarios map exactly as on the cluster stack: the legacy
    names pick a fiddle script (inlet emergencies feed the solver's
    overrides, fault statements build an injector), workload names
    build the full trace/mix/fault bundle.
    """
    from ..cluster.scenarios import build_scenario
    from ..faults.injector import FaultInjector
    from ..faults.schedule import FaultSchedule
    from ..topology.model import grid_topology
    from ..topology.sim import ScaleSimulation, inlet_events_from_script

    topology = spec.load_topology()
    if topology is None:
        size = spec.cluster_size or len(table1_machines())
        topology = grid_topology(size)
    seed = derive_seed(spec.seed, spec.run_id)
    workload = None
    inlet_events = None
    injector = None
    if spec.scenario == "emergency":
        script: Optional[str] = emergency_script()
    elif spec.scenario == "chaos":
        script = chaos_script(loss=spec.loss)
    elif spec.scenario == "none":
        script = None
    else:
        workload = build_scenario(
            spec.scenario, duration=spec.duration,
            servers=len(topology.machines), loss=spec.loss,
        )
        script = None
    if script is not None:
        inlet_events = inlet_events_from_script(script)
        schedule = FaultSchedule.from_script(script)
        if len(schedule):
            injector = FaultInjector(schedule, seed=seed)
    kwargs: Dict[str, object] = {}
    if spec.cpu_high is not None:
        kwargs["cpu_high"] = spec.cpu_high
        kwargs["cpu_low"] = spec.cpu_low
    return ScaleSimulation(
        topology,
        duration=spec.duration,
        policy=spec.policy,
        cloning=CloningConfig(clones=spec.cloning) if spec.cloning else None,
        telemetry=Telemetry(),
        scenario=workload,
        injector=injector,
        inlet_events=inlet_events,
        fault_seed=seed,
        **kwargs,
    )


def table1_machines() -> Tuple[str, ...]:
    """The paper's default validation-cluster machine names."""
    from ..config import table1

    return tuple(table1.CLUSTER_MACHINES)


def build_simulation(spec: RunSpec):
    """Construct the fully-configured simulation a spec describes.

    Telemetry is always enabled: sweep workers report their whole-run
    registry back to the parent for the merged snapshot.  Returns a
    :class:`ClusterSimulation` or, for ``stack="scale"`` specs, a
    :class:`~repro.topology.sim.ScaleSimulation` (both satisfy the
    ``dt``/``time``/``step``/``checkpoint`` stepping contract
    :func:`execute_spec` drives).
    """
    if spec.stack == "scale":
        return _build_scale_simulation(spec)
    workload = None
    if spec.scenario == "emergency":
        script: Optional[str] = emergency_script()
    elif spec.scenario == "chaos":
        script = chaos_script(loss=spec.loss)
    elif spec.scenario == "none":
        script = None
    else:
        # A workload scenario from the library: the simulation builds
        # its trace, request mix, and fault script from the name.
        workload = spec.scenario
        script = None
    config = FreonConfig()
    if spec.cpu_high is not None:
        config.thresholds["cpu"] = ComponentThresholds(
            high=spec.cpu_high, low=spec.cpu_low, red=spec.cpu_high + 2.0
        )
    cloning = CloningConfig(clones=spec.cloning) if spec.cloning else None
    return ClusterSimulation(
        policy=spec.policy,
        machines=spec.machine_names(),
        fiddle_script=script,
        freon_config=config,
        fault_seed=derive_seed(spec.seed, spec.run_id),
        engine=spec.engine,
        telemetry=Telemetry(),
        topology=spec.load_topology(),
        scenario=workload,
        scenario_duration=spec.duration,
        scenario_loss=spec.loss,
        cloning=cloning,
    )


def execute_spec(
    spec: RunSpec, checkpoint: Optional[Mapping[str, object]] = None
) -> RunResult:
    """Run one spec to completion, optionally resuming from a checkpoint.

    Honors the spec's ``checkpoint_every`` cadence (keeping only the
    most recent snapshot) and the test-only ``crash_at`` hook, which
    raises :class:`WorkerCrash` carrying that snapshot.
    """
    simulation = build_simulation(spec)
    resumed = checkpoint is not None
    if resumed:
        simulation.apply_checkpoint(checkpoint)
    ticks = int(round(spec.duration / simulation.dt))
    done = int(round(simulation.time / simulation.dt))
    last: Optional[dict] = None
    since_checkpoint = 0.0
    for _ in range(ticks - done):
        if spec.crash_at is not None and simulation.time >= spec.crash_at:
            raise WorkerCrash(
                f"injected worker crash in {spec.run_id!r} "
                f"at t={simulation.time:g}",
                checkpoint=last,
            )
        simulation.step()
        since_checkpoint += simulation.dt
        if spec.checkpoint_every > 0 and since_checkpoint >= spec.checkpoint_every:
            last = simulation.checkpoint()
            since_checkpoint = 0.0
    return collect_result(spec, simulation, resumed)


def collect_result(
    spec: RunSpec, simulation, resumed: bool = False
) -> RunResult:
    """Assemble the canonical :class:`RunResult` for a finished run.

    Both execution paths (per-run :func:`execute_spec` and the batched
    runner in :mod:`repro.parallel.batch`) funnel through this single
    function, so their results can only differ if the simulations
    themselves diverged.
    """
    if spec.stack == "scale":
        # The flattened stack reports its scalar summary; there are no
        # per-tick records (one array, not per-machine record rows).
        return RunResult(
            run_id=spec.run_id,
            spec=spec.to_dict(),
            summary=simulation.summary(),
            records=[],
            registry=[
                family
                for family in dump_registry(simulation.telemetry.registry)
                if family["name"] not in HOST_METRICS
            ],
            resumed=resumed,
        )
    outcome = simulation.result()
    summary: Dict[str, object] = {
        "drop_fraction": outcome.drop_fraction,
        "total_offered": outcome.total_offered,
        "total_dropped": outcome.total_dropped,
        "adjustments": len(outcome.adjustments),
        "shutdowns": len(outcome.shutdowns),
        "ec_events": len(outcome.ec_events),
        "pstate_changes": len(outcome.pstate_changes),
        "restarts": len(outcome.restarts),
        "fault_events": len(outcome.fault_log),
        "peak_cpu": {
            name: outcome.max_temperature(name)
            for name in simulation.machines
        },
    }
    if spec.cloning or simulation.scenario is not None:
        # Only scenario/cloning runs report latency: the key is absent
        # from classic artifacts so golden digests keep their bytes.
        summary["p99_latency"] = outcome.p99_latency()
        if spec.cloning:
            scales = outcome.clone_latency_scales
            summary["clone_shed_ticks"] = sum(
                1 for s in scales if s >= 1.0
            )
            summary["clone_ticks"] = sum(1 for s in scales if s < 1.0)
    return RunResult(
        run_id=spec.run_id,
        spec=spec.to_dict(),
        summary=summary,
        records=[simulation._record_to_dict(r) for r in simulation.records],
        registry=[
            family
            for family in dump_registry(simulation.telemetry.registry)
            if family["name"] not in HOST_METRICS
        ],
        resumed=resumed,
    )


def _worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Pool entry point: dict in, dict out (both JSON-able).

    A :class:`WorkerCrash` becomes a structured failure the parent can
    resume from; anything else propagates and fails the sweep loudly.
    """
    spec = RunSpec.from_dict(payload)
    try:
        return {"ok": execute_spec(spec).to_dict()}
    except WorkerCrash as crash:
        return {
            "run_id": spec.run_id,
            "error": str(crash),
            "checkpoint": crash.checkpoint,
        }


#: Valid ``sweep(..., strategy=)`` values.  ``auto`` picks ``batch``
#: whenever NumPy is available and falls back to ``fork`` otherwise.
STRATEGIES = ("auto", "batch", "fork")


def _fan_out(specs: Sequence[RunSpec], workers: int) -> List[RunResult]:
    """The fork path: one worker invocation per spec, crash-resumable.

    ``workers > 1`` fans runs across a ``multiprocessing`` pool; the
    serial path runs the identical worker function in-process, so both
    produce byte-identical results.  A run whose worker crashed is
    resumed in the parent from its last checkpoint (the crash hook is
    stripped on retry).
    """
    payloads = [s.to_dict() for s in specs]
    if workers > 1 and len(specs) > 1:
        with multiprocessing.Pool(min(workers, len(specs))) as pool:
            outcomes = pool.map(_worker, payloads)
    else:
        outcomes = [_worker(p) for p in payloads]
    results: List[RunResult] = []
    for payload, outcome in zip(payloads, outcomes):
        if "ok" in outcome:
            results.append(RunResult.from_dict(outcome["ok"]))
            continue
        retry = RunSpec.from_dict({**payload, "crash_at": None})
        results.append(execute_spec(retry, checkpoint=outcome["checkpoint"]))
    return results


#: machine-name tuple -> layout-signature key, memoized because every
#: spec with the same cluster size reuses the same layouts.
_SIGNATURE_CACHE: Dict[Tuple[str, ...], Tuple] = {}


def _spec_signature(spec: RunSpec) -> Tuple:
    """The compiled-layout signature key of a spec's cluster.

    Specs with equal keys can share one batch pool (their machines stack
    on the same compiled groups); unequal keys batch separately.
    """
    names = tuple(spec.machine_names())
    key = _SIGNATURE_CACHE.get(names)
    if key is None:
        layout = validation_cluster(names, k_overrides=FREON_K_OVERRIDES)
        key = tuple(
            sorted(
                {
                    compile_layout(machine).signature
                    for machine in layout.machines.values()
                }
            )
        )
        _SIGNATURE_CACHE[names] = key
    return key


def _signature_batches(specs: Sequence[RunSpec]) -> List[List[RunSpec]]:
    """Group specs into batches sharing a layout signature."""
    batches: Dict[Tuple, List[RunSpec]] = {}
    for spec in specs:
        batches.setdefault(_spec_signature(spec), []).append(spec)
    return list(batches.values())


def _batch_worker(payloads: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Pool entry point for one signature batch: dicts in, dicts out."""
    from .batch import run_batch

    specs = [RunSpec.from_dict(p) for p in payloads]
    return [result.to_dict() for result in run_batch(specs)]


def sweep(
    specs: Sequence[RunSpec],
    workers: int = 1,
    strategy: str = "auto",
) -> Dict[str, object]:
    """Run every spec and return the merged artifact.

    ``strategy`` picks the execution path:

    * ``"fork"`` — one worker invocation per run (the original path).
    * ``"batch"`` — stack runs sharing a layout signature onto one
      vectorized solver (:mod:`repro.parallel.batch`); runs the batch
      cannot express fall back to the fork path.  ``workers`` then fans
      out across signature *batches*, not runs.
    * ``"auto"`` — ``batch`` when NumPy is available, else ``fork``.

    All strategies produce byte-identical artifacts; the property-test
    harness in ``tests/parallel/test_batch_equivalence.py`` holds them
    to that.
    """
    if strategy not in STRATEGIES:
        raise SweepError(
            f"unknown sweep strategy {strategy!r}; pick one of {STRATEGIES}"
        )
    if not specs:
        raise SweepError("nothing to sweep: the grid expanded to no runs")
    ids = [s.run_id for s in specs]
    if len(set(ids)) != len(ids):
        raise SweepError("duplicate run_ids in sweep")
    if strategy == "auto":
        strategy = "batch" if have_numpy() else "fork"
    if strategy == "fork":
        return merge_results(_fan_out(specs, workers))

    from .batch import partition_specs, run_batch

    eligible, evicted = partition_specs(specs)
    results: List[RunResult] = []
    if evicted:
        results.extend(_fan_out([spec for spec, _ in evicted], workers))
    if eligible:
        batches = _signature_batches(eligible)
        if workers > 1 and len(batches) > 1:
            payload_batches = [
                [spec.to_dict() for spec in batch] for batch in batches
            ]
            with multiprocessing.Pool(min(workers, len(batches))) as pool:
                outcome_batches = pool.map(_batch_worker, payload_batches)
            for outcomes in outcome_batches:
                results.extend(RunResult.from_dict(o) for o in outcomes)
        else:
            for batch in batches:
                results.extend(run_batch(batch))
    return merge_results(results)


def merge_results(results: Sequence[RunResult]) -> Dict[str, object]:
    """Deterministically merge per-run results into one artifact.

    Runs are ordered by ``run_id`` and registries merged under a
    ``{"run": run_id}`` namespace label, so the artifact is independent
    of worker count and completion order.
    """
    ordered = sorted(results, key=lambda r: r.run_id)
    merged = Registry()
    for result in ordered:
        load_registry(result.registry, merged, labels={"run": result.run_id})
    return {
        "version": ARTIFACT_VERSION,
        "runs": [r.to_dict() for r in ordered],
        "registry": dump_registry(merged),
    }


def artifact_registry(artifact: Mapping[str, object]) -> Registry:
    """Rebuild the merged registry from an artifact (for exposition)."""
    registry = Registry()
    load_registry(artifact["registry"], registry)
    return registry


def write_artifact(
    artifact: Mapping[str, object], path
) -> Tuple[Path, Path]:
    """Write the artifact JSON plus its Prometheus snapshot sibling.

    Serialized with sorted keys and a fixed layout, so equal artifacts
    are byte-identical on disk.  Returns ``(json_path, prom_path)``.
    """
    json_path = Path(path)
    json_path.write_text(json.dumps(artifact, sort_keys=True) + "\n")
    prom_path = json_path.with_suffix(".prom")
    prom_path.write_text(to_prometheus(artifact_registry(artifact)))
    return json_path, prom_path
