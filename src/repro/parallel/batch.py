"""Sweep-as-batch: advance an entire RunSpec grid in one vectorized loop.

The fork strategy in :mod:`repro.parallel.engine` pays a whole process
per run; BENCH_sweep.json showed that overhead swamping small runs.
This module batches instead: every run in a grid whose machines share a
compiled layout signature is stacked as extra *rows* on one
:class:`repro.core.compiled._Group`, and a lockstep driver advances all
runs one global tick at a time — per-run management (balancer, web
servers, daemons, fiddle scripts, faults) stays per-simulation python,
while the thermal physics of the whole grid is a single
:func:`repro.core.compiled.tick_group` call.

Equivalence is bitwise, not approximate, and rests on three facts:

* every array operation in ``tick_group`` is elementwise along axis 0,
  so a row's result is a pure function of that row's values — adding
  more runs as rows cannot perturb any run (the only cross-row
  reductions pick between bit-equivalent code paths);
* the lockstep driver dispatches each member's kernel events in exactly
  the order ``ClusterSimulation._advance_ticks`` would — the deferred
  physics is flushed before any event that can observe temperatures;
* the vectorized inter-machine inlet traversal mirrors
  :func:`repro.core.physics.mix_streams` term for term in the same
  accumulation order.

Runs the batch cannot express are *evicted* to the per-run
``execute_spec`` path: python-engine specs and crash-hook specs up
front (:func:`partition_specs`), opaque power models at adoption, and
structural edits mid-run (the member keeps running in the lockstep
loop, just on a private compiled engine).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # gate the dependency, like repro.core.compiled
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..cluster.simulation import ClusterSimulation
from ..core import physics
from ..core.compiled import (
    CompiledEngine,
    MachinePlan,
    _Group,
    compile_layout,
    have_numpy,
    tick_group,
)
from ..errors import SweepError
from .spec import RunSpec

#: Eviction reasons, recorded per evicted run for tests and logging.
EVICT_ENGINE = "engine"              #: spec does not use the compiled engine
EVICT_CRASH_HOOK = "crash_hook"      #: crash_at needs the worker-crash path
EVICT_NO_NUMPY = "no_numpy"          #: NumPy unavailable on this host
EVICT_OPAQUE_POWER = "opaque_power_model"  #: plan cannot batch the model
EVICT_DT = "dt_mismatch"             #: member ticks on a different grid
EVICT_STRUCTURAL = "structural_edit"  #: mid-run mutation outside the plan
EVICT_TOPOLOGY = "topology"          #: spatial topology needs its own inlets
EVICT_STACK = "scale_stack"          #: scale-stack runs are already vectorized


def partition_specs(
    specs: Sequence[RunSpec],
) -> Tuple[List[RunSpec], List[Tuple[RunSpec, str]]]:
    """Split a grid into batchable specs and (spec, reason) evictions.

    Only statically-decidable evictions happen here; opaque power
    models surface at adoption time and structural edits at run time.
    """
    eligible: List[RunSpec] = []
    evicted: List[Tuple[RunSpec, str]] = []
    for spec in specs:
        if spec.stack != "cluster":
            # A ScaleSimulation is one flattened solve already; the
            # cluster batch pool has nothing to add.
            evicted.append((spec, EVICT_STACK))
        elif spec.engine != "compiled":
            evicted.append((spec, EVICT_ENGINE))
        elif spec.crash_at is not None:
            evicted.append((spec, EVICT_CRASH_HOOK))
        elif spec.topology is not None:
            # Topology inlets come from a per-room recirculation operator;
            # the pool's shared inter-machine pass cannot express them.
            evicted.append((spec, EVICT_TOPOLOGY))
        elif not have_numpy():
            evicted.append((spec, EVICT_NO_NUMPY))
        else:
            eligible.append(spec)
    return eligible, evicted


class _PoolSlot:
    """Bookkeeping for one pooled simulation."""

    def __init__(self, simulation: ClusterSimulation, order: int) -> None:
        self.simulation = simulation
        self.solver = simulation.solver
        self.order = order
        #: True between this member's solver tick and the pool flush.
        self.pending = False
        #: Identity of the solver's cached inlet-mixing plans; a fiddle
        #: edit to a cluster fraction replaces the dict, which is how
        #: the pool notices its weight arrays are stale.
        self.inlet_plans_obj: object = None


class _BatchMemberEngine:
    """The solver engine installed on every pooled member.

    ``tick`` only marks the member pending: the pool computes the
    physics of all members at once in :meth:`BatchPool.flush`.
    """

    provides_inlets = True
    measure_host_latency = False

    def __init__(self, pool: "BatchPool", slot: _PoolSlot) -> None:
        self._pool = pool
        self._slot = slot

    def tick(self, inlet_temps) -> None:
        slot = self._slot
        if slot.pending:
            raise SweepError(
                "batched member ticked twice without a pool flush"
            )
        slot.pending = True
        self._pool._pending += 1


class _PoolGroup:
    """All pooled machines sharing one plan, across every member."""

    def __init__(self, plan: MachinePlan) -> None:
        self.plan = plan
        #: (slot, machine name, state) per row, in adoption order.
        self.entries: List[Tuple[_PoolSlot, str, object]] = []
        self.group: Optional[_Group] = None
        #: Slots whose flow edits still owe a recompile telemetry inc.
        self.dirty: set = set()
        # Inlet traversal tables (see _build_inlets).
        self._term_count = 0
        self._weights = None
        self._term_refs: List = []
        self._row_terms: List = []
        self._fixed: List[float] = []
        self._is_fixed: List[bool] = []

    # -- construction ----------------------------------------------------

    def rebuild(self) -> None:
        """(Re)materialize the stacked arrays from the member states.

        The state dicts are authoritative between ticks (every flush
        writes temperatures back), so a rebuild after adoption,
        eviction, or retirement reproduces the array contents bitwise.
        The flow arrays are rebuilt silently: recompile telemetry is
        driven by the per-member ``dirty`` set instead, mirroring what
        each member's own engine would have reported.
        """
        self.group = _Group(
            self.plan, [(name, state) for (_, name, state) in self.entries]
        )
        self.group.rebuild_flows()
        self._build_inlets()

    def _build_inlets(self) -> None:
        """Compile the inter-machine inlet traversal for every row.

        Mirrors ``Solver._inter_machine_traversal`` exactly: rows whose
        machine has no cluster (or no incoming edges) take the layout
        inlet temperature; the rest mix their incoming streams.  When
        every mixed row has the same term count the mix runs as slotwise
        array ops in ``mix_streams``'s accumulation order; ragged
        layouts keep a per-row scalar fallback.
        """
        fixed: List[float] = []
        is_fixed: List[bool] = []
        term_lists: List[List[Tuple[float, object]]] = []
        ref_lists: List[List[Tuple[bool, object, str, float]]] = []
        for slot, name, state in self.entries:
            solver = slot.solver
            terms: List[Tuple[float, object]] = []
            refs: List[Tuple[bool, object, str, float]] = []
            if solver.cluster is not None:
                for is_source, src, weight in solver._inlet_plan(name):
                    if is_source:
                        source = solver.cluster.sources[src]
                        terms.append(
                            (weight, _source_fetch(solver, src,
                                                   source.supply_temperature))
                        )
                        refs.append(
                            (True, solver, src, source.supply_temperature)
                        )
                    else:
                        terms.append((weight, _exhaust_fetch(solver, src)))
                        refs.append((False, solver, src, 0.0))
            term_lists.append(terms)
            ref_lists.append(refs)
            is_fixed.append(not terms)
            fixed.append(state.layout.inlet_temperature)
        self._row_terms = term_lists
        self._fixed = fixed
        self._is_fixed = is_fixed
        counts = {len(t) for t in term_lists}
        if len(counts) == 1 and not any(is_fixed):
            self._term_count = counts.pop()
            self._weights = np.array(
                [[w for w, _ in terms] for terms in term_lists]
            )
            # Flattened (is_source, solver, name, supply) per term: the
            # per-tick fast path reads overrides / previous exhausts
            # inline instead of paying a closure call per term.  Reads
            # go through the solver attribute on purpose — restore()
            # rebinds ``_prev_exhaust`` / ``_source_overrides``.
            self._term_refs = [ref for refs in ref_lists for ref in refs]
        else:
            self._term_count = 0
            self._weights = None
            self._term_refs = []

    # -- per-tick work ---------------------------------------------------

    def compute_inlet(self):
        """Per-row inlet temperatures for this tick."""
        if self._term_count:
            k = self._term_count
            temps = np.array([
                solver._source_overrides.get(src, supply) if is_source
                else solver._prev_exhaust[src]
                for is_source, solver, src, supply in self._term_refs
            ])
            if k == 1:
                w = self._weights[:, 0]
                inlet = (temps * w) / w
            else:
                temps = temps.reshape(-1, k)
                w = self._weights
                num = temps[:, 0] * w[:, 0]
                den = w[:, 0]
                for j in range(1, k):
                    num = num + temps[:, j] * w[:, j]
                    den = den + w[:, j]
                inlet = num / den
        else:
            inlet = np.empty(len(self.entries))
            for row, terms in enumerate(self._row_terms):
                if self._is_fixed[row]:
                    inlet[row] = self._fixed[row]
                else:
                    inlet[row] = physics.mix_streams(
                        [fetch() for _, fetch in terms],
                        [w for w, _ in terms],
                    )
        # Overrides win unconditionally, exactly like the scalar path
        # (which checks the override before ever mixing).
        for row, (_, _, state) in enumerate(self.entries):
            override = state.inlet_override
            if override is not None:
                inlet[row] = override
        return inlet

    def write_back(self) -> None:
        """Push computed temperatures into every member's state dict."""
        plan = self.plan
        names = plan.node_names
        exhaust = plan.n_comps + plan.exhaust_air
        data = self.group.T.tolist()
        for row, (slot, name, state) in enumerate(self.entries):
            values = data[row]
            state.temperatures.update(zip(names, values))
            slot.solver._prev_exhaust[name] = values[exhaust]

    def member_rows(self, slot: _PoolSlot) -> int:
        return sum(1 for entry in self.entries if entry[0] is slot)


def _source_fetch(solver, src: str, supply: float):
    def fetch() -> float:
        return solver._source_overrides.get(src, supply)

    return fetch


def _exhaust_fetch(solver, src: str):
    def fetch() -> float:
        return solver._prev_exhaust[src]

    return fetch


class BatchPool:
    """Stacked compiled-solver arrays spanning many simulations.

    Adopt simulations with :meth:`adopt` (before stepping them), drive
    each one through its solver tick, then :meth:`flush` once per
    global tick to compute all deferred physics vectorized.
    """

    def __init__(self, dt: float) -> None:
        if np is None:
            raise SweepError("the batch strategy requires NumPy")
        self.dt = dt
        self._slots: List[_PoolSlot] = []
        self._groups: Dict[Tuple, _PoolGroup] = {}
        self._pending = 0
        #: (simulation, reason) for every mid-run eviction.
        self.evictions: List[Tuple[ClusterSimulation, str]] = []

    def __len__(self) -> int:
        return len(self._slots)

    # -- membership ------------------------------------------------------

    def adopt(self, simulation: ClusterSimulation) -> bool:
        """Fold a simulation into the pool; False when it cannot batch.

        The simulation must be freshly constructed or freshly restored
        (not mid-tick).  On refusal the simulation is untouched and
        keeps its own engine.
        """
        solver = simulation.solver
        if solver.engine != "compiled" or solver.dt != self.dt:
            return False
        if getattr(solver, "topology", None) is not None:
            # Topology inlets need the solver's recirculation operator.
            return False
        plans = []
        for name, state in solver.machines.items():
            plan = compile_layout(state.layout)
            if any(comp[3][0] == "opaque" for comp in plan.signature[0]):
                return False
            plans.append((plan, name, state))
        slot = _PoolSlot(simulation, order=len(self._slots))
        self._slots.append(slot)
        for plan, name, state in plans:
            pool_group = self._groups.get(plan.signature)
            if pool_group is None:
                pool_group = _PoolGroup(plan)
                self._groups[plan.signature] = pool_group
            pool_group.entries.append((slot, name, state))
            # First-tick recompile parity: a per-run engine starts with
            # dirty flows and reports one recompile on its first tick.
            pool_group.dirty.add(slot)
        solver._impl = _BatchMemberEngine(self, slot)
        self._rebuild()
        return True

    def evict(self, simulation: ClusterSimulation,
              reason: str = EVICT_STRUCTURAL) -> None:
        """Remove a member mid-run and hand it a private compiled engine.

        The member keeps running (the lockstep driver does not care
        which engine a member uses); its state dicts already hold the
        current values, so the fresh engine continues bit-exactly.
        """
        slot = self._find(simulation)
        if slot is None:
            raise SweepError("simulation is not pooled")
        if slot.pending:
            raise SweepError("cannot evict a member with a pending tick")
        dirty_signatures = set()
        for signature, pool_group in list(self._groups.items()):
            if slot in pool_group.dirty:
                dirty_signatures.add(signature)
                pool_group.dirty.discard(slot)
            pool_group.entries = [
                entry for entry in pool_group.entries if entry[0] is not slot
            ]
            if not pool_group.entries:
                del self._groups[signature]
        self._slots.remove(slot)
        self._rebuild()
        engine = CompiledEngine(slot.solver)
        for group in engine.groups:
            if group.plan.signature not in dirty_signatures:
                # The member owed no recompile; rebuild silently so the
                # fresh engine does not report a spurious one.
                group.rebuild_flows()
        slot.solver._impl = engine
        self.evictions.append((simulation, reason))

    def retire_many(self, simulations: Sequence[ClusterSimulation]) -> None:
        """Drop finished members' rows in one rebuild.

        Unlike :meth:`evict`, no replacement engine is installed: a
        finished member never ticks again (a stray tick would trip the
        flush invariant loudly, since its slot is no longer counted).
        A pending recompile owed by a retiring member is dropped for the
        same reason — a per-run engine would only have reported it on
        the next tick, which never comes.  Retiring en masse keeps the
        common everyone-finishes-together teardown at one rebuild
        instead of one per member.
        """
        retiring = set()
        for simulation in simulations:
            slot = self._find(simulation)
            if slot is None:
                raise SweepError("simulation is not pooled")
            if slot.pending:
                raise SweepError("cannot retire a member with a pending tick")
            retiring.add(slot)
        if not retiring:
            return
        for signature, pool_group in list(self._groups.items()):
            pool_group.dirty -= retiring
            pool_group.entries = [
                entry for entry in pool_group.entries
                if entry[0] not in retiring
            ]
            if not pool_group.entries:
                del self._groups[signature]
        self._slots = [slot for slot in self._slots if slot not in retiring]
        self._rebuild()

    def _find(self, simulation: ClusterSimulation) -> Optional[_PoolSlot]:
        for slot in self._slots:
            if slot.simulation is simulation:
                return slot
        return None

    def _rebuild(self) -> None:
        for pool_group in self._groups.values():
            pool_group.rebuild()
            for row, (slot, name, state) in enumerate(pool_group.entries):
                state.listener = self._listener(pool_group, slot, row)
        for slot in self._slots:
            slot.inlet_plans_obj = slot.solver._inlet_plans

    def _listener(self, pool_group: _PoolGroup, slot: _PoolSlot, row: int):
        plan = pool_group.plan
        group = pool_group.group

        def on_change(field: str, key, value: float) -> None:
            try:
                if field == "temperature":
                    group.T[row, plan.node_index[key]] = value
                elif field == "utilization":
                    group.util[row, plan.comp_index[key]] = value
                elif field == "k":
                    group.k[row, plan.heat_key_index[key]] = value
                elif field == "fraction":
                    group.fractions[row, plan.air_edge_index[key]] = value
                    group.flows_dirty = True
                    pool_group.dirty.add(slot)
                elif field == "fan":
                    group.fan[row] = value
                    group.flows_dirty = True
                    pool_group.dirty.add(slot)
                elif field == "power_scale":
                    group.factor[row, plan.comp_index[key]] = value
                else:
                    raise KeyError(field)
            except KeyError:
                # A mutation the shared plan cannot express (structural
                # edit): the state dict already holds the new value, so
                # a private engine snapshotting it continues bit-exactly.
                self.evict(slot.simulation, reason=EVICT_STRUCTURAL)

        return on_change

    # -- the vectorized tick ---------------------------------------------

    def flush(self) -> None:
        """Compute every pending member's deferred solver tick at once."""
        if self._pending != len(self._slots):
            raise SweepError(
                f"flush with {self._pending} of {len(self._slots)} "
                f"members pending; the lockstep driver must tick every "
                f"pooled member first"
            )
        if any(
            slot.solver.cluster is not None
            and slot.solver._inlet_plans is not slot.inlet_plans_obj
            for slot in self._slots
        ):
            # A fiddle edit invalidated someone's inlet-mixing plan.
            for pool_group in self._groups.values():
                pool_group._build_inlets()
            for slot in self._slots:
                slot.inlet_plans_obj = slot.solver._inlet_plans
        for pool_group in self._groups.values():
            group = pool_group.group
            if group.flows_dirty or pool_group.dirty:
                if group.flows_dirty:
                    group.rebuild_flows()
                for slot in sorted(pool_group.dirty, key=lambda s: s.order):
                    self._note_recompile(slot, pool_group)
                pool_group.dirty.clear()
        # Every group's inlets are computed before any group writes back:
        # a recirculation edge between machines in different groups must
        # read the *previous* tick's exhaust, as the scalar path does.
        inlets = [
            (pool_group, pool_group.compute_inlet())
            for pool_group in self._groups.values()
        ]
        for pool_group, inlet in inlets:
            tick_group(pool_group.group, inlet, self.dt)
            pool_group.write_back()
        for slot in self._slots:
            slot.pending = False
        self._pending = 0

    def _note_recompile(self, slot: _PoolSlot, pool_group: _PoolGroup) -> None:
        """Report a flow recompile exactly as the member's own engine would.

        The per-run engine increments ``solver_recompiles_total`` inside
        the tick, before the solver advances its clock; at flush time the
        member's clock already sits one dt later, so it is rewound for
        the increment to keep the metric's sim_time stamp identical.
        """
        solver = slot.solver
        if not solver.telemetry.enabled:
            return
        clock = slot.simulation.kernel.clock
        finish = clock.now
        clock.advance(solver.time - solver.dt)
        try:
            solver._tel_recompiles.inc()
            solver.telemetry.event(
                "engine_recompile",
                "solver",
                machines=pool_group.member_rows(slot),
                reason="flows_dirty",
            )
        finally:
            clock.advance(finish)


class BatchMember:
    """One run inside a :class:`BatchRunner`."""

    def __init__(self, spec: RunSpec, simulation: ClusterSimulation,
                 resumed: bool = False) -> None:
        self.spec = spec
        self.simulation = simulation
        self.resumed = resumed
        self.pooled = False
        self.ticks_total = int(round(spec.duration / simulation.dt))
        self.ticks_done = int(round(simulation.time / simulation.dt))
        self.since_checkpoint = 0.0
        #: Most recent periodic checkpoint (checkpoint_every cadence).
        self.last_checkpoint: Optional[dict] = None

    @property
    def finished(self) -> bool:
        return self.ticks_done >= self.ticks_total


class BatchRunner:
    """Lockstep driver advancing many simulations one global tick at a time.

    Members the pool adopts defer their physics to the shared flush;
    members it refuses (or later evicts) run their own engine inline —
    both kinds interleave in the same loop, so a mixed batch still
    completes in one pass.
    """

    def __init__(self, members: Sequence[BatchMember]) -> None:
        self.members = list(members)
        for member in self.members:
            if member.spec.crash_at is not None:
                raise SweepError(
                    f"{member.spec.run_id!r} sets crash_at; route it "
                    f"through the fork path"
                )
        dt = self.members[0].simulation.dt if self.members else 1.0
        self.pool = BatchPool(dt) if have_numpy() else None
        #: How many pool evictions this runner has already folded into
        #: its members' ``pooled`` flags.
        self._evictions_seen = 0
        for member in self.members:
            if self.pool is not None and not member.finished:
                member.pooled = self.pool.adopt(member.simulation)

    def run_ticks(self, ticks: Optional[int] = None) -> int:
        """Advance every unfinished member up to ``ticks`` more ticks.

        ``None`` runs everything to completion.  Returns the number of
        global ticks executed.
        """
        done = 0
        live = [m for m in self.members if not m.finished]
        while ticks is None or done < ticks:
            if not live:
                break
            for member in live:
                member.simulation._run_until_tick()
            if self.pool is not None and len(self.pool):
                self.pool.flush()
            self._reconcile_evictions(live)
            finished_pooled = []
            still_live = []
            for member in live:
                member.simulation._drain_tick_tail()
                member.ticks_done += 1
                self._checkpoint_cadence(member)
                if member.finished:
                    if member.pooled:
                        # Release the rows so the remaining members'
                        # arrays shrink and the flush invariant stays
                        # exact.  A drain-phase structural eviction can
                        # land after the post-flush reconcile, so check
                        # the pool rather than trust the flag.
                        member.pooled = False
                        if self.pool._find(member.simulation) is not None:
                            finished_pooled.append(member.simulation)
                else:
                    still_live.append(member)
            if finished_pooled:
                self.pool.retire_many(finished_pooled)
            live = still_live
            done += 1
        return done

    def _reconcile_evictions(self, live: Sequence[BatchMember]) -> None:
        """Fold new pool evictions into the members' ``pooled`` flags.

        A structural fiddle edit evicts its member from inside the
        member's own tick; the runner only learns about it here.  The
        member keeps running on its private engine — only the flag (and
        therefore the finish-time retirement) changes.
        """
        if self.pool is None or len(self.pool.evictions) == self._evictions_seen:
            return
        evicted = {
            id(simulation)
            for simulation, _ in self.pool.evictions[self._evictions_seen:]
        }
        self._evictions_seen = len(self.pool.evictions)
        for member in live:
            if member.pooled and id(member.simulation) in evicted:
                member.pooled = False

    def run(self) -> None:
        """Run every member to completion."""
        self.run_ticks(None)

    def checkpoints(self) -> Dict[str, dict]:
        """Fresh checkpoints of every unfinished member, by run_id.

        Taken at the current global-tick boundary, these are exactly the
        snapshots ``execute_spec`` would produce at the same tick, so
        either path can resume them.
        """
        return {
            member.spec.run_id: member.simulation.checkpoint()
            for member in self.members
            if not member.finished
        }

    def _checkpoint_cadence(self, member: BatchMember) -> None:
        every = member.spec.checkpoint_every
        if every <= 0:
            return
        member.since_checkpoint += member.simulation.dt
        if member.since_checkpoint >= every:
            member.last_checkpoint = member.simulation.checkpoint()
            member.since_checkpoint = 0.0


def run_batch(
    specs: Sequence[RunSpec],
    checkpoints: Optional[Mapping[str, Mapping[str, object]]] = None,
):
    """Run a batch of specs in lockstep; returns per-run results.

    ``checkpoints`` maps run_id to a simulation checkpoint to resume
    from (the worker-crash resume contract: a resumed run's telemetry
    registry covers only the tail, and its result is flagged
    ``resumed``).  Results come back in spec order.
    """
    from .engine import build_simulation, collect_result

    members: List[BatchMember] = []
    for spec in specs:
        simulation = build_simulation(spec)
        checkpoint = (checkpoints or {}).get(spec.run_id)
        if checkpoint is not None:
            simulation.apply_checkpoint(checkpoint)
        members.append(
            BatchMember(spec, simulation, resumed=checkpoint is not None)
        )
    runner = BatchRunner(members)
    runner.run()
    return [
        collect_result(member.spec, member.simulation, member.resumed)
        for member in runner.members
    ]
