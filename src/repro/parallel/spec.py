"""Run specifications and grid expansion for the parallel sweep engine.

A sweep is described by a *grid spec*: a JSON document with a ``base``
mapping of :class:`RunSpec` fields shared by every run, and an ``axes``
mapping of field name to list of values.  The cartesian product of the
axes (taken in sorted axis-name order, so the expansion is independent
of dict insertion order) yields one :class:`RunSpec` per combination,
with a deterministic ``run_id`` like ``"policy=freon,seed=1"``.

Example grid spec reproducing the Figure 11 policy comparison::

    {
      "base": {"scenario": "emergency", "duration": 2000.0},
      "axes": {"policy": ["none", "freon", "traditional"]}
    }

Everything here is plain data: specs serialize to JSON-able dicts so
they can cross a ``multiprocessing`` worker boundary, land in the merged
sweep artifact, and be re-expanded bit-for-bit by a later process.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Mapping, Optional, Sequence

from ..cluster.scenarios import scenario_names
from ..cluster.simulation import POLICIES
from ..config import table1
from ..control import STACKS
from ..control import names as _policy_names
from ..core.solver import ENGINES
from ..errors import SweepError

#: Fiddle scenarios a spec may name (see ``cluster.simulation``) plus
#: the workload scenario library (see ``cluster.scenarios``): workload
#: names select a trace/mix/fault-script bundle, the legacy three only
#: a fiddle script on the classic diurnal trace.
LEGACY_SCENARIOS = ("emergency", "chaos", "none")
SCENARIOS = LEGACY_SCENARIOS + scenario_names()


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run inside a sweep.

    A spec is *complete*: two processes constructing a simulation from
    equal specs produce bit-identical runs.  The fault RNG is seeded
    from ``derive_seed(seed, run_id)``, so every run in a grid draws an
    independent, reproducible stream even when the ``seed`` field is
    shared across the whole sweep.
    """

    run_id: str
    policy: str = "freon"
    engine: str = "python"
    #: Which fiddle script drives the run: the section 5 emergencies,
    #: the chaos storm (emergencies + faults), or nothing.
    scenario: str = "emergency"
    duration: float = 2000.0
    #: Base fault seed; the per-run seed is derived from it and run_id.
    seed: int = 0
    #: Datagram loss probability (chaos scenario only).
    loss: float = 0.05
    #: Cluster size; 0 means the paper's 4-machine validation cluster.
    cluster_size: int = 0
    #: Freon CPU threshold overrides for the section 5.1 sweep; None
    #: keeps the Table 1 defaults (67/64, red-line high + 2).  Setting
    #: only ``cpu_high`` keeps the Table 1 spread: ``low = high - 3``.
    cpu_high: Optional[float] = None
    cpu_low: Optional[float] = None
    #: Simulated seconds between worker checkpoints; 0 disables them.
    checkpoint_every: float = 0.0
    #: Test-only: raise a WorkerCrash when sim time reaches this value.
    crash_at: Optional[float] = None
    #: Spatial topology as canonical Topology JSON text (hashable and
    #: wire-safe); None runs the scalar cluster coupling.  Mutually
    #: exclusive with ``cluster_size``: a topology names its machines.
    topology: Optional[str] = None
    #: Request-cloning degree (clone each request to this many backends,
    #: first response wins); 0 keeps classic single dispatch.
    cloning: int = 0
    #: Which simulation stack runs the spec: "cluster" is the per-machine
    #: daemon stack, "scale" the flattened datacenter
    #: (:class:`~repro.topology.sim.ScaleSimulation`).  The policy is
    #: validated against the :mod:`repro.control` registry's names for
    #: the chosen stack, so e.g. ``policy="emergency"`` is a scale-only
    #: spec and ``policy="local-dvfs"`` a cluster-only one.
    stack: str = "cluster"

    def __post_init__(self) -> None:
        if not self.run_id:
            raise SweepError("run_id must be non-empty")
        if self.stack not in STACKS:
            raise SweepError(
                f"unknown stack {self.stack!r}; pick from {STACKS}"
            )
        if self.policy not in _policy_names(self.stack):
            raise SweepError(
                f"unknown policy {self.policy!r} on the {self.stack!r} "
                f"stack; pick from {_policy_names(self.stack)}"
            )
        if self.engine not in ENGINES:
            raise SweepError(
                f"unknown engine {self.engine!r}; pick from {tuple(ENGINES)}"
            )
        if self.scenario not in SCENARIOS:
            raise SweepError(
                f"unknown scenario {self.scenario!r}; pick from {SCENARIOS}"
            )
        if self.duration <= 0:
            raise SweepError("duration must be positive")
        if self.cluster_size < 0:
            raise SweepError("cluster_size must be >= 0")
        if self.cloning < 0:
            raise SweepError("cloning must be >= 0 (0 disables cloning)")
        if self.cpu_low is not None and self.cpu_high is None:
            raise SweepError("cpu_low requires cpu_high")
        if self.cpu_high is not None and self.cpu_low is None:
            # Keep the Table 1 high/low spread (67/64) by default.
            object.__setattr__(self, "cpu_low", float(self.cpu_high) - 3.0)
        if self.cpu_high is not None and not self.cpu_low < self.cpu_high:
            raise SweepError("cpu thresholds must satisfy low < high")
        if self.topology is not None:
            if self.cluster_size != 0:
                raise SweepError(
                    "topology and cluster_size are mutually exclusive; "
                    "the topology names its machines"
                )
            # Validate eagerly so a malformed grid fails at expansion,
            # not inside a worker process.
            self.load_topology()

    def load_topology(self):
        """The spec's :class:`~repro.topology.model.Topology`, or None."""
        if self.topology is None:
            return None
        from ..topology.model import Topology

        try:
            return Topology.from_json(self.topology)
        except Exception as exc:
            raise SweepError(f"invalid topology in spec: {exc}") from exc

    def machine_names(self) -> List[str]:
        """The cluster machine names this spec simulates."""
        if self.topology is not None:
            return list(self.load_topology().machines)
        if self.cluster_size == 0:
            return list(table1.CLUSTER_MACHINES)
        return [f"machine{i}" for i in range(1, self.cluster_size + 1)]

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able form (the worker wire format).

        ``topology``, ``cloning``, and ``stack`` are omitted when unset
        (``stack="cluster"``) so sweep artifacts without them keep
        their historical bytes (golden digests).
        """
        data = asdict(self)
        if data["topology"] is None:
            del data["topology"]
        if data["cloning"] == 0:
            del data["cloning"]
        if data["stack"] == "cluster":
            del data["stack"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise SweepError(f"unknown RunSpec field(s): {unknown}")
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class RunResult:
    """What one completed run hands back to the sweep parent.

    Everything is plain data (the telemetry registry is carried as a
    :func:`~repro.telemetry.dump_registry` payload) so results can be
    pickled across the pool boundary and serialized into the artifact.
    """

    run_id: str
    spec: Dict[str, object]
    #: Scalar outcome summary (drop fraction, peaks, event counts).
    summary: Dict[str, object]
    #: Per-tick records as plain dicts (ClusterSimulation wire form).
    records: List[dict]
    #: dump_registry() payload of the run's whole-run telemetry.
    registry: List[dict]
    #: True when the run was resumed from a checkpoint after a worker
    #: crash; its registry then covers only the resumed tail.
    resumed: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Wire/artifact form of the result.

        Every field is already plain data, so this is a shallow
        conversion: the per-tick record and registry entries are shared
        with the result object, not deep-copied (``dataclasses.asdict``
        recursed through every one of them, which dominated sweep
        merge time).  Treat the returned payload as frozen.
        """
        return {
            "run_id": self.run_id,
            "spec": dict(self.spec),
            "summary": dict(self.summary),
            "records": list(self.records),
            "registry": list(self.registry),
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunResult":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise SweepError(f"unknown RunResult field(s): {unknown}")
        return cls(**data)  # type: ignore[arg-type]


def _format_axis_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def expand_grid(grid: Mapping[str, object]) -> List[RunSpec]:
    """Expand a grid spec into a deterministic list of :class:`RunSpec`.

    Axes are iterated in sorted name order and each axis in its listed
    value order, so the run list (and every ``run_id``) is a pure
    function of the grid content.  ``run_id`` is the comma-joined
    ``name=value`` coordinates; a grid with no axes yields the single
    run ``"single"``.
    """
    unknown_keys = sorted(set(grid) - {"base", "axes"})
    if unknown_keys:
        raise SweepError(f"unknown grid key(s): {unknown_keys} "
                         f"(expected 'base' and/or 'axes')")
    base = dict(grid.get("base", {}))
    axes = grid.get("axes", {})
    if "run_id" in base or "run_id" in axes:
        raise SweepError("run_id is derived from the axes; do not set it")
    spec_fields = {f.name for f in fields(RunSpec)}
    for source, keys in (("base", base), ("axes", axes)):
        bad = sorted(set(keys) - spec_fields)
        if bad:
            raise SweepError(f"unknown RunSpec field(s) in {source}: {bad}")
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise SweepError(f"axis {name!r} must be a non-empty list")
    names = sorted(axes)
    specs: List[RunSpec] = []
    seen: Dict[str, int] = {}
    for combo in itertools.product(*(axes[n] for n in names)):
        params = dict(base)
        params.update(zip(names, combo))
        run_id = ",".join(
            f"{n}={_format_axis_value(v)}" for n, v in zip(names, combo)
        ) or "single"
        if run_id in seen:
            raise SweepError(f"duplicate run_id {run_id!r} "
                             f"(axis values must be distinct)")
        seen[run_id] = 1
        specs.append(RunSpec(run_id=run_id, **params))
    return specs


def fig11_grid(
    duration: float = 2000.0,
    seeds: int = 1,
    engine: str = "python",
    policies: Sequence[str] = POLICIES,
) -> Dict[str, object]:
    """The Figure 11 grid: every policy under the section 5 emergencies.

    ``seeds > 1`` adds a seed axis (useful for scaling runs that need
    more shards than policies); the emergencies themselves are
    deterministic, so extra seeds only vary the fault RNG stream.
    """
    grid: Dict[str, object] = {
        "base": {
            "scenario": "emergency",
            "duration": float(duration),
            "engine": engine,
        },
        "axes": {"policy": list(policies)},
    }
    if seeds > 1:
        grid["axes"]["seed"] = list(range(seeds))
    return grid


def scale_grid(
    machines: int = 200,
    duration: float = 1200.0,
    policies: Optional[Sequence[str]] = None,
    scenario: str = "none",
) -> Dict[str, object]:
    """A flattened-datacenter policy comparison grid.

    One :class:`~repro.topology.sim.ScaleSimulation` run per policy on
    a ``machines``-sized grid room (``cluster_size`` doubles as the
    room size on the scale stack).  Defaults to every scale-capable
    registry policy.
    """
    if policies is None:
        policies = _policy_names("scale")
    return {
        "base": {
            "stack": "scale",
            "scenario": scenario,
            "duration": float(duration),
            "cluster_size": int(machines),
        },
        "axes": {"policy": list(policies)},
    }


def threshold_grid(
    highs: Sequence[float] = (65.0, 67.0, 69.0),
    duration: float = 2000.0,
    policy: str = "freon",
) -> Dict[str, object]:
    """The section 5.1 policy-threshold sweep grid.

    Sweeps the CPU high threshold (``cpu_low`` follows at the Table 1
    spread, ``high - 3``) to show the drop-rate/temperature trade-off
    around the paper's 67/64 setting.
    """
    return {
        "base": {
            "scenario": "emergency",
            "duration": float(duration),
            "policy": policy,
        },
        "axes": {"cpu_high": [float(h) for h in highs]},
    }


def scenario_grid(
    duration: float = 2000.0,
    policy: str = "freon",
    cloning: Sequence[int] = (0, 2),
    include_chaos: bool = True,
) -> Dict[str, object]:
    """The workload-scenario sweep: every adversarial scenario (and its
    chaos variant) crossed with cloning off/on.

    The grid behind the EXPERIMENTS.md scenario table: per scenario, the
    thermal-emergency throughput cost with and without request cloning.
    """
    return {
        "base": {"duration": float(duration), "policy": policy},
        "axes": {
            "scenario": list(scenario_names(include_chaos=include_chaos)),
            "cloning": [int(c) for c in cloning],
        },
    }
