"""repro.parallel: deterministic experiment sweeps over a worker pool.

The paper's evaluation is a grid — policies x seeds x scenarios x
cluster sizes x solver engines — and every cell is an independent,
fully-deterministic simulation.  This package exploits that: it expands
a *grid spec* into serializable :class:`RunSpec` runs, fans them across
a ``multiprocessing`` pool, and merges the per-run records and telemetry
registries into one artifact that is byte-identical no matter how many
workers ran it (or in what order they finished).

Layout:

* :mod:`~repro.parallel.spec` — :class:`RunSpec` / :class:`RunResult`,
  grid expansion, and the Figure 11 / section 5.1 presets;
* :mod:`~repro.parallel.engine` — the worker function, checkpointed
  execution with parent-side crash recovery, the order-independent
  merge, and artifact serialization;
* :mod:`~repro.parallel.batch` — the sweep-as-batch strategy: runs
  sharing a compiled layout signature advance in lockstep as rows of
  one vectorized solver, byte-identical to the fork path.

Checkpoint/restore itself lives with the state it snapshots
(``ClusterSimulation.checkpoint`` / ``apply_checkpoint``); this package
only decides *when* to snapshot and *who* resumes.
"""

from .batch import (
    BatchMember,
    BatchPool,
    BatchRunner,
    partition_specs,
    run_batch,
)
from .engine import (
    ARTIFACT_VERSION,
    STRATEGIES,
    WorkerCrash,
    artifact_registry,
    build_simulation,
    collect_result,
    execute_spec,
    merge_results,
    sweep,
    write_artifact,
)
from .spec import (
    SCENARIOS,
    RunResult,
    RunSpec,
    expand_grid,
    fig11_grid,
    scenario_grid,
    threshold_grid,
)

__all__ = [
    "ARTIFACT_VERSION",
    "BatchMember",
    "BatchPool",
    "BatchRunner",
    "SCENARIOS",
    "STRATEGIES",
    "RunResult",
    "RunSpec",
    "WorkerCrash",
    "artifact_registry",
    "build_simulation",
    "collect_result",
    "execute_spec",
    "expand_grid",
    "fig11_grid",
    "merge_results",
    "partition_specs",
    "run_batch",
    "sweep",
    "scenario_grid",
    "threshold_grid",
    "write_artifact",
]
