"""Exception hierarchy for the repro (Mercury/Freon) package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: graph construction, the mdot language, the solver, sensors, and
the cluster substrate each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """Invalid heat-flow or air-flow graph structure."""


class UnknownNodeError(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown node: {name!r}")
        self.name = name


class DuplicateNodeError(GraphError):
    """A node with the same name was added twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"duplicate node: {name!r}")
        self.name = name


class AirFlowConservationError(GraphError):
    """Outgoing air fractions of a vertex do not sum to 1."""

    def __init__(self, name: str, total: float) -> None:
        super().__init__(
            f"air fractions leaving {name!r} sum to {total:.4f}, expected 1.0"
        )
        self.name = name
        self.total = total


class MdotError(ReproError):
    """Base class for errors in the mdot graph-description language."""


class MdotSyntaxError(MdotError):
    """Lexical or syntactic error in an mdot source."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class MdotSemanticError(MdotError):
    """Structurally valid mdot source with inconsistent meaning."""


class SolverError(ReproError):
    """Errors raised by the Mercury solver."""


class UnknownSensorError(SolverError):
    """A temperature query referenced a node the solver does not model."""

    def __init__(self, machine: str, component: str) -> None:
        super().__init__(f"no sensor for component {component!r} on machine {machine!r}")
        self.machine = machine
        self.component = component


class FiddleError(ReproError):
    """Errors raised by the fiddle thermal-emergency tool."""


class FiddleScriptError(FiddleError):
    """A fiddle script line failed to parse or validate.

    ``line`` is the 1-based line number within the script text.
    """

    def __init__(self, message: str, line: int) -> None:
        super().__init__(message)
        self.line = line


class KernelError(ReproError):
    """Errors in the discrete-event simulation kernel (scheduling, dispatch)."""


class FaultError(ReproError):
    """Errors in the fault-injection subsystem (specs, schedules, hooks)."""


class SensorError(ReproError):
    """Errors in the sensor client library or sensor service."""


class SensorClosedError(SensorError):
    """A read was attempted on a closed sensor descriptor."""


class TelemetryError(ReproError):
    """Errors in the observability subsystem (metrics, events, exporters)."""


class CalibrationError(ReproError):
    """Calibration could not be performed or did not converge.

    ``parameters`` carries the optimizer's parameter vector at the point
    of failure (a tuple of floats, or ``None`` when no evaluation had
    started) so a failed fit can be reproduced and diagnosed instead of
    silently reported as "optimizer failed".
    """

    def __init__(self, message: str, parameters=None) -> None:
        super().__init__(message)
        self.parameters = None if parameters is None else tuple(parameters)


class TraceError(ReproError):
    """Malformed utilization trace data."""


class ClusterError(ReproError):
    """Errors in the cluster substrate (LVS, web servers, client)."""


class TopologyError(ReproError):
    """Errors in the spatial topology layer (zones, racks, recirculation)."""


class SweepError(ReproError):
    """Errors in the parallel sweep engine (grid specs, workers, merge)."""


class ServerStateError(ClusterError):
    """An operation was attempted on a server in an incompatible state."""


class ControlError(ReproError):
    """Errors in the control plane (policy registry, state views)."""


class ServeError(ReproError):
    """Errors in the live thermal service (HTTP plane, pacing, lifecycle)."""


class AlertRuleError(ServeError):
    """An alert rule (or rule file) failed to parse or validate."""
