"""repro.kernel — the discrete-event simulation kernel.

The Mercury/Freon system is intrinsically event-driven: tempd wakes once
a minute, admd samples LVS every five seconds, monitord reports on its
own cadence, sensors answer in ~500 microseconds, and UDP datagrams
arrive whenever the network delivers them.  This package provides the
deterministic scheduler those heterogeneous cadences hang off:

* :class:`~repro.kernel.clock.SimClock` — the one mutable "current
  simulated time" shared by the kernel and the telemetry facade;
* :class:`~repro.kernel.core.EventKernel` — a priority queue keyed on
  ``(time, priority, seq)`` with named, payload-carrying events, so the
  pending queue itself can be checkpointed and restored bit-exactly.

:class:`~repro.cluster.simulation.ClusterSimulation` builds one kernel
per run and registers every time-driven layer on it: solver ticks,
daemon wakes, datagram deliveries, fault firings, fiddle-script
statements, and telemetry sampling.  See DESIGN.md ("Event kernel") for
the event taxonomy and the priority bands that reproduce the legacy
tick-loop ordering exactly.
"""

from .clock import SimClock
from .core import Event, EventKernel, Handler

__all__ = ["SimClock", "EventKernel", "Event", "Handler"]
