"""A deterministic discrete-event scheduler for the simulation harness.

The kernel holds a priority queue of :class:`Event` entries keyed on
``(time, priority, seq)``:

* ``time`` — absolute simulated seconds at which the event fires;
* ``priority`` — orders events sharing a timestamp (lower runs first);
  the cluster harness uses fixed priority bands so management daemons,
  the per-tick record, and the next solver tick interleave exactly like
  the old monolithic loop;
* ``seq`` — a monotonically increasing insertion counter breaking the
  remaining ties, so two events scheduled at the same (time, priority)
  always fire in the order they were scheduled.  Determinism is total:
  the dispatch order is a pure function of the schedule calls.

Events carry a *kind* (a registered handler name) and an optional
JSON-able *payload* instead of a callback.  That indirection is what
makes the pending queue checkpointable: :meth:`EventKernel.checkpoint`
serializes ``(time, priority, seq, kind, payload)`` tuples, and a
freshly constructed simulation — which registered the same handlers —
rebuilds the exact queue with :meth:`EventKernel.restore`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import KernelError
from .clock import SimClock


@dataclass(slots=True)
class Event:
    """One scheduled occurrence in the kernel's queue."""

    time: float
    priority: int
    seq: int
    kind: str
    payload: Optional[dict] = None
    #: Lazily honoured by the dispatch loop; cancelled events are
    #: dropped when they reach the head of the queue.
    cancelled: bool = field(default=False, compare=False)

    @property
    def key(self) -> Tuple[float, int, int]:
        """The total dispatch order."""
        return (self.time, self.priority, self.seq)


#: Handler signature: receives the event being dispatched; the kernel's
#: clock already reads the event's time.
Handler = Callable[[Event], None]


class EventKernel:
    """The deterministic event queue plus its handler registry."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._handlers: Dict[str, Handler] = {}
        #: Events dispatched over the kernel's lifetime (observability).
        self.dispatched = 0

    # -- registration ------------------------------------------------------

    def register(self, kind: str, handler: Handler) -> None:
        """Bind a handler to an event kind; kinds are single-owner."""
        if kind in self._handlers:
            raise KernelError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    @property
    def kinds(self) -> List[str]:
        """Registered handler kinds, sorted."""
        return sorted(self._handlers)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        time: float,
        priority: int,
        kind: str,
        payload: Optional[dict] = None,
    ) -> Event:
        """Queue one event; returns it (for :meth:`cancel`)."""
        if kind not in self._handlers:
            raise KernelError(f"no handler registered for kind {kind!r}")
        if time < self.clock.now - 1e-9:
            raise KernelError(
                f"cannot schedule {kind!r} at t={time:g} in the past "
                f"(now={self.clock.now:g})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, kind, payload)
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event so it is skipped when it surfaces."""
        event.cancelled = True

    # -- inspection --------------------------------------------------------

    def peek(self) -> Optional[Event]:
        """The next live event, without dispatching it."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][3] if self._heap else None

    @property
    def pending(self) -> List[Event]:
        """Live queued events in dispatch order (snapshot)."""
        return sorted(
            (entry[3] for entry in self._heap if not entry[3].cancelled),
            key=lambda e: e.key,
        )

    def next_of(self, kind: str) -> Optional[Event]:
        """The earliest pending event of one kind, if any."""
        for event in self.pending:
            if event.kind == kind:
                return event
        return None

    # -- dispatch ----------------------------------------------------------

    def run_next(self) -> Event:
        """Dispatch the next event: advance the clock, call the handler."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            raise KernelError("event queue is empty")
        event = heapq.heappop(heap)[3]
        self.clock.advance(event.time)
        self.dispatched += 1
        self._handlers[event.kind](event)
        return event

    def run_until(
        self, time: float, priority: Optional[int] = None
    ) -> int:
        """Dispatch everything strictly before the lexicographic bound.

        With ``priority=None`` every event with ``event.time < time``
        runs; otherwise the bound is ``(event.time, event.priority) <
        (time, priority)``, so events *at* ``time`` still run when their
        priority is lower.  Returns the number of events dispatched.
        """
        count = 0
        while True:
            event = self.peek()
            if event is None:
                break
            if priority is None:
                if not event.time < time:
                    break
            elif not (event.time, event.priority) < (time, priority):
                break
            self.run_next()
            count += 1
        return count

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the pending queue as plain JSON-able data.

        Cancelled events are dropped; the sequence counter is preserved
        so a restored kernel keeps the exact same tie-breaking order for
        both old and newly scheduled events.
        """
        return {
            "now": self.clock.now,
            "seq": self._seq,
            "events": [
                [e.time, e.priority, e.seq, e.kind, e.payload]
                for e in self.pending
            ],
        }

    def restore(self, data: Dict[str, object]) -> None:
        """Replace the queue with a :meth:`checkpoint`'s contents.

        Every serialized kind must already be registered on this kernel:
        restore targets a freshly constructed simulation that performed
        the same registrations.
        """
        events = []
        for time, priority, seq, kind, payload in data["events"]:
            if kind not in self._handlers:
                raise KernelError(
                    f"checkpoint references unregistered event kind {kind!r}"
                )
            events.append(
                Event(
                    time=float(time), priority=int(priority), seq=int(seq),
                    kind=str(kind),
                    payload=None if payload is None else dict(payload),
                )
            )
        self._heap = [(e.time, e.priority, e.seq, e) for e in events]
        heapq.heapify(self._heap)
        self._seq = int(data["seq"])
        self.clock.advance(float(data["now"]))
