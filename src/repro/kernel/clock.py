"""The single simulation clock every layer reads.

One :class:`SimClock` instance is shared by the event kernel, the
telemetry facade, and (through them) every daemon and solver in a run.
The kernel moves it forward as events dispatch; everything else only
reads ``now``.  Keeping one mutable holder — instead of each subsystem
accumulating ``elapsed += dt`` privately — is what makes heterogeneous
cadences and checkpointing coherent: there is exactly one notion of
"the current simulated time".
"""

from __future__ import annotations


class SimClock:
    """A mutable holder of the current simulated time, in seconds."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def advance(self, now: float) -> None:
        """Move the clock to ``now``.

        No monotonicity is enforced here: checkpoint restore legitimately
        rewinds the clock, and the solver advances it independently when
        run standalone.  The event kernel is the component that guarantees
        causal ordering.
        """
        self.now = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now!r})"
