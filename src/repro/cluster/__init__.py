"""The server-cluster substrate: balancer, servers, traces, simulation.

``ClusterSimulation`` and friends are re-exported lazily to avoid a
circular import (the simulation pulls in the Freon daemons, which use the
balancer types from this package).
"""

from .content_aware import (
    ContentAwareBalancer,
    TwoStageFreon,
    classed_load,
)
from .lvs import Allocation, LoadBalancer, RealServer, ServerState
from .tracegen import RequestTrace, constant_trace, diurnal_trace
from .webserver import PowerState, RequestMix, WebServer

__all__ = [
    "Allocation", "ClusterSimulation", "FREON_K_OVERRIDES", "LoadBalancer",
    "PowerState", "RealServer", "RequestMix", "RequestTrace",
    "ServerState", "SimulationResult", "WebServer", "constant_trace",
    "diurnal_trace", "emergency_script",
    "ContentAwareBalancer", "TwoStageFreon", "classed_load",
    "MultiTierResult", "MultiTierSimulation",
]

_LAZY_SIMULATION = ("ClusterSimulation", "FREON_K_OVERRIDES",
                    "SimulationResult", "emergency_script")
_LAZY_MULTITIER = ("MultiTierSimulation", "MultiTierResult")


def __getattr__(name):
    if name in _LAZY_SIMULATION:
        from . import simulation

        return getattr(simulation, name)
    if name in _LAZY_MULTITIER:
        from . import multitier

        return getattr(multitier, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
