"""Multi-tier services under Freon (paper section 7, future work).

"Freon needs to be extended to deal with multi-tier services."  This
module builds that extension on the existing pieces: a **web tier**
(static-heavy front ends) calls into an **application tier** (CPU-heavy
back ends); each tier sits behind its own weighted least-connections
balancer with its own tempd/admd pair, so a thermal emergency anywhere
in the pipeline is handled by the tier that feels it.

The tiers are coupled the way real request pipelines are: every web
request served spawns an application-tier request with probability
``app_fraction``, so the app tier's offered load is the web tier's
*served* throughput scaled — web-tier drops shield the app tier, and
app-tier drops show up as end-to-end failures of served web requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import table1
from ..config.layouts import validation_cluster
from ..core.solver import Solver
from ..daemons.admd import Admd
from ..daemons.tempd import Tempd
from ..errors import ClusterError
from ..fiddle.script import ScriptRunner, parse_script
from ..freon.policy import FreonConfig
from ..sensors.server import SensorService
from .lvs import LoadBalancer
from .simulation import FREON_K_OVERRIDES
from .tracegen import RequestTrace, diurnal_trace
from .webserver import RequestMix, WebServer

#: Request mixes per tier: the front ends mostly serve files, the back
#: ends mostly compute.
WEB_TIER_MIX = RequestMix(
    dynamic_fraction=0.05, dynamic_cpu=0.010, static_cpu=0.002,
    static_disk=0.008, dynamic_disk=0.002,
)
APP_TIER_MIX = RequestMix(
    dynamic_fraction=1.0, dynamic_cpu=0.025, static_cpu=0.0,
    static_disk=0.0, dynamic_disk=0.002,
)


@dataclass
class TierRecord:
    """One tier's aggregate observables at one tick."""

    offered: float
    dropped: float
    cpu_utilizations: Dict[str, float] = field(default_factory=dict)
    cpu_temperatures: Dict[str, float] = field(default_factory=dict)


@dataclass
class MultiTierTick:
    """One tick of the whole pipeline."""

    time: float
    web: TierRecord
    app: TierRecord


@dataclass
class MultiTierResult:
    """Outcome of a multi-tier run."""

    records: List[MultiTierTick]
    web_drop_fraction: float
    app_drop_fraction: float
    end_to_end_drop_fraction: float
    adjustments: Dict[str, List[Tuple[float, str, float]]]

    def max_temperature(self, tier: str, machine: str) -> float:
        """Peak CPU temperature of one machine in one tier."""
        return max(
            getattr(r, tier).cpu_temperatures[machine] for r in self.records
        )


class _Tier:
    """One tier: servers, balancer, Mercury machines, Freon daemons."""

    def __init__(
        self,
        label: str,
        machines: Sequence[str],
        mix: RequestMix,
        solver: Solver,
        service: SensorService,
        config: FreonConfig,
        managed: bool,
    ) -> None:
        self.label = label
        self.machines = list(machines)
        self.solver = solver
        self.service = service
        self.balancer = LoadBalancer(self.machines)
        self.webservers = {
            name: WebServer(name, mix=mix) for name in self.machines
        }
        self.admd: Optional[Admd] = None
        self.tempds: Dict[str, Tempd] = {}
        if managed:
            self.admd = Admd(self.balancer, config=config)
            for name in self.machines:
                self.tempds[name] = Tempd(
                    machine=name,
                    temperature_reader=self._reader(name),
                    send=self.admd.deliver,
                    config=config,
                )

    def _reader(self, name: str):
        def reader() -> Dict[str, float]:
            return {
                "cpu": self.service.read_temperature(name, "cpu"),
                "disk": self.service.read_temperature(name, "disk"),
            }

        return reader

    def step(self, offered: float, dt: float, now: float) -> TierRecord:
        capacities = {
            name: server.capacity() for name, server in self.webservers.items()
        }
        response_times = {
            name: server.load.response_time
            for name, server in self.webservers.items()
        }
        allocation = self.balancer.allocate(offered, capacities, response_times)
        record = TierRecord(offered=offered, dropped=allocation.dropped_rate)
        for name, server in self.webservers.items():
            load = server.step(allocation.rates.get(name, 0.0), dt)
            self.balancer.server(name).active_connections = load.connections
            self.solver.set_utilizations(
                name,
                {
                    table1.CPU: load.cpu_utilization,
                    table1.DISK_PLATTERS: load.disk_utilization,
                },
            )
            record.cpu_utilizations[name] = load.cpu_utilization
        return record

    def observe(self, record: TierRecord) -> None:
        for name in self.machines:
            record.cpu_temperatures[name] = self.service.read_temperature(
                name, "cpu"
            )

    def tick_daemons(self, dt: float, now: float) -> None:
        if self.admd is None:
            return
        self.admd.tick(dt, now)
        for tempd in self.tempds.values():
            tempd.tick(dt, now)


class MultiTierSimulation:
    """A two-tier service with per-tier Freon management."""

    def __init__(
        self,
        web_machines: Sequence[str] = ("web1", "web2", "web3", "web4"),
        app_machines: Sequence[str] = ("app1", "app2", "app3", "app4"),
        app_fraction: float = 0.30,
        policy: str = "freon",
        trace: Optional[RequestTrace] = None,
        fiddle_script: Optional[str] = None,
        freon_config: Optional[FreonConfig] = None,
        dt: float = 1.0,
    ) -> None:
        if policy not in ("none", "freon"):
            raise ClusterError(f"multi-tier supports 'none'/'freon', not {policy!r}")
        if not 0.0 <= app_fraction <= 1.0:
            raise ClusterError("app_fraction must be in [0, 1]")
        if set(web_machines) & set(app_machines):
            raise ClusterError("tier machine names must be disjoint")
        self.app_fraction = app_fraction
        self.dt = dt
        all_names = list(web_machines) + list(app_machines)
        cluster = validation_cluster(all_names, k_overrides=FREON_K_OVERRIDES)
        self.solver = Solver(
            list(cluster.machines.values()), cluster=cluster, dt=dt,
            record=False,
        )
        self.service = SensorService(self.solver, aliases=table1.sensor_map())
        config = freon_config or FreonConfig()
        managed = policy == "freon"
        self.web = _Tier(
            "web", web_machines, WEB_TIER_MIX, self.solver, self.service,
            config, managed,
        )
        self.app = _Tier(
            "app", app_machines, APP_TIER_MIX, self.solver, self.service,
            config, managed,
        )
        # The web tier must saturate *after* the app tier at the default
        # trace: size the offered load to the app tier's capability.
        self.trace = trace if trace is not None else diurnal_trace(
            servers=len(app_machines),
            mix=APP_TIER_MIX,
            peak_utilization=0.70,
        )
        self._script: Optional[ScriptRunner] = None
        if fiddle_script:
            self._script = ScriptRunner(self.solver, parse_script(fiddle_script))
        self.records: List[MultiTierTick] = []
        self.time = 0.0

    def run(self, duration: Optional[float] = None) -> MultiTierResult:
        """Run the pipeline for ``duration`` seconds (default: the trace)."""
        if duration is None:
            duration = self.trace.duration
        ticks = int(round(duration / self.dt))
        for _ in range(ticks):
            self.step()
        return self.result()

    def step(self) -> MultiTierTick:
        """One tick: web tier first, then the app tier it feeds."""
        now = self.time
        if self._script is not None:
            self._script.advance_to(now)
        # The incoming trace is sized in app-tier units; the web tier
        # sees every end-user request.
        offered_web = self.trace.rate_at(now) / max(self.app_fraction, 1e-9)
        web_record = self.web.step(offered_web, self.dt, now)
        served_web = offered_web - web_record.dropped
        offered_app = served_web * self.app_fraction
        app_record = self.app.step(offered_app, self.dt, now)
        self.solver.step()
        self.time = self.solver.time
        self.web.observe(web_record)
        self.app.observe(app_record)
        self.web.tick_daemons(self.dt, self.time)
        self.app.tick_daemons(self.dt, self.time)
        tick = MultiTierTick(time=now, web=web_record, app=app_record)
        self.records.append(tick)
        return tick

    def result(self) -> MultiTierResult:
        """Aggregate the run."""
        web_offered = sum(r.web.offered for r in self.records) * self.dt
        web_dropped = sum(r.web.dropped for r in self.records) * self.dt
        app_offered = sum(r.app.offered for r in self.records) * self.dt
        app_dropped = sum(r.app.dropped for r in self.records) * self.dt
        # End-to-end: a user request fails if dropped at the web tier or
        # if its spawned app request is dropped.
        failed = web_dropped + (
            app_dropped / max(self.app_fraction, 1e-9)
        )
        adjustments = {}
        for tier in (self.web, self.app):
            adjustments[tier.label] = (
                list(tier.admd.adjustments) if tier.admd else []
            )
        return MultiTierResult(
            records=list(self.records),
            web_drop_fraction=web_dropped / web_offered if web_offered else 0.0,
            app_drop_fraction=app_dropped / app_offered if app_offered else 0.0,
            end_to_end_drop_fraction=(
                failed / web_offered if web_offered else 0.0
            ),
            adjustments=adjustments,
        )
