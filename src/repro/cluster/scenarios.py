"""Adversarial workload scenario library.

The paper's validation cluster serves one synthetic diurnal trace
(:mod:`repro.cluster.tracegen`).  Real internet services face much
nastier load, and a thermal manager that only survives the smooth curve
has not been stress-tested.  This module builds the adversarial
workloads named on the ROADMAP as ready-to-run scenarios:

* **flash-crowd** — step spikes with exponential decay landing on a
  diurnal base: a news event mid-morning and a bigger one right at the
  afternoon peak, when the cluster has the least thermal headroom.
* **multi-region** — the sum of several regions' diurnal curves, offset
  by a fraction of a day each, normalized back to the target peak: load
  never really goes away, and emergencies can land far from any single
  region's peak.
* **cgi-heavy** — the paper's 30% dynamic-content mix pushed to 60%:
  each request costs far more CPU, so the same utilization arrives at a
  much lower request rate and every dropped request is more expensive.
* **megausers** — a rate-aggregated trace standing in for millions of
  independent users: each user contributes a tiny Poisson request
  stream following the diurnal shape, and the aggregate keeps the
  1/sqrt(n) relative fluctuation of the binomial superposition
  (Gaussian-approximated, seeded) instead of the generator's uniform
  jitter.

Every scenario carries the section 5 thermal emergency (so EXPERIMENTS
can report the emergency throughput cost per scenario), and every
scenario has a ``-chaos`` variant that swaps in the full fault storm
from :func:`repro.cluster.simulation.chaos_script` — datagram loss, a
stuck sensor, and a tempd crash — on top of the same workload.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ClusterError
from .tracegen import (
    RequestTrace,
    TracePoint,
    diurnal_shape,
    diurnal_trace,
    peak_rate_for_utilization,
)
from .webserver import RequestMix

#: The plain scenario names; each also has a ``<name>-chaos`` variant.
SCENARIO_NAMES: Tuple[str, ...] = (
    "flash-crowd",
    "multi-region",
    "cgi-heavy",
    "megausers",
)

_DESCRIPTIONS = {
    "flash-crowd": "diurnal base with step+exponential-decay load spikes",
    "multi-region": "sum of phase-offset regional diurnals (no real valley)",
    "cgi-heavy": "60% dynamic-content mix: costlier requests, lower rates",
    "megausers": "rate-aggregated trace for millions of Poisson users",
}


def scenario_names(include_chaos: bool = True) -> Tuple[str, ...]:
    """All scenario names, optionally with the ``-chaos`` variants."""
    if not include_chaos:
        return SCENARIO_NAMES
    return SCENARIO_NAMES + tuple(f"{n}-chaos" for n in SCENARIO_NAMES)


def is_scenario(name: str) -> bool:
    """Whether ``name`` names a scenario (plain or chaos variant)."""
    return _split(name)[0] in SCENARIO_NAMES


def _split(name: str) -> Tuple[str, bool]:
    """``"flash-crowd-chaos"`` -> ``("flash-crowd", True)``."""
    if name.endswith("-chaos"):
        return name[: -len("-chaos")], True
    return name, False


@dataclass(frozen=True)
class BuiltScenario:
    """Everything a :class:`ClusterSimulation` needs to run a scenario."""

    name: str
    description: str
    trace: RequestTrace
    mix: RequestMix
    fiddle_script: str
    chaos: bool


# -- trace builders ---------------------------------------------------------


def flash_crowd_trace(
    duration: float = 2000.0,
    servers: int = 4,
    seed: int = 2006,
    step: float = 10.0,
    base_utilization: float = 0.55,
    mix: RequestMix = RequestMix(),
    spikes: Optional[Sequence[Tuple[float, float, float]]] = None,
) -> RequestTrace:
    """Step+exponential-decay spikes on a diurnal base.

    ``spikes`` is a sequence of ``(at, amplitude, decay)`` fractions of
    the window: at time ``at * duration`` the offered rate jumps by
    ``amplitude`` times the full-cluster capacity rate and decays with
    time constant ``decay * duration``.  The default pair is a moderate
    mid-morning crowd and a larger one arriving at the afternoon peak.
    """
    if spikes is None:
        spikes = ((0.30, 0.25, 0.05), (0.62, 0.40, 0.08))
    base = diurnal_trace(
        duration=duration, step=step, peak_utilization=base_utilization,
        servers=servers, mix=mix, seed=seed,
    )
    capacity_rate = peak_rate_for_utilization(1.0, servers, mix)
    points: List[TracePoint] = []
    for point in base.points:
        extra = 0.0
        for at, amplitude, decay in spikes:
            t0 = at * duration
            if point.time >= t0:
                extra += (
                    amplitude * capacity_rate
                    * math.exp(-(point.time - t0) / (decay * duration))
                )
        points.append(TracePoint(time=point.time, rate=point.rate + extra))
    return RequestTrace(points)


def multi_region_trace(
    duration: float = 2000.0,
    servers: int = 4,
    seed: int = 2006,
    step: float = 10.0,
    regions: int = 3,
    peak_utilization: float = 0.70,
    mix: RequestMix = RequestMix(),
) -> RequestTrace:
    """Sum of ``regions`` phase-offset diurnals, renormalized.

    Region ``i`` runs the diurnal curve shifted by ``i / regions`` of a
    day (its own jitter stream), so the aggregate never drops to a true
    valley.  The sum is rescaled so its peak still lands on
    ``peak_utilization`` — the scenario changes the *shape*, not the
    thermal operating point.  Relies on the descent reaching the valley
    at the day boundary (the :func:`diurnal_shape` seam fix); with the
    old truncated descent every wrapped region would jump at its seam.
    """
    if regions < 2:
        raise ClusterError("multi-region needs at least 2 regions")
    traces = [
        diurnal_trace(
            duration=duration, step=step,
            peak_utilization=peak_utilization / regions,
            servers=servers, mix=mix, seed=seed + index,
            phase=index / regions,
        )
        for index in range(regions)
    ]
    grid = traces[0].points
    summed = [
        TracePoint(
            time=point.time,
            rate=sum(trace.rate_at(point.time) for trace in traces),
        )
        for point in grid
    ]
    target_peak = peak_rate_for_utilization(peak_utilization, servers, mix)
    actual_peak = max(point.rate for point in summed)
    scale = target_peak / actual_peak if actual_peak > 0.0 else 1.0
    return RequestTrace(
        [TracePoint(time=p.time, rate=p.rate * scale) for p in summed]
    )


def megausers_trace(
    duration: float = 2000.0,
    servers: int = 4,
    seed: int = 2006,
    step: float = 10.0,
    users: int = 2_000_000,
    peak_utilization: float = 0.70,
    mix: RequestMix = RequestMix(),
    valley_fraction: float = 0.15,
) -> RequestTrace:
    """Rate-aggregated diurnal trace for ``users`` independent users.

    Each user issues a thin Poisson request stream whose rate follows
    the diurnal shape (peak per-user rate = cluster peak / ``users``).
    Superposing millions of such streams gives a Poisson aggregate, so
    the count in one ``step`` window fluctuates with standard deviation
    ``sqrt(mean_rate * step)`` — the seeded Gaussian approximation used
    here, accurate to well under a percent at these rates.  Unlike the
    generator's uniform jitter, the noise amplitude therefore *scales
    with the load*: calm valleys and ragged peaks.
    """
    if users < 1:
        raise ClusterError("megausers needs at least one user")
    peak = peak_rate_for_utilization(peak_utilization, servers, mix)
    valley = valley_fraction * peak
    rng = random.Random(seed)
    points: List[TracePoint] = []
    t = 0.0
    while t < duration:
        shape = diurnal_shape(t, duration)
        mean = valley + (peak - valley) * shape
        sigma = math.sqrt(max(mean, 0.0) / step)
        rate = max(mean + rng.gauss(0.0, sigma), 0.0)
        points.append(TracePoint(time=t, rate=rate))
        t += step
    return RequestTrace(points)


#: The cgi-heavy request mix: double the paper's dynamic fraction.
CGI_HEAVY_MIX = RequestMix(dynamic_fraction=0.60)


# -- scenario assembly ------------------------------------------------------


def build_scenario(
    name: str,
    duration: float = 2000.0,
    servers: int = 4,
    seed: int = 2006,
    loss: float = 0.05,
    step: float = 10.0,
) -> BuiltScenario:
    """Assemble a named scenario (trace + mix + fault script).

    Plain scenarios carry the section 5 thermal emergency so every run
    reports an emergency throughput cost; ``<name>-chaos`` variants run
    the full fault storm (datagram loss ``loss``, stuck sensor, tempd
    crash) on the identical workload.
    """
    base, chaos = _split(name)
    if base not in SCENARIO_NAMES:
        raise ClusterError(
            f"unknown scenario {name!r}; pick from {scenario_names()}"
        )
    # Lazy import: simulation.py imports this module lazily too, and the
    # fault scripts live next to the simulation they steer.
    from .simulation import chaos_script, emergency_script

    mix = CGI_HEAVY_MIX if base == "cgi-heavy" else RequestMix()
    if base == "flash-crowd":
        trace = flash_crowd_trace(
            duration=duration, servers=servers, seed=seed, step=step, mix=mix,
        )
    elif base == "multi-region":
        trace = multi_region_trace(
            duration=duration, servers=servers, seed=seed, step=step, mix=mix,
        )
    elif base == "megausers":
        trace = megausers_trace(
            duration=duration, servers=servers, seed=seed, step=step, mix=mix,
        )
    else:  # cgi-heavy: the paper's curve, costlier per-request mix
        trace = diurnal_trace(
            duration=duration, step=step, servers=servers, mix=mix, seed=seed,
        )
    script = chaos_script(loss=loss) if chaos else emergency_script()
    description = _DESCRIPTIONS[base] + (" + fault storm" if chaos else "")
    return BuiltScenario(
        name=name,
        description=description,
        trace=trace,
        mix=mix,
        fiddle_script=script,
        chaos=chaos,
    )
