"""A user-space model of LVS weighted least-connections scheduling.

Freon manipulates LVS (the Linux Virtual Server kernel module) through
exactly three knobs, all modeled here:

* **per-server weights** — LVS "directs requests to the server i with the
  lowest ratio of active connections and weight,
  min(Conns_i / Weight_i)"; in fluid steady state that allocates load
  proportionally to weights;
* **per-server concurrent-connection limits** — Freon caps a hot
  server's connections at its recent average;
* **server membership** — Freon-EC instructs LVS to stop using a server
  (quiesce + drain) and to start using it again.

The balancer works on per-tick request *rates* (a fluid approximation of
per-connection dispatch — see DESIGN.md): each tick the offered rate is
split proportionally to the weights of servers that can accept load,
water-filling around servers pinned at their connection caps or capacity
limits, and anything no server can absorb is dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

try:  # NumPy is optional: only the vectorized allocator needs it
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..errors import ClusterError, ServerStateError

#: Weight resolution: LVS weights are integers; we keep floats internally
#: but never let an active server's weight fall below this.
MIN_WEIGHT = 1e-3

_INF = float("inf")


class ServerState(enum.Enum):
    """Lifecycle of a real server behind the balancer."""

    ACTIVE = "active"
    QUIESCING = "quiescing"  # no new connections; draining existing ones
    OFF = "off"


@dataclass
class RealServer:
    """Balancer-side bookkeeping for one backend."""

    name: str
    weight: float = 1.0
    #: None means unlimited concurrent connections.
    connection_limit: Optional[float] = None
    state: ServerState = ServerState.ACTIVE
    #: Fluid count of in-flight connections (updated by the cluster sim).
    active_connections: float = 0.0


@dataclass(frozen=True)
class Allocation:
    """Result of one tick of load distribution."""

    rates: Dict[str, float]
    dropped_rate: float


@dataclass(frozen=True)
class CloningConfig:
    """Request-cloning policy (processor-sharing cloning model).

    Every request is dispatched to ``clones`` backends simultaneously;
    the first response wins and the remaining clones are cancelled.  For
    synchronized processor-sharing clones of exponentially distributed
    demands the first completion arrives after ``1/clones`` of the
    solo service time (the min of d exponentials), so cloning buys a
    ``latency_scale`` of ``1/clones`` — at the price of extra backend
    work: each of the ``clones - 1`` losers has attained the same
    service as the winner and its cancellation costs a further
    ``cancel_overhead`` fraction of that attained service, giving a
    ``work_multiplier`` of ``1 + (clones - 1) * cancel_overhead /
    clones``.

    Cloning is worth it only while the cluster has headroom.  When the
    cloned work would push utilization past ``utilization_ceiling`` the
    balancer opportunistically sheds to plain single-dispatch for that
    tick, so a loaded cluster degrades gracefully to the uncloned
    throughput instead of collapsing under self-inflicted work.
    """

    clones: int = 2
    cancel_overhead: float = 0.10
    utilization_ceiling: float = 0.75

    def __post_init__(self) -> None:
        if self.clones < 1:
            raise ClusterError("clones must be >= 1")
        if not 0.0 <= self.cancel_overhead <= 1.0:
            raise ClusterError("cancel_overhead must be in [0, 1]")
        if not 0.0 < self.utilization_ceiling <= 1.0:
            raise ClusterError("utilization_ceiling must be in (0, 1]")

    @property
    def work_multiplier(self) -> float:
        """Backend work per request relative to single dispatch."""
        d = self.clones
        return 1.0 + (d - 1) * self.cancel_overhead / d

    @property
    def latency_scale(self) -> float:
        """Response-time factor relative to single dispatch."""
        return 1.0 / self.clones


@dataclass(frozen=True)
class CloneAllocation:
    """Result of one tick of cloned load distribution.

    ``rates`` are backend *work* rates (what the servers actually
    process, inflated by the work multiplier when cloning was active
    this tick) so downstream utilization and heat stay physical;
    ``dropped_rate`` is back in *request* units.  ``latency_scale`` is
    the response-time factor in effect this tick (``1/clones`` when
    cloned, ``1.0`` when shed), and ``cloned`` says which it was.
    """

    rates: Dict[str, float]
    dropped_rate: float
    latency_scale: float
    cloned: bool


class LoadBalancer:
    """Weighted least-connections request distribution with caps."""

    def __init__(self, servers: "List[str]") -> None:
        if not servers:
            raise ClusterError("the balancer needs at least one real server")
        self._servers: Dict[str, RealServer] = {
            name: RealServer(name) for name in servers
        }
        self.total_dropped = 0.0
        self.total_offered = 0.0
        #: (active servers in registration order, their weight sum),
        #: rebuilt lazily after any state or weight change.  Membership
        #: and weights change on management actions (a few per run);
        #: :meth:`allocate` reads them every tick.
        self._active_cache: Optional[Tuple[List[RealServer], float]] = None

    # -- administrative interface (what admd calls) ------------------------

    def server(self, name: str) -> RealServer:
        """Bookkeeping record for one backend."""
        try:
            return self._servers[name]
        except KeyError:
            raise ClusterError(f"unknown real server {name!r}") from None

    @property
    def server_map(self) -> Mapping[str, RealServer]:
        """The live name → record mapping (hot-path read access)."""
        return self._servers

    def servers(self) -> "List[RealServer]":
        """All backends, in registration order."""
        return list(self._servers.values())

    def active_servers(self) -> "List[RealServer]":
        """Backends currently accepting new connections."""
        return list(self._actives()[0])

    def _actives(self) -> Tuple["List[RealServer]", float]:
        """Cached (active servers, total weight); see ``_active_cache``."""
        cached = self._active_cache
        if cached is None:
            eligible = [
                s for s in self._servers.values()
                if s.state is ServerState.ACTIVE
            ]
            cached = (eligible, sum(s.weight for s in eligible))
            self._active_cache = cached
        return cached

    def invalidate_caches(self) -> None:
        """Drop derived caches after out-of-band mutation (restore)."""
        self._active_cache = None

    def set_weight(self, name: str, weight: float) -> None:
        """Set a server's scheduling weight."""
        if weight < MIN_WEIGHT:
            weight = MIN_WEIGHT
        self.server(name).weight = weight
        self._active_cache = None

    def set_connection_limit(self, name: str, limit: Optional[float]) -> None:
        """Cap (or uncap, with None) a server's concurrent connections."""
        if limit is not None and limit < 0.0:
            raise ClusterError("connection limit must be non-negative")
        self.server(name).connection_limit = limit

    def quiesce(self, name: str) -> None:
        """Stop sending new connections to a server (drain begins)."""
        server = self.server(name)
        if server.state is ServerState.OFF:
            raise ServerStateError(f"server {name!r} is off")
        server.state = ServerState.QUIESCING
        self._active_cache = None

    def mark_off(self, name: str) -> None:
        """Record that a drained server has been shut down."""
        server = self.server(name)
        if server.active_connections > 1e-6:
            raise ServerStateError(
                f"server {name!r} still has {server.active_connections:.2f} "
                "connections; drain before shutdown"
            )
        server.state = ServerState.OFF
        self._active_cache = None

    def activate(self, name: str) -> None:
        """Start (or resume) scheduling new connections to a server."""
        self.server(name).state = ServerState.ACTIVE
        self._active_cache = None

    # -- scheduling ----------------------------------------------------------

    def allocate(
        self,
        offered_rate: float,
        capacity: Mapping[str, float],
        response_time: Mapping[str, float],
    ) -> Allocation:
        """Split one tick's offered request rate across the backends.

        ``capacity`` is each server's maximum sustainable request rate
        (req/s) this tick; ``response_time`` its current mean response
        time (s), used to translate connection caps into rate caps via
        Little's law.  Returns per-server rates and the dropped rate.
        """
        if offered_rate < 0.0:
            raise ClusterError("offered rate must be non-negative")
        self.total_offered += offered_rate
        eligible, total_weight = self._actives()
        rates: Dict[str, float] = dict.fromkeys(self._servers, 0.0)
        if not eligible or offered_rate == 0.0:
            self.total_dropped += offered_rate
            return Allocation(rates=rates, dropped_rate=offered_rate)

        # Water-filling: distribute proportionally to weight; servers that
        # hit their ceiling keep the ceiling and the excess is reoffered
        # to the rest.  The first pass runs straight off ``eligible``
        # (same iteration order as the open set it would seed) with each
        # server's hard ceiling — capacity, further capped by the
        # connection limit translated through Little's law (L = lambda T)
        # — computed inline, so the common nobody-saturates tick builds
        # neither the ceiling dict nor the open-set dict.
        remaining = offered_rate
        saturated: List[str] = []
        if remaining > 1e-12 and total_weight > 0.0:
            distributed = 0.0
            for server in eligible:
                name = server.name
                limit = capacity.get(name, _INF)
                if server.connection_limit is not None:
                    t_resp = response_time.get(name, 0.0)
                    if t_resp < 1e-6:
                        t_resp = 1e-6
                    cap_rate = server.connection_limit / t_resp
                    if cap_rate < limit:
                        limit = cap_rate
                share = remaining * server.weight / total_weight
                headroom = (limit if limit > 0.0 else 0.0) - rates[name]
                take = share if share < headroom else headroom
                rates[name] += take
                distributed += take
                if share >= headroom - 1e-12:
                    saturated.append(name)
            remaining -= distributed
        if saturated and remaining > 1e-12:
            ceiling: Dict[str, float] = {}
            for server in eligible:
                limit = capacity.get(server.name, _INF)
                if server.connection_limit is not None:
                    t_resp = max(response_time.get(server.name, 0.0), 1e-6)
                    limit = min(limit, server.connection_limit / t_resp)
                ceiling[server.name] = max(limit, 0.0)
            open_set = {
                server.name: server.weight for server in eligible
            }
            for name in saturated:
                open_set.pop(name, None)
            while remaining > 1e-12 and open_set:
                total_weight = sum(open_set.values())
                if total_weight <= 0.0:
                    break
                saturated = []
                distributed = 0.0
                for name, weight in open_set.items():
                    share = remaining * weight / total_weight
                    headroom = ceiling[name] - rates[name]
                    take = min(share, headroom)
                    rates[name] += take
                    distributed += take
                    if share >= headroom - 1e-12:
                        saturated.append(name)
                remaining -= distributed
                if not saturated:
                    break
                for name in saturated:
                    open_set.pop(name, None)
        # Water-filling leaves float residue of order 1e-13; only count a
        # physically meaningful remainder as dropped load.
        dropped = remaining if remaining > 1e-9 * max(offered_rate, 1.0) else 0.0
        self.total_dropped += dropped
        return Allocation(rates=rates, dropped_rate=dropped)

    def allocate_cloned(
        self,
        offered_rate: float,
        capacity: Mapping[str, float],
        response_time: Mapping[str, float],
        config: CloningConfig,
    ) -> CloneAllocation:
        """Split one tick's offered *request* rate with cloning.

        Dispatches each request to ``config.clones`` backends (first
        response wins, losers cancelled) by offering the inflated work
        rate ``offered_rate * work_multiplier`` to :meth:`allocate`.
        When the cloned work would exceed ``utilization_ceiling`` of the
        active servers' aggregate capacity the tick sheds to plain
        single dispatch instead — cloning never costs throughput.

        The returned per-server ``rates`` are work rates (drive
        utilization/heat as usual); ``dropped_rate`` and the balancer's
        cumulative ``total_offered``/``total_dropped`` counters stay in
        request units so :meth:`drop_fraction` keeps meaning "fraction
        of *requests* lost" with or without cloning.
        """
        multiplier = config.work_multiplier
        cloned = config.clones > 1
        if cloned and offered_rate > 0.0:
            eligible, _ = self._actives()
            total_capacity = 0.0
            for server in eligible:
                limit = capacity.get(server.name, _INF)
                if server.connection_limit is not None:
                    t_resp = max(response_time.get(server.name, 0.0), 1e-6)
                    limit = min(limit, server.connection_limit / t_resp)
                total_capacity += max(limit, 0.0)
            ceiling = config.utilization_ceiling * total_capacity
            if offered_rate * multiplier > ceiling:
                cloned = False  # opportunistic shed: no headroom to clone
        if not cloned:
            inner = self.allocate(offered_rate, capacity, response_time)
            return CloneAllocation(
                rates=inner.rates,
                dropped_rate=inner.dropped_rate,
                latency_scale=1.0,
                cloned=False,
            )
        inner = self.allocate(
            offered_rate * multiplier, capacity, response_time
        )
        # allocate() counted work units; rewind the cumulative counters
        # to request units so drop_fraction() stays comparable.
        dropped = inner.dropped_rate / multiplier
        self.total_offered -= offered_rate * (multiplier - 1.0)
        self.total_dropped -= inner.dropped_rate - dropped
        return CloneAllocation(
            rates=inner.rates,
            dropped_rate=dropped,
            latency_scale=config.latency_scale,
            cloned=True,
        )

    # -- statistics (what admd samples every few seconds) -------------------

    def connection_stats(self) -> Dict[str, float]:
        """Current active-connection counts, as LVS would report them."""
        return {
            name: server.active_connections
            for name, server in self._servers.items()
        }

    def drop_fraction(self) -> float:
        """Cumulative fraction of offered load that was dropped."""
        if self.total_offered <= 0.0:
            return 0.0
        return self.total_dropped / self.total_offered


def allocate_rates(offered_rate: float, weights, ceilings):
    """Vectorized water-filling over a whole machine axis.

    The array form of :meth:`LoadBalancer.allocate` used by the
    flattened datacenter simulation (:mod:`repro.topology.sim`), where
    per-server dict bookkeeping would dominate the tick at 1k-10k
    machines: split ``offered_rate`` proportionally to ``weights``,
    re-offering the excess of servers pinned at their ``ceilings`` until
    everyone is saturated or the load is placed.  Servers with zero (or
    negative) weight receive nothing.  Returns ``(rates, dropped)``
    where ``rates`` is a float array aligned with the inputs.

    The water-filling rounds converge because every round either places
    all remaining load or permanently closes at least one server.
    """
    if np is None:
        raise ClusterError("allocate_rates requires NumPy")
    if offered_rate < 0.0:
        raise ClusterError("offered rate must be non-negative")
    weights = np.asarray(weights, dtype=float)
    ceilings = np.asarray(ceilings, dtype=float)
    rates = np.zeros_like(weights)
    open_mask = weights > 0.0
    remaining = float(offered_rate)
    while remaining > 1e-12 and open_mask.any():
        total_weight = weights[open_mask].sum()
        if total_weight <= 0.0:
            break
        share = np.where(open_mask, remaining * weights / total_weight, 0.0)
        headroom = np.maximum(ceilings - rates, 0.0)
        take = np.minimum(share, headroom)
        rates += take
        remaining -= float(take.sum())
        saturated = open_mask & (share >= headroom - 1e-12)
        if not saturated.any():
            break
        open_mask &= ~saturated
    # Water-filling leaves float residue of order 1e-13; only count a
    # physically meaningful remainder as dropped load.
    dropped = (
        remaining if remaining > 1e-9 * max(offered_rate, 1.0) else 0.0
    )
    return rates, dropped


def allocate_rates_cloned(offered_rate, weights, ceilings, config):
    """Vectorized cloned water-filling over a whole machine axis.

    The array form of :meth:`LoadBalancer.allocate_cloned`, used by
    :class:`repro.topology.sim.ScaleSimulation` at 1k-10k machines:
    offer ``offered_rate * work_multiplier`` through
    :func:`allocate_rates`, shedding to single dispatch when the cloned
    work would exceed ``utilization_ceiling`` of the aggregate ceiling.
    Infinite ceilings mean unbounded capacity, so cloning never sheds.
    Returns ``(rates, dropped, latency_scale, cloned)`` with ``rates``
    in work units and ``dropped`` in request units.
    """
    if np is None:
        raise ClusterError("allocate_rates_cloned requires NumPy")
    multiplier = config.work_multiplier
    cloned = config.clones > 1
    if cloned and offered_rate > 0.0:
        ceil_arr = np.asarray(ceilings, dtype=float)
        w_arr = np.asarray(weights, dtype=float)
        total_capacity = float(
            np.maximum(ceil_arr, 0.0)[w_arr > 0.0].sum()
        )
        if offered_rate * multiplier > config.utilization_ceiling * total_capacity:
            cloned = False  # opportunistic shed: no headroom to clone
    if not cloned:
        rates, dropped = allocate_rates(offered_rate, weights, ceilings)
        return rates, dropped, 1.0, False
    rates, dropped = allocate_rates(
        offered_rate * multiplier, weights, ceilings
    )
    return rates, dropped / multiplier, config.latency_scale, True
