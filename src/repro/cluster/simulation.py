"""The full Freon experiment harness (paper section 5).

Wires together every piece of the reproduction:

* four web servers behind an LVS-style balancer, loaded by a synthetic
  diurnal trace;
* Mercury (one solver emulating all machines through the Figure 1(c)
  cluster graph) fed by the servers' component utilizations — exactly the
  deployment of section 5: "Mercury was deployed on the server nodes and
  its solver ran on yet another machine";
* fiddle events raising machine inlet temperatures mid-run;
* a pluggable management policy: base Freon, Freon-EC, the traditional
  red-line shutdown, or none.

The simulation runs on the :mod:`repro.kernel` discrete-event scheduler:
solver ticks, tempd/admd/monitord wake-ups (at their paper periods, 60 s
and 5 s), traditional-policy checks, DVFS governor decisions, watchdog
passes, datagram deliveries, fault firings, fiddle-script statements,
and telemetry sampling are all events on one priority queue sharing one
:class:`~repro.kernel.clock.SimClock`.  In the default legacy-compat
mode the event priorities reproduce the original monolithic tick loop's
ordering exactly (the golden traces under ``tests/golden`` are
byte-identical); ``mode="event"`` additionally gives tempd -> admd
datagrams a real sub-tick network latency.  Every tick is recorded, so
experiments can regenerate the paper's Figure 11/12 series.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..config import table1
from ..config.layouts import validation_cluster
from ..control import names as _policy_names
from ..core.solver import Solver
from ..daemons.admd import Admd
from ..daemons.tempd import Tempd, TempdMessage
from ..errors import ClusterError
from ..faults.injector import (
    DaemonWatchdog,
    FaultInjector,
    LossyChannel,
    RestartEvent,
)
from ..fiddle.script import ScriptRunner, parse_script
from ..freon.ec import AdmdEC
from ..freon.policy import FreonConfig
from ..freon.regions import RegionMap, two_region_split
from ..freon.traditional import TraditionalPolicy
from ..kernel import Event, EventKernel
from ..sensors.server import SensorService
from ..telemetry import ensure as _ensure_telemetry
from .lvs import CloningConfig, LoadBalancer, ServerState
from .tracegen import RequestTrace, diurnal_trace
from .webserver import PowerState, WebServer

#: Calibrated CPU-to-air conductance used for the Freon studies.  The
#: paper drives its section 5 experiments with *calibrated* Mercury
#: inputs; our section 3.1 calibration lands near 0.9 W/K for this edge,
#: and within that uncertainty we pick the value that reproduces the
#: paper's operating regime (see EXPERIMENTS.md): a fully loaded CPU
#: under normal cooling sits at ~63 C — below the 67 C threshold — while
#: a 70%-loaded CPU under either section 5 emergency crosses it.
FREON_K_OVERRIDES: Dict[Tuple[str, str], float] = {
    ("CPU", "CPU Air"): 0.80,
}

#: Supported management policies — the cluster slice of the
#: :mod:`repro.control` registry (the same name space the flattened
#: :class:`~repro.topology.sim.ScaleSimulation` validates against).
#: "local-dvfs" is the section 4.3 comparison point: each CPU manages
#: its own temperature by stepping down P-states, with no cluster-level
#: coordination.
POLICIES = _policy_names("cluster")

#: Scheduling modes.  "legacy" reproduces the original monolithic tick
#: loop exactly (datagrams flushed once per tick, zero network latency);
#: "event" delivers tempd -> admd datagrams as their own kernel events
#: with a real sub-tick latency.
MODES = ("legacy", "event")

#: Event-dispatch priority bands (lower fires first at equal timestamps;
#: the seq counter breaks remaining ties in scheduling order).  At a
#: shared timestamp T the legacy tick loop ran: the daemon work of the
#: tick that *ended* at T (admd LVS sample, tempd wakes, datagram flush,
#: EC evaluation, traditional check, governors, watchdog, that tick's
#: record), then the work of the tick that *starts* at T (fault clock,
#: script statements, load balancing + solver step).  The bands encode
#: exactly that order, which is how the kernel reproduces the legacy
#: golden traces byte-for-byte.
PRIORITY_STATS = 10
PRIORITY_WAKE = 20
PRIORITY_DELIVER = 30
PRIORITY_EVALUATE = 40
PRIORITY_POLICY = 50
PRIORITY_GOVERNOR = 60
PRIORITY_WATCHDOG = 70
PRIORITY_RECORD = 80
PRIORITY_FAULTS = 100
PRIORITY_COMMAND = 110
PRIORITY_SAMPLE_GATE = 115
PRIORITY_TICK = 120

#: Idle fast-forward: consecutive ticks with unchanged inputs required
#: before probing for convergence, and the default per-tick temperature
#: delta below which the field counts as converged.  The cluster's
#: thermal time constant is ~450 s, so coasting at a per-tick delta of
#: eps leaves at most ~450*eps degrees of residual transient uncaptured;
#: the conservative default bounds that well below the golden-trace
#: noise floor.  Runs that only care about steady state can pass a
#: looser ``idle_epsilon`` to start coasting much earlier.
IDLE_QUIET_TICKS = 2
IDLE_EPSILON = 1e-6

#: Enum -> wire value, precomputed: ``state.value`` goes through a
#: descriptor on every read, and the recorder reads it for every server
#: of every tick of every sweep run.
_POWER_STATE_VALUE = {state: state.value for state in PowerState}

#: Failed convergence probes back off exponentially (the probe snapshots
#: every temperature twice, which would otherwise run every quiet tick of
#: a long, slowly-converging stretch).  The cap bounds how late coasting
#: can engage — and a later engagement only shrinks the frozen residual.
IDLE_PROBE_BACKOFF_MAX = 64


class ServerRecord(NamedTuple):
    """One server's observables at one tick.

    A ``NamedTuple`` rather than a dataclass: one is built per server
    per tick of every run, and tuple construction is C-speed where a
    generated ``__init__`` executes nine Python attribute stores.
    """

    state: str
    rate: float
    cpu_utilization: float
    disk_utilization: float
    connections: float
    weight: float
    connection_limit: Optional[float]
    cpu_temperature: float
    disk_temperature: float


#: Wire-order field names for :meth:`ClusterSimulation._record_to_dict`.
_SERVER_RECORD_FIELDS = ServerRecord._fields


class TickRecord(NamedTuple):
    """One tick of the whole cluster."""

    time: float
    offered_rate: float
    dropped_rate: float
    active_servers: int
    servers: Dict[str, ServerRecord]


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    records: List[TickRecord]
    drop_fraction: float
    total_offered: float
    total_dropped: float
    adjustments: List[Tuple[float, str, float]]
    releases: List[Tuple[float, str]]
    redlined: List[Tuple[float, str]]
    ec_events: List
    shutdowns: List
    pstate_changes: List
    fiddle_log: List[str]
    #: Fault-injection audit log: (time, event) entries.
    fault_log: List[Tuple[float, str]] = field(default_factory=list)
    #: Watchdog daemon restarts.
    restarts: List[RestartEvent] = field(default_factory=list)
    #: tempd -> admd datagram stats: sent/delivered/dropped/duplicated/delayed.
    datagram_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-tick response-time factor from request cloning (1/clones when
    #: cloning was active, 1.0 when shed); empty when cloning is off.
    clone_latency_scales: List[float] = field(default_factory=list)

    def request_latency_series(self) -> List[float]:
        """Per-tick mean request response time (seconds).

        Derived from the recorded fluid state via Little's law — each
        tick's mean latency is total connections / total processed rate
        — then scaled by that tick's cloning factor (first response of
        d clones arrives in 1/d of the solo time).  Ticks with no
        processed load report 0.0.
        """
        series: List[float] = []
        scales = self.clone_latency_scales
        for index, record in enumerate(self.records):
            connections = sum(
                s.connections for s in record.servers.values()
            )
            rate = sum(s.rate for s in record.servers.values())
            latency = connections / rate if rate > 1e-9 else 0.0
            if index < len(scales):
                latency *= scales[index]
            series.append(latency)
        return series

    def p99_latency(self) -> float:
        """Request-weighted 99th-percentile tick latency (seconds).

        Each tick's mean latency is weighted by the request rate it
        served, so a short overloaded burst moves the tail the way its
        request volume deserves.
        """
        weighted = [
            (latency, sum(s.rate for s in record.servers.values()))
            for latency, record in zip(
                self.request_latency_series(), self.records
            )
        ]
        total = sum(weight for _, weight in weighted)
        if total <= 0.0:
            return 0.0
        threshold = 0.99 * total
        seen = 0.0
        for latency, weight in sorted(weighted):
            seen += weight
            if seen >= threshold:
                return latency
        return weighted[-1][0] if weighted else 0.0

    def times(self) -> List[float]:
        """Tick timestamps."""
        return [r.time for r in self.records]

    def series(self, machine: str, fieldname: str) -> List[float]:
        """Per-tick series of one server field (e.g. "cpu_temperature")."""
        return [getattr(r.servers[machine], fieldname) for r in self.records]

    def active_series(self) -> List[int]:
        """Active-server count over time (the thick line of Figure 12)."""
        return [r.active_servers for r in self.records]

    def max_temperature(self, machine: str, component: str = "cpu_temperature",
                        after: float = 0.0) -> float:
        """Peak temperature of one machine after a given time."""
        return max(
            getattr(r.servers[machine], component)
            for r in self.records
            if r.time >= after
        )


class ClusterSimulation:
    """One configured, steppable Freon experiment."""

    def __init__(
        self,
        policy: str = "freon",
        machines: Sequence[str] = table1.CLUSTER_MACHINES,
        trace: Optional[RequestTrace] = None,
        fiddle_script: Optional[str] = None,
        freon_config: Optional[FreonConfig] = None,
        k_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
        regions: Optional[RegionMap] = None,
        boot_time: float = 60.0,
        dt: float = 1.0,
        injector: Optional[FaultInjector] = None,
        fault_seed: int = 0,
        watchdog_restart_delay: float = 10.0,
        engine: str = "python",
        telemetry=None,
        telemetry_sample_period: float = 5.0,
        mode: str = "legacy",
        idle_fast_forward: bool = False,
        idle_epsilon: float = IDLE_EPSILON,
        datagram_latency: float = 0.0005,
        topology=None,
        scenario: Optional[str] = None,
        scenario_duration: float = 2000.0,
        scenario_loss: float = 0.05,
        mix=None,
        cloning: Optional[CloningConfig] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ClusterError(f"unknown policy {policy!r}; pick from {POLICIES}")
        if mode not in MODES:
            raise ClusterError(f"unknown mode {mode!r}; pick from {MODES}")
        if dt <= 0.0:
            raise ClusterError(f"dt must be positive, got {dt!r}")
        if telemetry_sample_period <= 0.0:
            raise ClusterError(
                f"telemetry_sample_period must be positive, "
                f"got {telemetry_sample_period!r}"
            )
        if datagram_latency < 0.0:
            raise ClusterError(
                f"datagram_latency must be non-negative, got {datagram_latency!r}"
            )
        if idle_epsilon <= 0.0:
            raise ClusterError(
                f"idle_epsilon must be positive, got {idle_epsilon!r}"
            )
        self.policy = policy
        self.mode = mode
        self.dt = dt
        if topology is not None and machines is table1.CLUSTER_MACHINES:
            # A topology names its own machines; only an explicit machine
            # list may disagree (and then the solver rejects the mismatch).
            machines = topology.machines
        self.machines = list(machines)
        self.topology = topology
        #: Workload scenario (see :mod:`repro.cluster.scenarios`): fills
        #: in the trace, request mix, and fault script unless each is
        #: explicitly overridden.  None keeps the classic Figure 11 path
        #: untouched (goldens are byte-identical by construction).
        self.scenario = scenario
        if scenario is not None:
            from .scenarios import build_scenario

            built = build_scenario(
                scenario,
                duration=scenario_duration,
                servers=len(self.machines),
                loss=scenario_loss,
            )
            if trace is None:
                trace = built.trace
            if mix is None:
                mix = built.mix
            if fiddle_script is None:
                fiddle_script = built.fiddle_script
        #: Request-cloning policy; None means classic single dispatch.
        self.cloning = cloning
        self._clone_scales: List[float] = []
        self.telemetry = _ensure_telemetry(telemetry)
        #: The discrete-event scheduler every time-driven layer runs on.
        self.kernel = EventKernel()
        # One clock: telemetry timestamps come from the kernel's SimClock.
        self.telemetry.use_clock(self.kernel.clock)
        self._datagram_latency = datagram_latency
        if k_overrides is None:
            k_overrides = FREON_K_OVERRIDES
        cluster_layout = validation_cluster(self.machines, k_overrides=k_overrides)
        self.solver = Solver(
            list(cluster_layout.machines.values()),
            # Spatial topology replaces the scalar cluster coupling: the
            # machines' inlets come from the recirculation operator.
            cluster=None if topology is not None else cluster_layout,
            dt=dt,
            record=False,
            engine=engine,
            telemetry=self.telemetry,
            topology=topology,
        )
        #: Always present; inert until a fault is scheduled or injected.
        self.injector = injector or FaultInjector(seed=fault_seed)
        if self.telemetry.enabled:
            # The injector's own log lists stay authoritative; telemetry
            # mirrors them (and LossyChannel/watchdog read it lazily).
            self.injector.telemetry = self.telemetry
        self.service = SensorService(
            self.solver, aliases=table1.sensor_map(), injector=self.injector,
            telemetry=self.telemetry,
        )
        self.balancer = LoadBalancer(self.machines)
        self.webservers: Dict[str, WebServer] = {
            name: WebServer(name, mix=mix, boot_time=boot_time)
            for name in self.machines
        }
        self.trace = trace if trace is not None else diurnal_trace(
            servers=len(self.machines)
        )
        self.config = freon_config or FreonConfig()
        if self.config.monitor_period < dt:
            raise ClusterError(
                f"monitor_period ({self.config.monitor_period!r}) must be at "
                f"least one tick (dt={dt!r})"
            )
        self._script: Optional[ScriptRunner] = None
        if fiddle_script:
            self._script = ScriptRunner(
                self.solver, parse_script(fiddle_script),
                injector=self.injector, telemetry=self.telemetry,
            )
        self.channel: Optional[LossyChannel] = None
        self._build_policy(regions)
        self.watchdog = DaemonWatchdog(
            self.injector,
            restart=self._restart_daemon,
            restart_delay=watchdog_restart_delay,
        )
        self.records: List[TickRecord] = []
        self.total_offered = 0.0
        self.total_dropped = 0.0
        self.time = 0.0
        self._sample_period = max(telemetry_sample_period, dt)
        self._sample_next = False
        self._ticks_done = 0
        self._last_offered = 0.0
        self._last_dropped = 0.0
        #: Lazy per-server ground-truth temperature readers (see
        #: :meth:`_temperature_readers`).
        self._temp_readers: Optional[List[Tuple[
            Dict[str, float], str, Dict[str, float], str]]] = None
        #: Idle fast-forward (opt-in): once every input to the thermal
        #: model has been quiet long enough and a probe step shows the
        #: temperature field converged, the solver coasts (holds
        #: temperatures, advances time) instead of iterating.
        self.fast_forward = bool(idle_fast_forward)
        self.idle_epsilon = idle_epsilon
        self._ff_quiet = 0
        self._ff_coasting = False
        self._ff_dirty = True
        self._ff_next_probe = IDLE_QUIET_TICKS
        self._ff_backoff = 1
        self._ff_last_utils: Dict[str, Tuple[float, float]] = {}
        self._register_handlers()
        self._schedule_initial_events()
        if self.telemetry.enabled:
            self._tel_offered = self.telemetry.counter(
                "cluster_requests_offered_total",
                help="Requests offered to the balancer (rate x dt).",
            )
            self._tel_dropped = self.telemetry.counter(
                "cluster_requests_dropped_total",
                help="Requests dropped for lack of capacity (rate x dt).",
            )
            self._tel_offered_rate = self.telemetry.gauge(
                "cluster_offered_rate",
                help="Offered request rate this tick, requests/second.",
            )
            self._tel_dropped_rate = self.telemetry.gauge(
                "cluster_dropped_rate",
                help="Dropped request rate this tick, requests/second.",
            )
            self._tel_active = self.telemetry.gauge(
                "cluster_active_servers",
                help="Servers currently accepting load (Figure 12's thick line).",
            )
        # Scenario/cloning metrics exist only when the feature is
        # configured: a classic run's registry dump stays byte-identical.
        self._tel_clone_scale = None
        self._tel_clone_shed = None
        if self.telemetry.enabled and self.cloning is not None:
            self._tel_clone_scale = self.telemetry.gauge(
                "cluster_clone_latency_scale",
                help="Response-time factor from request cloning this tick "
                     "(1/clones when cloning, 1.0 when shed).",
            )
            self._tel_clone_shed = self.telemetry.counter(
                "cluster_clone_shed_ticks_total",
                help="Ticks where cloning shed to single dispatch for "
                     "lack of capacity headroom.",
            )
        if self.telemetry.enabled and self.scenario is not None:
            self.telemetry.gauge(
                f"cluster_scenario_{self.scenario.replace('-', '_')}",
                help="Marker gauge: this run executes the named workload "
                     "scenario (1 = active).",
            ).set(1.0)

    # -- policy wiring -----------------------------------------------------

    def _build_policy(self, regions: Optional[RegionMap]) -> None:
        self.admd: Optional[Admd] = None
        self.traditional: Optional[TraditionalPolicy] = None
        self.tempds: Dict[str, Tempd] = {}
        self.governors: Dict[str, "DvfsGovernor"] = {}
        if self.policy == "none":
            return
        if self.policy == "local-dvfs":
            from ..freon.local import DvfsGovernor

            for name in self.machines:
                self.governors[name] = DvfsGovernor(
                    read_temperature=self._cpu_reader(name),
                    apply=self._dvfs_applier(name),
                    high=self.config.high("cpu"),
                    low=self.config.low("cpu"),
                    machine=name,
                    telemetry=self.telemetry,
                )
            return
        if self.policy == "traditional":
            self.traditional = TraditionalPolicy(
                readers={
                    name: self._temperature_reader(name) for name in self.machines
                },
                turn_off=self.request_off,
                config=self.config,
                is_on=lambda name: self.webservers[name].is_on,
            )
            return
        if self.policy == "freon":
            self.admd = Admd(
                self.balancer, config=self.config, turn_off=self.request_off,
                telemetry=self.telemetry,
            )
            ec_mode = False
        else:  # freon-ec
            region_map = regions or two_region_split(self.machines)
            self.admd = AdmdEC(
                self.balancer,
                regions=region_map,
                power=self,
                config=self.config,
                telemetry=self.telemetry,
            )
            ec_mode = True
        # tempd -> admd datagrams traverse the (fault-injectable) channel.
        # In event mode each datagram is a real kernel event with a
        # sub-tick network latency; legacy mode flushes once per tick.
        self.channel = LossyChannel(
            self.admd.deliver,
            self.injector,
            clock=self.kernel.clock if self.mode == "event" else None,
            latency=self._datagram_latency if self.mode == "event" else 0.0,
        )
        for name in self.machines:
            self.tempds[name] = Tempd(
                machine=name,
                temperature_reader=self._temperature_reader(name),
                send=self.channel,
                config=self.config,
                utilization_reader=self._utilization_reader(name) if ec_mode else None,
                telemetry=self.telemetry,
            )

    def _cpu_reader(self, name: str):
        def reader() -> float:
            return self.service.read_temperature(name, "cpu")

        return reader

    def _dvfs_applier(self, name: str):
        def apply(frequency_ratio: float, power_ratio: float) -> None:
            self.webservers[name].set_speed_factor(frequency_ratio)
            self.solver.machine(name).set_power_scale(
                table1.CPU, power_ratio
            )
            self._ff_mark_dirty()

        return apply

    def _temperature_reader(self, name: str):
        def reader() -> Dict[str, float]:
            return {
                "cpu": self.service.read_temperature(name, "cpu"),
                "disk": self.service.read_temperature(name, "disk"),
            }

        return reader

    def _utilization_reader(self, name: str):
        def reader() -> Dict[str, float]:
            load = self.webservers[name].load
            return {"cpu": load.cpu_utilization, "disk": load.disk_utilization}

        return reader

    # -- control-plane seam --------------------------------------------------

    def state_view(self):
        """A scalar :class:`~repro.control.ClusterStateView` over this
        simulation, for driving unified :mod:`repro.control` policies
        against the exact sensor/balancer/power paths the native
        daemons use."""
        view = getattr(self, "_state_view", None)
        if view is None:
            from ..control import ClusterStateView

            view = ClusterStateView(self)
            self._state_view = view
        return view

    # -- PowerController interface (used by Freon-EC) -----------------------

    def off_servers(self) -> List[str]:
        """Machines currently powered off."""
        return [
            name for name, ws in self.webservers.items()
            if ws.state is PowerState.OFF
        ]

    def active_servers(self) -> List[str]:
        """Machines currently accepting load."""
        return [
            name for name, ws in self.webservers.items()
            if ws.state is PowerState.ACTIVE
        ]

    def request_on(self, name: str) -> None:
        """Boot a machine; it joins the balancer once booted."""
        server = self.webservers[name]
        if server.state is not PowerState.OFF:
            return
        server.power_on()
        self._set_machine_power(name, on=True)

    def request_off(self, name: str) -> None:
        """Quiesce a machine in LVS and drain it; powers off when empty."""
        server = self.webservers[name]
        if server.state is not PowerState.ACTIVE:
            return
        self.balancer.quiesce(name)
        server.begin_drain()

    def _restart_daemon(self, machine: str, daemon: str) -> None:
        """Watchdog hook: rebuild a crashed daemon's in-memory state.

        A restarted tempd gets a fresh controller bank (derivative state
        does not survive a crash) but keeps knowledge of whether admd
        holds restrictions for its server — in a real deployment the
        supervisor hands that over from admd on reconnect.

        The wake cadence needs no attention here: the kernel keeps one
        "wake" event per machine on the monitor-period grid regardless
        of crashes, so a restarted daemon is structurally aligned with
        the grid rather than re-deriving a phase.
        """
        if daemon != "tempd" or machine not in self.tempds:
            return  # monitord has no in-memory state to rebuild here
        old = self.tempds[machine]
        replacement = Tempd(
            machine=machine,
            temperature_reader=self._temperature_reader(machine),
            send=self.channel,
            config=self.config,
            utilization_reader=old._read_utilizations,
            telemetry=self.telemetry,
        )
        replacement.restricted = old.restricted
        self.tempds[machine] = replacement

    def _set_machine_power(self, name: str, on: bool) -> None:
        factor = 1.0 if on else 0.0
        state = self.solver.machine(name)
        for component in state.layout.components:
            state.set_power_scale(component, factor)
        self._ff_mark_dirty()

    # -- event kernel wiring ---------------------------------------------------

    def _register_handlers(self) -> None:
        """Name every event kind the simulation schedules.

        Handlers are registered unconditionally (even for kinds the
        current policy never schedules) so a checkpointed event queue
        can always be restored onto a freshly constructed simulation.
        """
        k = self.kernel
        k.register("tick", self._ev_tick)
        k.register("record", self._ev_record)
        k.register("faults", self._ev_faults)
        k.register("command", self._ev_command)
        k.register("sample_gate", self._ev_sample_gate)
        k.register("stats", self._ev_stats)
        k.register("wake", self._ev_wake)
        k.register("deliver", self._ev_deliver)
        k.register("evaluate", self._ev_evaluate)
        k.register("policy", self._ev_policy)
        k.register("governor", self._ev_governor)
        k.register("watchdog", self._ev_watchdog)

    def _schedule_initial_events(self) -> None:
        k = self.kernel
        k.schedule(0.0, PRIORITY_FAULTS, "faults")
        k.schedule(0.0, PRIORITY_SAMPLE_GATE, "sample_gate")
        k.schedule(0.0, PRIORITY_TICK, "tick")
        if self._script is not None:
            for index, command in enumerate(self._script.commands):
                k.schedule(
                    command.time, PRIORITY_COMMAND, "command", {"index": index}
                )
        if self.admd is not None:
            k.schedule(self.config.stats_period, PRIORITY_STATS, "stats")
            for name in self.tempds:
                k.schedule(
                    self.config.monitor_period, PRIORITY_WAKE, "wake",
                    {"machine": name},
                )
            if self.mode == "legacy":
                k.schedule(self.dt, PRIORITY_DELIVER, "deliver")
            if isinstance(self.admd, AdmdEC):
                k.schedule(
                    self.config.monitor_period, PRIORITY_EVALUATE, "evaluate"
                )
        if self.traditional is not None:
            k.schedule(self.config.monitor_period, PRIORITY_POLICY, "policy")
        for name, governor in self.governors.items():
            k.schedule(
                governor.period, PRIORITY_GOVERNOR, "governor",
                {"machine": name},
            )
        k.schedule(self.watchdog.check_period, PRIORITY_WATCHDOG, "watchdog")

    # -- main loop ------------------------------------------------------------

    def run(self, duration: Optional[float] = None) -> SimulationResult:
        """Run for ``duration`` more seconds (default: the trace length)."""
        if duration is None:
            duration = self.trace.duration
        self._advance_ticks(int(round(duration / self.dt)))
        return self.result()

    def step(self) -> TickRecord:
        """Advance the whole cluster by one tick."""
        self._advance_ticks(1)
        return self.records[-1]

    def _advance_ticks(self, ticks: int) -> None:
        """Dispatch events until ``ticks`` more solver ticks have run.

        After each tick, same-timestamp management events (daemon
        wakes, deliveries, that tick's record) are drained too, so a
        paused simulation exposes exactly the state the legacy loop
        left behind after ``step()``.  Draining per tick dispatches the
        exact same event sequence as draining once at the end — the
        queue orders those events before the next tick anyway — and it
        gives the sweep batch runner a clean interleaving point.
        """
        for _ in range(ticks):
            self._run_until_tick()
            self._drain_tick_tail()

    def _run_until_tick(self) -> None:
        """Dispatch events until the next solver tick has fired."""
        target = self._ticks_done + 1
        while self._ticks_done < target:
            self.kernel.run_next()

    def _drain_tick_tail(self) -> None:
        """Dispatch the management events closing out the last tick.

        The head inspection reads the kernel's heap entries directly
        (time and priority ride in the tuple) instead of going through
        :meth:`EventKernel.peek`: this loop runs at least twice per
        tick and the method-call round trip shows up in sweeps.
        """
        horizon = self.solver.time + 1e-9
        kernel = self.kernel
        heap = kernel._heap
        while heap:
            time, priority, _, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if priority >= PRIORITY_FAULTS or time > horizon:
                break
            kernel.run_next()
        self.time = self.solver.time

    # -- event handlers --------------------------------------------------------

    def _ev_tick(self, event: Event) -> None:
        """One solver tick: load balancing, servers, monitord, physics."""
        now = event.time
        dt = self.dt

        # Load balancing.
        offered = self.trace.rate_at(now)
        capacities = {}
        response_times = {}
        active_ps = PowerState.ACTIVE
        for name, ws in self.webservers.items():
            # ws.capacity() inlined on its cached terms: this pair of
            # dict builds runs for every server every tick.
            capacities[name] = (
                ws._capacity_active if ws.state is active_ps else 0.0
            )
            response_times[name] = ws.load.response_time
        if self.cloning is None:
            allocation = self.balancer.allocate(
                offered, capacities, response_times
            )
        else:
            allocation = self.balancer.allocate_cloned(
                offered, capacities, response_times, self.cloning
            )
            self._clone_scales.append(allocation.latency_scale)
            if self._tel_clone_scale is not None:
                self._tel_clone_scale.set(allocation.latency_scale)
                if not allocation.cloned and self.cloning.clones > 1:
                    self._tel_clone_shed.inc()
        self.total_offered += offered * dt
        self.total_dropped += allocation.dropped_rate * dt

        # Servers process their share; balancer stats updated.
        rates = allocation.rates
        balancer_servers = self.balancer.server_map
        draining = PowerState.DRAINING
        off = PowerState.OFF
        for name, ws in self.webservers.items():
            was_draining = ws.state is draining
            # rates covers every registered server (dict.fromkeys in
            # allocate), so plain indexing is safe.
            load = ws.step(rates[name], dt)
            balancer_entry = balancer_servers[name]
            balancer_entry.active_connections = load.connections
            if was_draining and ws.state is off:
                self.balancer.mark_off(name)
                self._set_machine_power(name, on=False)
            if (
                ws.state is active_ps
                and balancer_entry.state is not ServerState.ACTIVE
            ):
                # Finished booting: rejoin the balancer, unrestricted.
                self.balancer.activate(name)
                self.balancer.set_weight(name, self.config.base_weight)
                self.balancer.set_connection_limit(name, None)
                if name in self.tempds:
                    self.tempds[name].restricted = False

        # Monitord feed plus one solver advance (step, or coast when the
        # idle fast-forward has proven the field converged).
        self._solver_tick()

        self.time = self.solver.time
        self._last_offered = offered
        self._last_dropped = allocation.dropped_rate
        self._ticks_done += 1
        self.kernel.schedule(
            self.solver.time, PRIORITY_RECORD, "record", {"time": now}
        )
        self.kernel.schedule(now + dt, PRIORITY_TICK, "tick")

    def _solver_tick(self) -> None:
        if not self.fast_forward:
            self._feed_monitord()
            self.solver.step()
            return
        # One pass replaces _feed_monitord: feed the solver only when a
        # machine's utilization actually moved (set_utilizations is
        # idempotent, so skipping repeats changes nothing), and use the
        # same comparison to detect input quiescence.  _ff_mark_dirty
        # clears _ff_last_utils, so any out-of-band solver mutation
        # forces a full re-feed on the next tick.
        utils_changed = False
        last = self._ff_last_utils
        active = (
            self.injector.monitord_active if self.injector.any_active else None
        )
        feed = self.solver.set_utilizations
        for name, ws in self.webservers.items():
            if active is not None and not active(name):
                continue
            load = ws.load
            pair = (load.cpu_utilization, load.disk_utilization)
            if last.get(name) != pair:
                utils_changed = True
                last[name] = pair
                feed(
                    name,
                    {table1.CPU: pair[0], table1.DISK_PLATTERS: pair[1]},
                )
        if self._ff_dirty or utils_changed:
            self._ff_dirty = False
            self._ff_quiet = 0
            self._ff_coasting = False
            self._ff_next_probe = IDLE_QUIET_TICKS
            self._ff_backoff = 1
        else:
            self._ff_quiet += 1
        if self._ff_coasting:
            # Inputs still quiet and the field already proved converged:
            # hold temperatures, advance time, skip the solve.
            self.solver.coast()
            return
        probe = self._ff_quiet >= self._ff_next_probe
        before = self._ff_snapshot() if probe else None
        self.solver.step()
        if probe:
            if self._ff_delta(before) <= self.idle_epsilon:
                self._ff_coasting = True
            else:
                self._ff_backoff = min(
                    self._ff_backoff * 2, IDLE_PROBE_BACKOFF_MAX
                )
                self._ff_next_probe = self._ff_quiet + self._ff_backoff

    def _feed_monitord(self) -> None:
        # monitord path: utilizations into the Mercury solver.  A stalled
        # or crashed monitord leaves the solver holding that machine's
        # previous utilizations (stale data, as in life).  Machines whose
        # pair matches the last fed values are skipped — set_utilizations
        # is idempotent, and _ff_mark_dirty clears _ff_last_utils on
        # every path that can touch the solver out of band (commands,
        # faults, power changes), forcing a full re-feed.
        last = self._ff_last_utils
        active = (
            self.injector.monitord_active if self.injector.any_active else None
        )
        feed = self.solver.set_utilizations
        for name, ws in self.webservers.items():
            if active is not None and not active(name):
                continue
            load = ws.load
            pair = (load.cpu_utilization, load.disk_utilization)
            if last.get(name) != pair:
                last[name] = pair
                feed(
                    name,
                    {table1.CPU: pair[0], table1.DISK_PLATTERS: pair[1]},
                )

    def _ff_mark_dirty(self) -> None:
        """An input to the thermal model changed: stop any coasting."""
        self._ff_dirty = True
        self._ff_quiet = 0
        self._ff_coasting = False
        self._ff_next_probe = IDLE_QUIET_TICKS
        self._ff_backoff = 1
        # Forget the fed utilizations: the dirtying event may have
        # touched solver state directly, so re-feed everything next tick.
        self._ff_last_utils.clear()

    def _ff_snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            name: dict(self.solver.machine(name).temperatures)
            for name in self.machines
        }

    def _ff_delta(self, before: Dict[str, Dict[str, float]]) -> float:
        worst = 0.0
        for name, old in before.items():
            for node, temp in self.solver.machine(name).temperatures.items():
                delta = abs(temp - old.get(node, temp))
                if delta > worst:
                    worst = delta
        return worst

    def _ev_record(self, event: Event) -> None:
        """Record the tick that just finished (label = its start time)."""
        label = float(event.payload["time"])
        record = self._record(label, self._last_offered, self._last_dropped)
        self.records.append(record)
        if self.telemetry.enabled:
            # The legacy loop stamped tick metrics at the tick's start;
            # rewind the shared clock for the publish so exposition and
            # sample timestamps stay identical.
            clock = self.kernel.clock
            finish = clock.now
            clock.advance(label)
            try:
                self._publish_tick(record)
            finally:
                clock.advance(finish)

    def _ev_faults(self, event: Event) -> None:
        before = len(self.injector.log)
        self.injector.advance_to(event.time)
        if len(self.injector.log) != before:
            self._ff_mark_dirty()
        self.kernel.schedule(event.time + self.dt, PRIORITY_FAULTS, "faults")

    def _ev_command(self, event: Event) -> None:
        self._script.fire(int(event.payload["index"]))
        self._ff_mark_dirty()

    def _ev_sample_gate(self, event: Event) -> None:
        self._sample_next = True
        self.kernel.schedule(
            event.time + self._sample_period, PRIORITY_SAMPLE_GATE,
            "sample_gate",
        )

    def _ev_stats(self, event: Event) -> None:
        self.admd.sample(event.time)
        self.kernel.schedule(
            event.time + self.config.stats_period, PRIORITY_STATS, "stats"
        )

    def _ev_wake(self, event: Event) -> None:
        name = event.payload["machine"]
        now = event.time
        tempd = self.tempds.get(name)
        if (
            tempd is not None
            and self.webservers[name].state is PowerState.ACTIVE
            and self.injector.daemon_up(name, "tempd")
        ):
            tempd.wake(now)
            if self.mode == "event":
                self._schedule_delivery()
        self.kernel.schedule(
            now + self.config.monitor_period, PRIORITY_WAKE, "wake",
            {"machine": name},
        )

    def _ev_deliver(self, event: Event) -> None:
        if self.channel is None:
            return
        self.channel.flush(event.time)
        if self.mode == "legacy":
            self.kernel.schedule(
                event.time + self.dt, PRIORITY_DELIVER, "deliver"
            )
        else:
            self._schedule_delivery()

    def _schedule_delivery(self) -> None:
        due = self.channel.next_due()
        if due is not None:
            self.kernel.schedule(
                max(due, self.kernel.clock.now), PRIORITY_DELIVER, "deliver"
            )

    def _ev_evaluate(self, event: Event) -> None:
        # Reconfigure once per monitor period, after the tempds.
        self.admd.evaluate(event.time)
        self.kernel.schedule(
            event.time + self.config.monitor_period, PRIORITY_EVALUATE,
            "evaluate",
        )

    def _ev_policy(self, event: Event) -> None:
        self.traditional.check(event.time)
        self.kernel.schedule(
            event.time + self.config.monitor_period, PRIORITY_POLICY, "policy"
        )

    def _ev_governor(self, event: Event) -> None:
        name = event.payload["machine"]
        self.governors[name].wake(event.time)
        self.kernel.schedule(
            event.time + self.governors[name].period, PRIORITY_GOVERNOR,
            "governor", {"machine": name},
        )

    def _ev_watchdog(self, event: Event) -> None:
        self.watchdog.check(event.time)
        self.kernel.schedule(
            event.time + self.watchdog.check_period, PRIORITY_WATCHDOG,
            "watchdog",
        )

    def _publish_tick(self, record: TickRecord) -> None:
        """Mirror one tick into the telemetry facade.

        Counters/gauges update every tick; the per-machine temperature
        samples that make up the Figure 11/12 series are emitted to the
        event stream every ``telemetry_sample_period`` seconds.
        """
        self._tel_offered.inc(record.offered_rate * self.dt)
        if record.dropped_rate > 0.0:
            self._tel_dropped.inc(record.dropped_rate * self.dt)
        self._tel_offered_rate.set(record.offered_rate)
        self._tel_dropped_rate.set(record.dropped_rate)
        self._tel_active.set(record.active_servers)
        # The kernel's sample-gate event arms this flag once per
        # telemetry_sample_period; the next record publishes the series.
        if not self._sample_next:
            return
        self._sample_next = False
        # Straight to the event log (the facade's sample() would only
        # repack **attrs on this per-tick path).
        sample = self.telemetry.events.sample
        sample(
            "cluster_dropped_rate", record.dropped_rate, "cluster",
            active_servers=record.active_servers,
        )
        for name, server in record.servers.items():
            sample(
                "server_tick", server.cpu_temperature, "cluster",
                machine=name,
                disk_temperature=server.disk_temperature,
                weight=server.weight,
                connections=server.connections,
                state=server.state,
            )

    def _temperature_readers(self) -> List[Tuple[Dict[str, float], str,
                                                 Dict[str, float], str]]:
        """Per-server (cpu temps dict, node, disk temps dict, node).

        Built once through :meth:`SensorService.true_pair` and then read
        directly every tick: the dicts are the solver's own per-machine
        temperature tables, mutated in place and never rebound (the same
        invariant the sensor service's ``_true_cache`` rests on).
        """
        readers = self._temp_readers
        if readers is None:
            service = self.service
            cache = service._true_cache
            readers = []
            for name in self.webservers:
                service.true_pair(name)  # populates the cache
                readers.append(cache[(name, "cpu")] + cache[(name, "disk")])
            self._temp_readers = readers
        return readers

    def _record(self, now: float, offered: float, dropped: float) -> TickRecord:
        servers: Dict[str, ServerRecord] = {}
        active = 0
        off = PowerState.OFF
        is_active = PowerState.ACTIVE
        state_value = _POWER_STATE_VALUE
        balancer_servers = self.balancer.server_map
        readers = self._temperature_readers()
        for (name, ws), (cpu_temps, cpu_node, disk_temps, disk_node) in zip(
            self.webservers.items(), readers
        ):
            state = ws.state
            if state is is_active:
                active += 1
            balancer_entry = balancer_servers[name]
            load = ws.load
            response_time = load.response_time
            servers[name] = ServerRecord(
                state_value[state],
                0.0 if state is off else load.connections
                / (response_time if response_time > 1e-9 else 1e-9),
                load.cpu_utilization,
                load.disk_utilization,
                load.connections,
                balancer_entry.weight,
                balancer_entry.connection_limit,
                # Records hold the physical ground truth, not what a
                # possibly-faulted sensor claims.
                cpu_temps[cpu_node],
                disk_temps[disk_node],
            )
        return TickRecord(now, offered, dropped, active, servers)

    # -- checkpoint / restore ------------------------------------------------

    #: Checkpoint format version; bumped on incompatible layout changes.
    #: Version 2 added the pending event queue (the kernel refactor).
    CHECKPOINT_VERSION = 2

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the entire simulation as plain JSON-able data.

        Captures everything :meth:`apply_checkpoint` needs to continue
        the run bit-for-bit on a *freshly constructed* simulation built
        with the same configuration: solver state, balancer and web
        server state, every daemon's state, the fault injector
        (including its RNG stream), in-flight datagrams, the
        fiddle-script cursor, the kernel's pending event queue (wakes,
        deliveries, script statements — all cadence lives there), and
        the per-tick records so far.

        Telemetry is deliberately *not* checkpointed: a resumed run
        re-emits metrics from the resume point; sweep workers report
        whole-run registries, so resumed shards are compared on records
        and temperatures (see ``tests/parallel/test_checkpoint.py``).
        """
        script_state = None
        if self._script is not None:
            script_state = {
                "cursor": self._script._next,
                "fiddle_log": list(self._script.fiddle.log),
            }
        channel_state = None
        if self.channel is not None:
            channel_state = self.channel.checkpoint(encode=asdict)
        balancer_state = {
            "total_offered": self.balancer.total_offered,
            "total_dropped": self.balancer.total_dropped,
            "servers": {
                s.name: {
                    "weight": s.weight,
                    "connection_limit": s.connection_limit,
                    "state": s.state.value,
                    "active_connections": s.active_connections,
                }
                for s in self.balancer.servers()
            },
        }
        webserver_state = {
            name: {
                "state": ws.state.value,
                "boot_remaining": ws._boot_remaining,
                "speed_factor": ws.speed_factor,
                "load": asdict(ws.load),
            }
            for name, ws in self.webservers.items()
        }
        tempd_state = {
            name: self._tempd_checkpoint(tempd)
            for name, tempd in self.tempds.items()
        }
        admd_state = self._admd_checkpoint() if self.admd is not None else None
        traditional_state = None
        if self.traditional is not None:
            traditional_state = {
                "elapsed": self.traditional._elapsed,
                "shutdowns": [asdict(s) for s in self.traditional.shutdowns],
                "dead": sorted(self.traditional._dead),
            }
        governor_state = {
            name: {
                "index": g.index,
                "elapsed": g._elapsed,
                "time": g.time,
                "changes": [asdict(c) for c in g.changes],
            }
            for name, g in self.governors.items()
        }
        state: Dict[str, object] = {
            "version": self.CHECKPOINT_VERSION,
            "policy": self.policy,
            "time": self.time,
            "total_offered": self.total_offered,
            "total_dropped": self.total_dropped,
            "ticks_done": self._ticks_done,
            "last_offered": self._last_offered,
            "last_dropped": self._last_dropped,
            "sample_next": self._sample_next,
            "kernel": self.kernel.checkpoint(),
            "fast_forward": {
                "dirty": self._ff_dirty,
                "quiet": self._ff_quiet,
                "coasting": self._ff_coasting,
                "next_probe": self._ff_next_probe,
                "backoff": self._ff_backoff,
                "last_utils": {
                    name: [cpu, disk]
                    for name, (cpu, disk) in self._ff_last_utils.items()
                },
            },
            "solver": self.solver.checkpoint(),
            "injector": self.injector.checkpoint(),
            "watchdog": self.watchdog.checkpoint(),
            "script": script_state,
            "channel": channel_state,
            "balancer": balancer_state,
            "webservers": webserver_state,
            "tempds": tempd_state,
            "admd": admd_state,
            "traditional": traditional_state,
            "governors": governor_state,
            "records": [self._record_to_dict(r) for r in self.records],
        }
        if self.cloning is not None:
            # Key present only when cloning is configured, so classic
            # checkpoints keep their historical layout byte-for-byte.
            state["clone_scales"] = list(self._clone_scales)
        return state

    def apply_checkpoint(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` onto this simulation.

        The simulation must have been constructed with the same
        configuration (policy, machines, trace, script, seeds, engine)
        that produced the checkpoint; this method rewinds/forwards its
        mutable state only.
        """
        version = data.get("version")
        if version != self.CHECKPOINT_VERSION:
            raise ClusterError(
                f"checkpoint version {version!r} does not match "
                f"{self.CHECKPOINT_VERSION}"
            )
        if data["policy"] != self.policy:
            raise ClusterError(
                f"checkpoint policy {data['policy']!r} does not match "
                f"simulation policy {self.policy!r}"
            )
        self.solver.restore(data["solver"])
        self.injector.restore(data["injector"])
        self.watchdog.restore(data["watchdog"])
        if self._script is not None and data["script"] is not None:
            self._script._next = int(data["script"]["cursor"])
            self._script.fiddle.log[:] = list(data["script"]["fiddle_log"])
        if self.channel is not None and data["channel"] is not None:
            self.channel.restore(
                data["channel"], decode=lambda d: TempdMessage(**d)
            )
        balancer_state = data["balancer"]
        self.balancer.total_offered = float(balancer_state["total_offered"])
        self.balancer.total_dropped = float(balancer_state["total_dropped"])
        for name, saved in balancer_state["servers"].items():
            server = self.balancer.server(name)
            server.weight = float(saved["weight"])
            server.connection_limit = (
                None if saved["connection_limit"] is None
                else float(saved["connection_limit"])
            )
            server.state = ServerState(saved["state"])
            server.active_connections = float(saved["active_connections"])
        self.balancer.invalidate_caches()
        from .webserver import ServerLoad

        for name, saved in data["webservers"].items():
            ws = self.webservers[name]
            ws.state = PowerState(saved["state"])
            ws._boot_remaining = float(saved["boot_remaining"])
            ws.speed_factor = float(saved["speed_factor"])
            ws._refresh_speed_terms()
            ws.load = ServerLoad(**saved["load"])
        for name, saved in data["tempds"].items():
            if name in self.tempds:
                self._tempd_restore(self.tempds[name], saved)
        if self.admd is not None and data["admd"] is not None:
            self._admd_restore(data["admd"])
        if self.traditional is not None and data["traditional"] is not None:
            saved = data["traditional"]
            self.traditional._elapsed = float(saved["elapsed"])
            from ..freon.traditional import Shutdown

            self.traditional.shutdowns = [
                Shutdown(**s) for s in saved["shutdowns"]
            ]
            self.traditional._dead = set(saved["dead"])
        for name, saved in data["governors"].items():
            governor = self.governors.get(name)
            if governor is None:
                continue
            # Actuation effects (power scales, speed factors) are part
            # of the solver/webserver state restored above; only the
            # governor's own clock and history are rebuilt here.
            governor.index = int(saved["index"])
            governor._elapsed = float(saved["elapsed"])
            governor.time = float(saved["time"])
            from ..freon.local import PStateChange

            governor.changes = [PStateChange(**c) for c in saved["changes"]]
        self.time = float(data["time"])
        self.total_offered = float(data["total_offered"])
        self.total_dropped = float(data["total_dropped"])
        self._ticks_done = int(data["ticks_done"])
        self._last_offered = float(data["last_offered"])
        self._last_dropped = float(data["last_dropped"])
        self._sample_next = bool(data["sample_next"])
        ff = data["fast_forward"]
        self._ff_dirty = bool(ff["dirty"])
        self._ff_quiet = int(ff["quiet"])
        self._ff_coasting = bool(ff["coasting"])
        self._ff_next_probe = int(ff["next_probe"])
        self._ff_backoff = int(ff["backoff"])
        self._ff_last_utils = {
            name: (float(pair[0]), float(pair[1]))
            for name, pair in ff["last_utils"].items()
        }
        self.kernel.restore(data["kernel"])
        self.records = [self._record_from_dict(r) for r in data["records"]]
        self._clone_scales = [
            float(s) for s in data.get("clone_scales", [])
        ]

    @staticmethod
    def _tempd_checkpoint(tempd: Tempd) -> Dict[str, object]:
        last_good = tempd._last_good
        return {
            "restricted": tempd.restricted,
            "hot_components": list(tempd.hot_components),
            "elapsed": tempd._elapsed,
            "last_good": (
                None if last_good is None
                else [last_good[0], dict(last_good[1])]
            ),
            "last_output": tempd._last_output,
            "read_failures": tempd.read_failures,
            "stale_wakes": tempd.stale_wakes,
            "conservative_wakes": tempd.conservative_wakes,
            "messages_sent": tempd.messages_sent,
            "controllers": {
                component: controller._last_temperature
                for component, controller
                in tempd._controllers._controllers.items()
            },
        }

    @staticmethod
    def _tempd_restore(tempd: Tempd, saved: Mapping[str, object]) -> None:
        tempd.restricted = bool(saved["restricted"])
        tempd.hot_components = list(saved["hot_components"])
        tempd._elapsed = float(saved["elapsed"])
        last_good = saved["last_good"]
        tempd._last_good = (
            None if last_good is None
            else (float(last_good[0]), dict(last_good[1]))
        )
        tempd._last_output = (
            None if saved["last_output"] is None
            else float(saved["last_output"])
        )
        tempd.read_failures = int(saved["read_failures"])
        tempd.stale_wakes = int(saved["stale_wakes"])
        tempd.conservative_wakes = int(saved["conservative_wakes"])
        tempd.messages_sent = int(saved["messages_sent"])
        for component, last in saved["controllers"].items():
            tempd._controllers.controller(component)._last_temperature = last

    def _admd_checkpoint(self) -> Dict[str, object]:
        admd = self.admd
        assert admd is not None
        state: Dict[str, object] = {
            "stats_elapsed": admd._stats_elapsed,
            "samples": {
                name: [[t, c] for t, c in window]
                for name, window in admd._samples.items()
            },
            "adjustments": [list(a) for a in admd.adjustments],
            "releases": [list(r) for r in admd.releases],
            "redlined": [list(r) for r in admd.redlined],
        }
        if isinstance(admd, AdmdEC):
            state["ec"] = {
                "utilizations": {
                    name: dict(u) for name, u in admd._utilizations.items()
                },
                "previous_average": (
                    None if admd._previous_average is None
                    else dict(admd._previous_average)
                ),
                "hot": dict(admd._hot),
                "events": [asdict(e) for e in admd.events],
                "emergencies": dict(admd.regions._emergencies),
                "rr_index": admd.regions._rr_index,
            }
        return state

    def _admd_restore(self, saved: Mapping[str, object]) -> None:
        from collections import deque

        admd = self.admd
        assert admd is not None
        admd._stats_elapsed = float(saved["stats_elapsed"])
        for name, window in saved["samples"].items():
            admd._samples[name] = deque(
                (float(t), float(c)) for t, c in window
            )
        admd.adjustments = [
            (float(t), str(m), float(o)) for t, m, o in saved["adjustments"]
        ]
        admd.releases = [(float(t), str(m)) for t, m in saved["releases"]]
        admd.redlined = [(float(t), str(m)) for t, m in saved["redlined"]]
        if isinstance(admd, AdmdEC) and "ec" in saved:
            from ..freon.ec import EcEvent

            ec = saved["ec"]
            admd._utilizations = {
                name: dict(u) for name, u in ec["utilizations"].items()
            }
            admd._previous_average = (
                None if ec["previous_average"] is None
                else dict(ec["previous_average"])
            )
            admd._hot = {name: bool(v) for name, v in ec["hot"].items()}
            admd.events = [EcEvent(**e) for e in ec["events"]]
            admd.regions._emergencies = {
                region: int(n) for region, n in ec["emergencies"].items()
            }
            admd.regions._rr_index = int(ec["rr_index"])

    @staticmethod
    def _record_to_dict(record: TickRecord) -> Dict[str, object]:
        # Hot on the sweep path (every record of every run crosses it);
        # hand-rolled instead of dataclasses.asdict, whose recursive
        # deep-copy costs ~10x for these flat scalar records.
        return {
            "time": record.time,
            "offered_rate": record.offered_rate,
            "dropped_rate": record.dropped_rate,
            "active_servers": record.active_servers,
            "servers": {
                # ServerRecord is a NamedTuple whose field order is the
                # wire order, so one C-level dict(zip(...)) per server
                # replaces nine attribute reads.
                name: dict(zip(_SERVER_RECORD_FIELDS, s))
                for name, s in record.servers.items()
            },
        }

    @staticmethod
    def _record_from_dict(data: Mapping[str, object]) -> TickRecord:
        return TickRecord(
            time=float(data["time"]),
            offered_rate=float(data["offered_rate"]),
            dropped_rate=float(data["dropped_rate"]),
            active_servers=int(data["active_servers"]),
            servers={
                name: ServerRecord(**server)
                for name, server in data["servers"].items()
            },
        )

    def result(self) -> SimulationResult:
        """Bundle the run's records and policy logs."""
        adjustments = self.admd.adjustments if self.admd else []
        releases = self.admd.releases if self.admd else []
        redlined = self.admd.redlined if self.admd else []
        ec_events = self.admd.events if isinstance(self.admd, AdmdEC) else []
        shutdowns = self.traditional.shutdowns if self.traditional else []
        pstate_changes = [
            change
            for governor in self.governors.values()
            for change in governor.changes
        ]
        pstate_changes.sort(key=lambda c: c.time)
        drop_fraction = (
            self.total_dropped / self.total_offered if self.total_offered else 0.0
        )
        datagram_stats = {}
        if self.channel is not None:
            datagram_stats = {
                "sent": self.channel.sent,
                "delivered": self.channel.delivered,
                "dropped": self.channel.dropped,
                "duplicated": self.channel.duplicated,
                "delayed": self.channel.delayed,
            }
        return SimulationResult(
            records=list(self.records),
            drop_fraction=drop_fraction,
            total_offered=self.total_offered,
            total_dropped=self.total_dropped,
            adjustments=list(adjustments),
            releases=list(releases),
            redlined=list(redlined),
            ec_events=list(ec_events),
            shutdowns=list(shutdowns),
            pstate_changes=pstate_changes,
            fiddle_log=list(self._script.fiddle.log) if self._script else [],
            fault_log=list(self.injector.log),
            restarts=list(self.watchdog.events),
            datagram_stats=datagram_stats,
            clone_latency_scales=list(self._clone_scales),
        )


def emergency_script(
    time: float = table1.EMERGENCY_TIME,
    inlet_m1: float = table1.EMERGENCY_INLET_M1,
    inlet_m3: float = table1.EMERGENCY_INLET_M3,
) -> str:
    """The section 5 emergency: fiddle raises two machines' inlets.

    "At 480 seconds, fiddle raised the inlet temperature of machine 1 to
    38.6 C and machine 3 to 35.6 C.  (The emergencies are set to last the
    entire experiment.)"
    """
    return (
        f"#!/bin/bash\n"
        f"sleep {time:g}\n"
        f"fiddle machine1 temperature inlet {inlet_m1:g}\n"
        f"fiddle machine3 temperature inlet {inlet_m3:g}\n"
    )


def chaos_script(
    loss: float = 0.05,
    stuck_machine: str = "machine2",
    stuck_value: float = 45.0,
    crash_machine: str = "machine1",
    crash_time: float = 1060.0,
) -> str:
    """The section 5 emergency plus an infrastructure-failure storm.

    On top of the Figure 11 thermal emergencies: ``loss`` datagram loss
    on the tempd -> admd path for the whole run, one disk sensor stuck
    at a plausible-but-frozen value, and one tempd crash while its
    server is hot and restricted (left for the watchdog to restart).
    This is the scenario the chaos benchmark and ``repro chaos`` replay.
    """
    emergency = emergency_script()
    tail_sleep = crash_time - table1.EMERGENCY_TIME
    return (
        f"fault net loss {loss:g}\n"
        + emergency
        + f"fault {stuck_machine} sensor stuck disk {stuck_value:g}\n"
        + f"sleep {tail_sleep:g}\n"
        + f"fault {crash_machine} daemon crash tempd\n"
    )
