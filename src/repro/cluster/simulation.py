"""The full Freon experiment harness (paper section 5).

Wires together every piece of the reproduction:

* four web servers behind an LVS-style balancer, loaded by a synthetic
  diurnal trace;
* Mercury (one solver emulating all machines through the Figure 1(c)
  cluster graph) fed by the servers' component utilizations — exactly the
  deployment of section 5: "Mercury was deployed on the server nodes and
  its solver ran on yet another machine";
* fiddle events raising machine inlet temperatures mid-run;
* a pluggable management policy: base Freon, Freon-EC, the traditional
  red-line shutdown, or none.

The simulation advances in one-second ticks on a simulated clock; tempd
and admd run at their paper periods (60 s and 5 s).  Every tick is
recorded, so experiments can regenerate the paper's Figure 11/12 series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import table1
from ..config.layouts import validation_cluster
from ..core.solver import Solver
from ..daemons.admd import Admd
from ..daemons.tempd import Tempd, TempdMessage
from ..errors import ClusterError
from ..faults.injector import (
    DaemonWatchdog,
    FaultInjector,
    LossyChannel,
    RestartEvent,
)
from ..fiddle.script import ScriptRunner, parse_script
from ..freon.ec import AdmdEC
from ..freon.policy import FreonConfig
from ..freon.regions import RegionMap, two_region_split
from ..freon.traditional import TraditionalPolicy
from ..sensors.server import SensorService
from ..telemetry import ensure as _ensure_telemetry
from .lvs import LoadBalancer, ServerState
from .tracegen import RequestTrace, diurnal_trace
from .webserver import PowerState, WebServer

#: Calibrated CPU-to-air conductance used for the Freon studies.  The
#: paper drives its section 5 experiments with *calibrated* Mercury
#: inputs; our section 3.1 calibration lands near 0.9 W/K for this edge,
#: and within that uncertainty we pick the value that reproduces the
#: paper's operating regime (see EXPERIMENTS.md): a fully loaded CPU
#: under normal cooling sits at ~63 C — below the 67 C threshold — while
#: a 70%-loaded CPU under either section 5 emergency crosses it.
FREON_K_OVERRIDES: Dict[Tuple[str, str], float] = {
    ("CPU", "CPU Air"): 0.80,
}

#: Supported management policies.  "local-dvfs" is the section 4.3
#: comparison point: each CPU manages its own temperature by stepping
#: down P-states, with no cluster-level coordination.
POLICIES = ("none", "freon", "freon-ec", "traditional", "local-dvfs")


@dataclass
class ServerRecord:
    """One server's observables at one tick."""

    state: str
    rate: float
    cpu_utilization: float
    disk_utilization: float
    connections: float
    weight: float
    connection_limit: Optional[float]
    cpu_temperature: float
    disk_temperature: float


@dataclass
class TickRecord:
    """One tick of the whole cluster."""

    time: float
    offered_rate: float
    dropped_rate: float
    active_servers: int
    servers: Dict[str, ServerRecord] = field(default_factory=dict)


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    records: List[TickRecord]
    drop_fraction: float
    total_offered: float
    total_dropped: float
    adjustments: List[Tuple[float, str, float]]
    releases: List[Tuple[float, str]]
    redlined: List[Tuple[float, str]]
    ec_events: List
    shutdowns: List
    pstate_changes: List
    fiddle_log: List[str]
    #: Fault-injection audit log: (time, event) entries.
    fault_log: List[Tuple[float, str]] = field(default_factory=list)
    #: Watchdog daemon restarts.
    restarts: List[RestartEvent] = field(default_factory=list)
    #: tempd -> admd datagram stats: sent/delivered/dropped/duplicated/delayed.
    datagram_stats: Dict[str, int] = field(default_factory=dict)

    def times(self) -> List[float]:
        """Tick timestamps."""
        return [r.time for r in self.records]

    def series(self, machine: str, fieldname: str) -> List[float]:
        """Per-tick series of one server field (e.g. "cpu_temperature")."""
        return [getattr(r.servers[machine], fieldname) for r in self.records]

    def active_series(self) -> List[int]:
        """Active-server count over time (the thick line of Figure 12)."""
        return [r.active_servers for r in self.records]

    def max_temperature(self, machine: str, component: str = "cpu_temperature",
                        after: float = 0.0) -> float:
        """Peak temperature of one machine after a given time."""
        return max(
            getattr(r.servers[machine], component)
            for r in self.records
            if r.time >= after
        )


class ClusterSimulation:
    """One configured, steppable Freon experiment."""

    def __init__(
        self,
        policy: str = "freon",
        machines: Sequence[str] = table1.CLUSTER_MACHINES,
        trace: Optional[RequestTrace] = None,
        fiddle_script: Optional[str] = None,
        freon_config: Optional[FreonConfig] = None,
        k_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
        regions: Optional[RegionMap] = None,
        boot_time: float = 60.0,
        dt: float = 1.0,
        injector: Optional[FaultInjector] = None,
        fault_seed: int = 0,
        watchdog_restart_delay: float = 10.0,
        engine: str = "python",
        telemetry=None,
        telemetry_sample_period: float = 5.0,
    ) -> None:
        if policy not in POLICIES:
            raise ClusterError(f"unknown policy {policy!r}; pick from {POLICIES}")
        self.policy = policy
        self.dt = dt
        self.machines = list(machines)
        self.telemetry = _ensure_telemetry(telemetry)
        if k_overrides is None:
            k_overrides = FREON_K_OVERRIDES
        cluster_layout = validation_cluster(self.machines, k_overrides=k_overrides)
        self.solver = Solver(
            list(cluster_layout.machines.values()),
            cluster=cluster_layout,
            dt=dt,
            record=False,
            engine=engine,
            telemetry=self.telemetry,
        )
        #: Always present; inert until a fault is scheduled or injected.
        self.injector = injector or FaultInjector(seed=fault_seed)
        if self.telemetry.enabled:
            # The injector's own log lists stay authoritative; telemetry
            # mirrors them (and LossyChannel/watchdog read it lazily).
            self.injector.telemetry = self.telemetry
        self.service = SensorService(
            self.solver, aliases=table1.sensor_map(), injector=self.injector,
            telemetry=self.telemetry,
        )
        self.balancer = LoadBalancer(self.machines)
        self.webservers: Dict[str, WebServer] = {
            name: WebServer(name, boot_time=boot_time) for name in self.machines
        }
        self.trace = trace if trace is not None else diurnal_trace(
            servers=len(self.machines)
        )
        self.config = freon_config or FreonConfig()
        self._script: Optional[ScriptRunner] = None
        if fiddle_script:
            self._script = ScriptRunner(
                self.solver, parse_script(fiddle_script),
                injector=self.injector, telemetry=self.telemetry,
            )
        self.channel: Optional[LossyChannel] = None
        self._build_policy(regions)
        self.watchdog = DaemonWatchdog(
            self.injector,
            restart=self._restart_daemon,
            restart_delay=watchdog_restart_delay,
        )
        self.records: List[TickRecord] = []
        self.total_offered = 0.0
        self.total_dropped = 0.0
        self.time = 0.0
        self._sample_period = max(telemetry_sample_period, dt)
        self._sample_elapsed = self._sample_period  # sample the first tick
        if self.telemetry.enabled:
            self._tel_offered = self.telemetry.counter(
                "cluster_requests_offered_total",
                help="Requests offered to the balancer (rate x dt).",
            )
            self._tel_dropped = self.telemetry.counter(
                "cluster_requests_dropped_total",
                help="Requests dropped for lack of capacity (rate x dt).",
            )
            self._tel_offered_rate = self.telemetry.gauge(
                "cluster_offered_rate",
                help="Offered request rate this tick, requests/second.",
            )
            self._tel_dropped_rate = self.telemetry.gauge(
                "cluster_dropped_rate",
                help="Dropped request rate this tick, requests/second.",
            )
            self._tel_active = self.telemetry.gauge(
                "cluster_active_servers",
                help="Servers currently accepting load (Figure 12's thick line).",
            )

    # -- policy wiring -----------------------------------------------------

    def _build_policy(self, regions: Optional[RegionMap]) -> None:
        self.admd: Optional[Admd] = None
        self.traditional: Optional[TraditionalPolicy] = None
        self.tempds: Dict[str, Tempd] = {}
        self.governors: Dict[str, "DvfsGovernor"] = {}
        if self.policy == "none":
            return
        if self.policy == "local-dvfs":
            from ..freon.local import DvfsGovernor

            for name in self.machines:
                self.governors[name] = DvfsGovernor(
                    read_temperature=self._cpu_reader(name),
                    apply=self._dvfs_applier(name),
                    high=self.config.high("cpu"),
                    low=self.config.low("cpu"),
                    machine=name,
                    telemetry=self.telemetry,
                )
            return
        if self.policy == "traditional":
            self.traditional = TraditionalPolicy(
                readers={
                    name: self._temperature_reader(name) for name in self.machines
                },
                turn_off=self.request_off,
                config=self.config,
                is_on=lambda name: self.webservers[name].is_on,
            )
            return
        if self.policy == "freon":
            self.admd = Admd(
                self.balancer, config=self.config, turn_off=self.request_off,
                telemetry=self.telemetry,
            )
            ec_mode = False
        else:  # freon-ec
            region_map = regions or two_region_split(self.machines)
            self.admd = AdmdEC(
                self.balancer,
                regions=region_map,
                power=self,
                config=self.config,
                telemetry=self.telemetry,
            )
            ec_mode = True
        # tempd -> admd datagrams traverse the (fault-injectable) channel.
        self.channel = LossyChannel(self.admd.deliver, self.injector)
        for name in self.machines:
            self.tempds[name] = Tempd(
                machine=name,
                temperature_reader=self._temperature_reader(name),
                send=self.channel,
                config=self.config,
                utilization_reader=self._utilization_reader(name) if ec_mode else None,
                telemetry=self.telemetry,
            )

    def _cpu_reader(self, name: str):
        def reader() -> float:
            return self.service.read_temperature(name, "cpu")

        return reader

    def _dvfs_applier(self, name: str):
        def apply(frequency_ratio: float, power_ratio: float) -> None:
            self.webservers[name].set_speed_factor(frequency_ratio)
            self.solver.machine(name).set_power_scale(
                table1.CPU, power_ratio
            )

        return apply

    def _temperature_reader(self, name: str):
        def reader() -> Dict[str, float]:
            return {
                "cpu": self.service.read_temperature(name, "cpu"),
                "disk": self.service.read_temperature(name, "disk"),
            }

        return reader

    def _utilization_reader(self, name: str):
        def reader() -> Dict[str, float]:
            load = self.webservers[name].load
            return {"cpu": load.cpu_utilization, "disk": load.disk_utilization}

        return reader

    # -- PowerController interface (used by Freon-EC) -----------------------

    def off_servers(self) -> List[str]:
        """Machines currently powered off."""
        return [
            name for name, ws in self.webservers.items()
            if ws.state is PowerState.OFF
        ]

    def active_servers(self) -> List[str]:
        """Machines currently accepting load."""
        return [
            name for name, ws in self.webservers.items()
            if ws.state is PowerState.ACTIVE
        ]

    def request_on(self, name: str) -> None:
        """Boot a machine; it joins the balancer once booted."""
        server = self.webservers[name]
        if server.state is not PowerState.OFF:
            return
        server.power_on()
        self._set_machine_power(name, on=True)

    def request_off(self, name: str) -> None:
        """Quiesce a machine in LVS and drain it; powers off when empty."""
        server = self.webservers[name]
        if server.state is not PowerState.ACTIVE:
            return
        self.balancer.quiesce(name)
        server.begin_drain()

    def _restart_daemon(self, machine: str, daemon: str) -> None:
        """Watchdog hook: rebuild a crashed daemon's in-memory state.

        A restarted tempd gets a fresh controller bank (derivative state
        does not survive a crash) but keeps knowledge of whether admd
        holds restrictions for its server — in a real deployment the
        supervisor hands that over from admd on reconnect.
        """
        if daemon != "tempd" or machine not in self.tempds:
            return  # monitord has no in-memory state to rebuild here
        old = self.tempds[machine]
        replacement = Tempd(
            machine=machine,
            temperature_reader=self._temperature_reader(machine),
            send=self.channel,
            config=self.config,
            utilization_reader=old._read_utilizations,
            phase=self.time % self.config.monitor_period,
            telemetry=self.telemetry,
        )
        replacement.restricted = old.restricted
        self.tempds[machine] = replacement

    def _set_machine_power(self, name: str, on: bool) -> None:
        factor = 1.0 if on else 0.0
        state = self.solver.machine(name)
        for component in state.layout.components:
            state.set_power_scale(component, factor)

    # -- main loop ------------------------------------------------------------

    def run(self, duration: Optional[float] = None) -> SimulationResult:
        """Run for ``duration`` seconds (default: the trace length)."""
        if duration is None:
            duration = self.trace.duration
        ticks = int(round(duration / self.dt))
        for _ in range(ticks):
            self.step()
        return self.result()

    def step(self) -> TickRecord:
        """Advance the whole cluster by one tick."""
        now = self.time
        dt = self.dt
        self.telemetry.advance(now)

        # 1. fault clock, then fiddle events (thermal emergencies and
        #    fault statements both fire here).
        self.injector.advance_to(now)
        if self._script is not None:
            self._script.advance_to(now)

        # 2. load balancing.
        offered = self.trace.rate_at(now)
        capacities = {
            name: ws.capacity() for name, ws in self.webservers.items()
        }
        response_times = {
            name: ws.load.response_time for name, ws in self.webservers.items()
        }
        allocation = self.balancer.allocate(offered, capacities, response_times)
        self.total_offered += offered * dt
        self.total_dropped += allocation.dropped_rate * dt

        # 3. servers process their share; balancer stats updated.
        for name, ws in self.webservers.items():
            was_draining = ws.state is PowerState.DRAINING
            load = ws.step(allocation.rates.get(name, 0.0), dt)
            self.balancer.server(name).active_connections = load.connections
            if was_draining and ws.state is PowerState.OFF:
                self.balancer.mark_off(name)
                self._set_machine_power(name, on=False)
            if (
                ws.state is PowerState.ACTIVE
                and self.balancer.server(name).state is not ServerState.ACTIVE
            ):
                # Finished booting: rejoin the balancer, unrestricted.
                self.balancer.activate(name)
                self.balancer.set_weight(name, self.config.base_weight)
                self.balancer.set_connection_limit(name, None)
                if name in self.tempds:
                    self.tempds[name].restricted = False

        # 4. monitord path: utilizations into the Mercury solver.  A
        #    stalled or crashed monitord leaves the solver holding that
        #    machine's previous utilizations (stale data, as in life).
        for name, ws in self.webservers.items():
            if not self.injector.monitord_active(name):
                continue
            self.solver.set_utilizations(
                name,
                {
                    table1.CPU: ws.load.cpu_utilization,
                    table1.DISK_PLATTERS: ws.load.disk_utilization,
                },
            )

        # 5. temperatures advance.
        self.solver.step()
        self.time = self.solver.time

        # 6. management daemons.
        if self.admd is not None:
            self.admd.tick(dt, self.time)
            for name, tempd in self.tempds.items():
                if (
                    self.webservers[name].state is PowerState.ACTIVE
                    and self.injector.daemon_up(name, "tempd")
                ):
                    tempd.tick(dt, self.time)
            if self.channel is not None:
                self.channel.flush(self.time)
            if isinstance(self.admd, AdmdEC):
                # Reconfigure once per monitor period, after the tempds.
                if int(round(self.time / dt)) % int(
                    round(self.config.monitor_period / dt)
                ) == 0:
                    self.admd.evaluate(self.time)
        if self.traditional is not None:
            self.traditional.tick(dt, self.time)
        for governor in self.governors.values():
            governor.tick(dt)
        self.watchdog.tick(dt, self.time)

        # 7. record.
        record = self._record(now, offered, allocation.dropped_rate)
        self.records.append(record)
        if self.telemetry.enabled:
            self._publish_tick(record)
        return record

    def _publish_tick(self, record: TickRecord) -> None:
        """Mirror one tick into the telemetry facade.

        Counters/gauges update every tick; the per-machine temperature
        samples that make up the Figure 11/12 series are emitted to the
        event stream every ``telemetry_sample_period`` seconds.
        """
        self._tel_offered.inc(record.offered_rate * self.dt)
        if record.dropped_rate > 0.0:
            self._tel_dropped.inc(record.dropped_rate * self.dt)
        self._tel_offered_rate.set(record.offered_rate)
        self._tel_dropped_rate.set(record.dropped_rate)
        self._tel_active.set(record.active_servers)
        self._sample_elapsed += self.dt
        if self._sample_elapsed + 1e-9 < self._sample_period:
            return
        self._sample_elapsed = 0.0
        self.telemetry.sample(
            "cluster_dropped_rate", record.dropped_rate, "cluster",
            active_servers=record.active_servers,
        )
        for name, server in record.servers.items():
            self.telemetry.sample(
                "server_tick", server.cpu_temperature, "cluster",
                machine=name,
                disk_temperature=server.disk_temperature,
                weight=server.weight,
                connections=server.connections,
                state=server.state,
            )

    def _record(self, now: float, offered: float, dropped: float) -> TickRecord:
        servers: Dict[str, ServerRecord] = {}
        for name, ws in self.webservers.items():
            balancer_entry = self.balancer.server(name)
            servers[name] = ServerRecord(
                state=ws.state.value,
                rate=0.0 if not ws.is_on else ws.load.connections
                / max(ws.load.response_time, 1e-9),
                cpu_utilization=ws.load.cpu_utilization,
                disk_utilization=ws.load.disk_utilization,
                connections=ws.load.connections,
                weight=balancer_entry.weight,
                connection_limit=balancer_entry.connection_limit,
                # Records hold the physical ground truth, not what a
                # possibly-faulted sensor claims.
                cpu_temperature=self.service.true_temperature(name, "cpu"),
                disk_temperature=self.service.true_temperature(name, "disk"),
            )
        return TickRecord(
            time=now,
            offered_rate=offered,
            dropped_rate=dropped,
            active_servers=len(self.active_servers()),
            servers=servers,
        )

    def result(self) -> SimulationResult:
        """Bundle the run's records and policy logs."""
        adjustments = self.admd.adjustments if self.admd else []
        releases = self.admd.releases if self.admd else []
        redlined = self.admd.redlined if self.admd else []
        ec_events = self.admd.events if isinstance(self.admd, AdmdEC) else []
        shutdowns = self.traditional.shutdowns if self.traditional else []
        pstate_changes = [
            change
            for governor in self.governors.values()
            for change in governor.changes
        ]
        pstate_changes.sort(key=lambda c: c.time)
        drop_fraction = (
            self.total_dropped / self.total_offered if self.total_offered else 0.0
        )
        datagram_stats = {}
        if self.channel is not None:
            datagram_stats = {
                "sent": self.channel.sent,
                "delivered": self.channel.delivered,
                "dropped": self.channel.dropped,
                "duplicated": self.channel.duplicated,
                "delayed": self.channel.delayed,
            }
        return SimulationResult(
            records=list(self.records),
            drop_fraction=drop_fraction,
            total_offered=self.total_offered,
            total_dropped=self.total_dropped,
            adjustments=list(adjustments),
            releases=list(releases),
            redlined=list(redlined),
            ec_events=list(ec_events),
            shutdowns=list(shutdowns),
            pstate_changes=pstate_changes,
            fiddle_log=list(self._script.fiddle.log) if self._script else [],
            fault_log=list(self.injector.log),
            restarts=list(self.watchdog.events),
            datagram_stats=datagram_stats,
        )


def emergency_script(
    time: float = table1.EMERGENCY_TIME,
    inlet_m1: float = table1.EMERGENCY_INLET_M1,
    inlet_m3: float = table1.EMERGENCY_INLET_M3,
) -> str:
    """The section 5 emergency: fiddle raises two machines' inlets.

    "At 480 seconds, fiddle raised the inlet temperature of machine 1 to
    38.6 C and machine 3 to 35.6 C.  (The emergencies are set to last the
    entire experiment.)"
    """
    return (
        f"#!/bin/bash\n"
        f"sleep {time:g}\n"
        f"fiddle machine1 temperature inlet {inlet_m1:g}\n"
        f"fiddle machine3 temperature inlet {inlet_m3:g}\n"
    )


def chaos_script(
    loss: float = 0.05,
    stuck_machine: str = "machine2",
    stuck_value: float = 45.0,
    crash_machine: str = "machine1",
    crash_time: float = 1060.0,
) -> str:
    """The section 5 emergency plus an infrastructure-failure storm.

    On top of the Figure 11 thermal emergencies: ``loss`` datagram loss
    on the tempd -> admd path for the whole run, one disk sensor stuck
    at a plausible-but-frozen value, and one tempd crash while its
    server is hot and restricted (left for the watchdog to restart).
    This is the scenario the chaos benchmark and ``repro chaos`` replay.
    """
    emergency = emergency_script()
    tail_sleep = crash_time - table1.EMERGENCY_TIME
    return (
        f"fault net loss {loss:g}\n"
        + emergency
        + f"fault {stuck_machine} sensor stuck disk {stuck_value:g}\n"
        + f"sleep {tail_sleep:g}\n"
        + f"fault {crash_machine} daemon crash tempd\n"
    )
