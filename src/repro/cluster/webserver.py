"""A queueing model of one Apache-style web server (paper section 5).

Freon observes servers through component utilizations and temperatures,
so the server model's job is to map an assigned request rate to CPU and
disk utilization, concurrency, and drops — not to speak HTTP.

The workload mix follows the paper's synthetic trace: 30% of requests
are dynamic (a CGI script computing for 25 ms), the rest static files
(a little CPU, mostly disk).  Per tick, for assigned rate ``lambda``:

* ``cpu_util = lambda * E[cpu demand]``, ``disk_util = lambda *
  E[disk demand]`` (clamped at 1 — beyond that the server is saturated
  and the balancer's capacity ceiling prevents the excess from arriving);
* mean response time uses the M/M/1-style inflation ``T = S / (1 - rho)``
  on the bottleneck utilization, bounded to keep the fluid model sane;
* concurrency follows Little's law, ``L = lambda * T``.

Servers also carry the power state machine Freon-EC drives: booting
(CPU pegged while the OS comes up), active, draining, off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ServerStateError

#: Response-time inflation is clamped at this factor (a loaded-but-alive
#: server, not an infinite queue).
_MAX_INFLATION = 10.0
#: Its reciprocal, precomputed once (same bits as 1.0 / _MAX_INFLATION
#: evaluated per tick, minus the per-tick division).
_INV_MAX_INFLATION = 1.0 / _MAX_INFLATION


@dataclass(frozen=True)
class RequestMix:
    """Average per-request service demands (seconds) for a traffic mix."""

    dynamic_fraction: float = 0.30
    dynamic_cpu: float = 0.025   # the paper's 25 ms CGI compute
    static_cpu: float = 0.002
    static_disk: float = 0.008
    dynamic_disk: float = 0.001  # CGI reply is small

    def __post_init__(self) -> None:
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic fraction must be in [0, 1]")

    @property
    def cpu_demand(self) -> float:
        """Mean CPU seconds per request."""
        return (
            self.dynamic_fraction * self.dynamic_cpu
            + (1.0 - self.dynamic_fraction) * self.static_cpu
        )

    @property
    def disk_demand(self) -> float:
        """Mean disk seconds per request."""
        return (
            self.dynamic_fraction * self.dynamic_disk
            + (1.0 - self.dynamic_fraction) * self.static_disk
        )

    @property
    def base_response_time(self) -> float:
        """Unloaded mean response time (CPU and disk in series)."""
        return self.cpu_demand + self.disk_demand

    def capacity(self) -> float:
        """Maximum sustainable request rate (req/s) of one server."""
        bottleneck = max(self.cpu_demand, self.disk_demand)
        return 1.0 / bottleneck if bottleneck > 0.0 else float("inf")


class PowerState(enum.Enum):
    """Freon-EC-visible lifecycle of a server machine."""

    OFF = "off"
    BOOTING = "booting"
    ACTIVE = "active"
    DRAINING = "draining"


@dataclass(slots=True)
class ServerLoad:
    """One tick's observable state of a web server."""

    cpu_utilization: float
    disk_utilization: float
    response_time: float
    connections: float


class WebServer:
    """The load/utilization model of one server machine."""

    def __init__(
        self,
        name: str,
        mix: Optional[RequestMix] = None,
        boot_time: float = 60.0,
        start_on: bool = True,
    ) -> None:
        self.name = name
        self.mix = mix or RequestMix()
        self.boot_time = boot_time
        self.state = PowerState.ACTIVE if start_on else PowerState.OFF
        self._boot_remaining = 0.0
        #: CPU speed relative to nominal (DVFS / clock throttling).  A
        #: slower clock stretches per-request CPU time, raising the busy
        #: fraction at a given rate and shrinking the capacity ceiling —
        #: the throughput cost of local throttling (section 4.3).
        self.speed_factor = 1.0
        #: The mix's demands are frozen at construction; cache them to
        #: keep the per-tick model off the property recomputation.
        self._cpu_demand = self.mix.cpu_demand
        self._disk_demand = self.mix.disk_demand
        self._base_response_time = self.mix.base_response_time
        #: Speed-dependent terms, recomputed only when the speed factor
        #: changes — the exact same expressions the per-tick model used
        #: to evaluate, so the cached values are bitwise identical.
        self._disk_bound = (
            1.0 / self._disk_demand if self._disk_demand > 0.0
            else float("inf")
        )
        self._refresh_speed_terms()
        self.load = ServerLoad(0.0, 0.0, self._base_response_time, 0.0)

    def _refresh_speed_terms(self) -> None:
        self._cpu_bound = self.speed_factor / self._cpu_demand
        self._base_loaded = (
            self._cpu_demand / self.speed_factor + self._disk_demand
        )
        cpu_bound = self._cpu_bound
        disk_bound = self._disk_bound
        #: :meth:`capacity` while ACTIVE; the tick loop reads it
        #: directly to skip the method call.
        self._capacity_active = (
            cpu_bound if cpu_bound < disk_bound else disk_bound
        )

    def set_speed_factor(self, factor: float) -> None:
        """Set the CPU frequency ratio (0 < factor <= 1)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("speed factor must be in (0, 1]")
        self.speed_factor = factor
        self._refresh_speed_terms()

    # -- power control (Freon-EC) -----------------------------------------

    def power_on(self) -> None:
        """Begin booting; the server accepts connections once booted."""
        if self.state is not PowerState.OFF:
            raise ServerStateError(f"server {self.name!r} is not off")
        self.state = PowerState.BOOTING
        self._boot_remaining = self.boot_time

    def begin_drain(self) -> None:
        """Stop accepting new work; power off when connections reach 0."""
        if self.state is not PowerState.ACTIVE:
            raise ServerStateError(f"server {self.name!r} is not active")
        self.state = PowerState.DRAINING

    @property
    def accepts_load(self) -> bool:
        """True when the balancer may send new connections here."""
        return self.state is PowerState.ACTIVE

    @property
    def is_on(self) -> bool:
        """True when the machine consumes power (anything but OFF)."""
        return self.state is not PowerState.OFF

    # -- per-tick model -----------------------------------------------------

    def capacity(self) -> float:
        """Maximum request rate this server can absorb right now."""
        if self.state is not PowerState.ACTIVE:
            return 0.0
        return self._capacity_active

    def step(self, assigned_rate: float, dt: float) -> ServerLoad:
        """Advance one tick with ``assigned_rate`` requests/second."""
        if assigned_rate < 0.0:
            raise ValueError("assigned rate must be non-negative")
        if self.state is PowerState.BOOTING:
            self._boot_remaining -= dt
            if self._boot_remaining <= 0.0:
                self.state = PowerState.ACTIVE
            # The OS boot pegs the CPU and rattles the disk (the paper
            # notes turn-on "causes its CPU utilization ... to spike").
            self.load = ServerLoad(
                cpu_utilization=1.0 if self.state is PowerState.BOOTING else 0.0,
                disk_utilization=0.6 if self.state is PowerState.BOOTING else 0.0,
                response_time=self._base_response_time,
                connections=0.0,
            )
            if self.state is PowerState.BOOTING:
                return self.load
            assigned_rate = 0.0  # freshly active; load arrives next tick
        if self.state is PowerState.OFF:
            self.load = ServerLoad(0.0, 0.0, self._base_response_time, 0.0)
            return self.load
        if self.state is PowerState.DRAINING:
            # Existing connections finish within a response time; with
            # sub-second response times one tick drains everything.
            assigned_rate = 0.0
        cpu = assigned_rate * self._cpu_demand / self.speed_factor
        if cpu > 1.0:
            cpu = 1.0
        disk = assigned_rate * self._disk_demand
        if disk > 1.0:
            disk = 1.0
        rho = cpu if cpu > disk else disk
        slack = 1.0 - rho
        if slack < _INV_MAX_INFLATION:
            slack = _INV_MAX_INFLATION
        inflation = 1.0 / slack
        if inflation > _MAX_INFLATION:
            inflation = _MAX_INFLATION
        response_time = self._base_loaded * inflation
        connections = assigned_rate * response_time
        self.load = ServerLoad(cpu, disk, response_time, connections)
        if self.state is PowerState.DRAINING and connections <= 1e-9:
            self.state = PowerState.OFF
        return self.load
