"""Content-aware request distribution and Freon's two-stage policy.

Section 4.3: "in the face of a hot CPU, the system could distribute
requests in such a way that only memory or I/O-bound requests were sent
to it.  Lower weights and connection limits would only be used if this
strategy did not reduce the CPU temperature enough.  The current version
of Freon does not implement this two-stage policy because LVS does not
support content-aware request distribution."

This module supplies what LVS could not, so the two-stage policy can be
built and evaluated:

* :class:`ContentAwareBalancer` — splits traffic into two classes
  (CPU-heavy *dynamic* requests and I/O-heavy *static* requests) with
  independent per-server, per-class weights;
* :class:`ClassedLoad` / :func:`classed_load` — the server-side view:
  utilizations and concurrency from the two class rates;
* :class:`TwoStageFreon` — stage 1 steers only dynamic requests away
  from a hot server (its throughput in static requests is untouched);
  stage 2 falls back to classic whole-load weight reduction when stage 1
  has run out of dynamic traffic to shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ClusterError
from .webserver import RequestMix

#: The two request classes.
DYNAMIC = "dynamic"
STATIC = "static"
CLASSES = (DYNAMIC, STATIC)


@dataclass(frozen=True)
class ClassedLoad:
    """Per-tick observable state from two class rates on one server."""

    cpu_utilization: float
    disk_utilization: float
    connections: float


def classed_load(
    dynamic_rate: float, static_rate: float, mix: Optional[RequestMix] = None
) -> ClassedLoad:
    """Utilizations and concurrency for a (dynamic, static) rate pair."""
    if dynamic_rate < 0.0 or static_rate < 0.0:
        raise ClusterError("class rates must be non-negative")
    mix = mix or RequestMix()
    cpu = min(dynamic_rate * mix.dynamic_cpu + static_rate * mix.static_cpu, 1.0)
    disk = min(
        dynamic_rate * mix.dynamic_disk + static_rate * mix.static_disk, 1.0
    )
    response = (mix.dynamic_cpu + mix.dynamic_disk) * dynamic_rate + (
        mix.static_cpu + mix.static_disk
    ) * static_rate
    return ClassedLoad(
        cpu_utilization=cpu, disk_utilization=disk, connections=response
    )


class ContentAwareBalancer:
    """Two-class weighted request distribution.

    Each server holds one weight per request class; a class's offered
    rate is split proportionally to the class weights, independently of
    the other class.  Setting a server's *dynamic* weight to a fraction
    of its peers' steers CPU-heavy work away while static work keeps
    flowing — the stage-1 knob.
    """

    def __init__(self, servers: Sequence[str]) -> None:
        if not servers:
            raise ClusterError("the balancer needs at least one real server")
        self._weights: Dict[str, Dict[str, float]] = {
            name: {cls: 1.0 for cls in CLASSES} for name in servers
        }
        self.total_offered = 0.0
        self.total_dropped = 0.0

    @property
    def servers(self) -> List[str]:
        """Backend names in registration order."""
        return list(self._weights)

    def weight(self, server: str, request_class: str) -> float:
        """Current weight of one server for one request class."""
        self._check(server, request_class)
        return self._weights[server][request_class]

    def set_weight(self, server: str, request_class: str, weight: float) -> None:
        """Set one server's weight for one request class."""
        self._check(server, request_class)
        if weight < 0.0:
            raise ClusterError("weights must be non-negative")
        self._weights[server][request_class] = max(weight, 1e-6)

    def _check(self, server: str, request_class: str) -> None:
        if server not in self._weights:
            raise ClusterError(f"unknown server {server!r}")
        if request_class not in CLASSES:
            raise ClusterError(f"unknown request class {request_class!r}")

    def allocate(
        self,
        offered: Mapping[str, float],
        capacity: Mapping[str, float],
    ) -> Tuple[Dict[str, Dict[str, float]], float]:
        """Split per-class offered rates across servers.

        ``offered`` maps class -> requests/second; ``capacity`` maps
        server -> total request ceiling.  Returns (per-server per-class
        rates, dropped rate).  Capacity is consumed dynamic-first (those
        are the expensive requests), mirroring how an overloaded server
        sheds work.
        """
        rates: Dict[str, Dict[str, float]] = {
            name: {cls: 0.0 for cls in CLASSES} for name in self._weights
        }
        dropped = 0.0
        headroom = {
            name: capacity.get(name, float("inf")) for name in self._weights
        }
        for request_class in CLASSES:
            demand = offered.get(request_class, 0.0)
            if demand < 0.0:
                raise ClusterError("offered rates must be non-negative")
            self.total_offered += demand
            open_set = {
                name: self._weights[name][request_class]
                for name in self._weights
                if headroom[name] > 1e-12
            }
            remaining = demand
            while remaining > 1e-12 and open_set:
                total_weight = sum(open_set.values())
                if total_weight <= 0.0:
                    break
                saturated = []
                moved = 0.0
                for name, weight in open_set.items():
                    share = remaining * weight / total_weight
                    take = min(share, headroom[name])
                    rates[name][request_class] += take
                    headroom[name] -= take
                    moved += take
                    if share >= headroom[name] - 1e-12:
                        saturated.append(name)
                remaining -= moved
                for name in saturated:
                    if headroom[name] <= 1e-12:
                        open_set.pop(name, None)
                if moved <= 1e-15:
                    break
            if remaining > 1e-9 * max(demand, 1.0):
                dropped += remaining
        self.total_dropped += dropped
        return rates, dropped


@dataclass
class StageEvent:
    """One two-stage policy action, for experiment records."""

    time: float
    machine: str
    stage: int
    action: str


class TwoStageFreon:
    """The section 4.3 two-stage thermal policy for one hot server.

    Stage 1 (content-aware): on each hot observation, halve the server's
    *dynamic-class* weight — CPU-heavy requests drain away, static
    throughput is untouched.  Stage 2 (classic): once the dynamic weight
    is already negligible and the CPU is still hot, start reducing the
    static weight too.  Recovery restores dynamic first (it is the cheap
    knob to give back), then static.
    """

    #: Dynamic weight below which stage 1 is considered exhausted.
    STAGE1_FLOOR = 0.05

    def __init__(
        self,
        balancer: ContentAwareBalancer,
        high: float = 67.0,
        low: float = 64.0,
    ) -> None:
        if low >= high:
            raise ClusterError("low threshold must be below high")
        self.balancer = balancer
        self.high = high
        self.low = low
        self.events: List[StageEvent] = []

    def observe(self, machine: str, cpu_temperature: float, now: float) -> None:
        """One policy step for one server's CPU temperature."""
        dynamic = self.balancer.weight(machine, DYNAMIC)
        static = self.balancer.weight(machine, STATIC)
        if cpu_temperature > self.high:
            if dynamic > self.STAGE1_FLOOR:
                self.balancer.set_weight(machine, DYNAMIC, dynamic * 0.5)
                self.events.append(
                    StageEvent(now, machine, 1, "halve dynamic weight")
                )
            else:
                self.balancer.set_weight(machine, STATIC, static * 0.5)
                self.events.append(
                    StageEvent(now, machine, 2, "halve static weight")
                )
        elif cpu_temperature < self.low:
            if static < 1.0:
                self.balancer.set_weight(machine, STATIC, min(static * 2.0, 1.0))
                self.events.append(
                    StageEvent(now, machine, 2, "restore static weight")
                )
            elif dynamic < 1.0:
                self.balancer.set_weight(
                    machine, DYNAMIC, min(dynamic * 2.0, 1.0)
                )
                self.events.append(
                    StageEvent(now, machine, 1, "restore dynamic weight")
                )
