"""Synthetic web-traffic trace generator (paper section 5).

"To load the servers, we used a synthetic trace ... Our trace includes
30% of requests to dynamic content in the form of a simple CGI script
that computes for 25 ms and produces a small reply.  The timing of the
requests mimics the well-known traffic pattern of most Internet
services, consisting of recurring load valleys (over night) followed by
load peaks (in the afternoon).  The load peak is set at 70% utilization
with 4 servers, leaving spare capacity to handle unexpected load
increases or a server failure."

:func:`diurnal_trace` compresses one day's valley-to-peak-to-valley
cycle into an experiment-length window and scales the peak so the
cluster-wide CPU utilization hits the requested value with the requested
number of servers.  A seeded jitter adds the short-term raggedness of
real traffic without breaking repeatability.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Sequence

try:  # NumPy is optional: only diurnal_shape_array needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from ..errors import ClusterError
from .webserver import RequestMix


@dataclass(frozen=True)
class TracePoint:
    """Offered request rate in effect from ``time`` to the next point."""

    time: float
    rate: float


class RequestTrace:
    """A deterministic offered-load (req/s) step function."""

    def __init__(self, points: Sequence[TracePoint]) -> None:
        if not points:
            raise ValueError("a trace needs at least one point")
        self._points = list(points)
        self._times = [p.time for p in self._points]
        self._rates = [p.rate for p in self._points]
        for earlier, later in zip(self._points, self._points[1:]):
            if later.time <= earlier.time:
                raise ValueError("trace points must be strictly time-sorted")

    def rate_at(self, time: float) -> float:
        """Offered rate at simulated time ``time`` (0 before the trace)."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return 0.0
        return self._rates[idx]

    @property
    def points(self) -> "List[TracePoint]":
        """The step points, time-sorted (a copy; safe to transform)."""
        return list(self._points)

    @property
    def duration(self) -> float:
        """Timestamp of the last point."""
        return self._times[-1]

    @property
    def peak_rate(self) -> float:
        """Highest rate anywhere in the trace."""
        return max(p.rate for p in self._points)

    def total_requests(self) -> float:
        """Requests offered over the whole trace (integral of the rate)."""
        total = 0.0
        for point, nxt in zip(self._points, self._points[1:]):
            total += point.rate * (nxt.time - point.time)
        return total

    def __len__(self) -> int:
        return len(self._points)


def peak_rate_for_utilization(
    target_utilization: float,
    servers: int,
    mix: RequestMix = RequestMix(),
) -> float:
    """Cluster-wide request rate putting each of N servers at the target
    CPU utilization."""
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError("target utilization must be in (0, 1]")
    if servers <= 0:
        raise ValueError("need at least one server")
    return target_utilization * servers / mix.cpu_demand


def diurnal_shape(t: float, duration: float, plateau: float = 0.75) -> float:
    """The normalized valley-to-peak-to-valley curve at time ``t``.

    The peak lands at 60% of the way through the window (the paper's
    Figure 11 load subsides in the last quarter of the run); ``plateau``
    flattens the top of the cosine so the afternoon peak is a broad
    shoulder rather than an instant.  Exposed separately so the
    flattened datacenter simulation can evaluate the same curve
    vectorized with per-machine phase offsets.
    """
    peak_at = 0.6 * duration
    if t <= peak_at:
        # Half-cosine from valley (t=0) up to the peak; the descent below
        # is steeper, like an evening drop-off.
        phase = math.pi * (t / peak_at - 1.0)  # -pi .. 0
    else:
        # Rescaled so the descent reaches the valley (phase=pi) exactly
        # at t=duration: phase-wrapped traces are then continuous at the
        # day boundary (shape(duration) == shape(0) == 0).
        phase = math.pi * (t - peak_at) / (duration - peak_at)  # 0 .. pi
        if phase > math.pi:
            phase = math.pi
    shape = 0.5 * (1.0 + math.cos(phase))
    return min(shape, plateau) / plateau  # flat-topped peak


def diurnal_shape_array(t, duration: float, plateau: float = 0.75):
    """:func:`diurnal_shape` over an array of times, elementwise equal.

    One vectorized evaluation of the same piecewise curve — identical
    floating-point operations in identical order, so every element
    matches the scalar function bit-for-bit (pinned by a property test
    in ``tests/cluster/test_tracegen.py``).  The flattened datacenter
    simulation evaluates per-machine phase-shifted copies of the curve
    through this function.
    """
    if _np is None:
        raise ClusterError("diurnal_shape_array requires NumPy")
    if duration <= 0.0:
        raise ValueError("duration must be positive")
    if not 0.0 < plateau <= 1.0:
        raise ValueError("plateau must be in (0, 1]")
    tt = _np.asarray(t, dtype=float)
    peak_at = 0.6 * duration
    ascent = tt <= peak_at
    phase = _np.where(
        ascent,
        math.pi * (tt / peak_at - 1.0),
        _np.minimum(math.pi * (tt - peak_at) / (duration - peak_at), math.pi),
    )
    shape = 0.5 * (1.0 + _np.cos(phase))
    return _np.minimum(shape, plateau) / plateau


def phase_offsets(count: int, spread: float = 0.25, seed: int = 2006) -> List[float]:
    """Deterministic per-machine diurnal phase offsets (fractions of a day).

    Large clusters should not hit their diurnal peaks in lockstep: real
    machines serve regions whose afternoons differ.  Each offset is
    drawn in ``[0, spread)`` from its own derived RNG stream, so the
    list is a pure function of ``(seed, index)`` — extending ``count``
    never changes earlier offsets, and equal seeds reproduce the exact
    same floats on any platform.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if not 0.0 <= spread <= 1.0:
        raise ValueError("spread must be in [0, 1]")
    return [
        random.Random(seed * 1_000_003 + index).random() * spread
        for index in range(count)
    ]


def diurnal_trace(
    duration: float = 2000.0,
    step: float = 10.0,
    peak_utilization: float = 0.70,
    servers: int = 4,
    valley_fraction: float = 0.15,
    mix: RequestMix = RequestMix(),
    jitter: float = 0.03,
    plateau: float = 0.75,
    seed: int = 2006,
    phase: float = 0.0,
) -> RequestTrace:
    """One compressed day: valley, rise to the afternoon peak, decline.

    ``valley_fraction`` sets the overnight load relative to the peak;
    see :func:`diurnal_shape` for the curve itself.  ``phase`` rotates
    the whole pattern by that fraction of the window (wrapping around),
    so per-machine traces built with :func:`phase_offsets` peak at
    different times; ``phase=0`` reproduces the unshifted trace exactly,
    jitter stream included.
    """
    if duration <= 0.0 or step <= 0.0:
        raise ValueError("duration and step must be positive")
    if not 0.0 < plateau <= 1.0:
        raise ValueError("plateau must be in (0, 1]")
    if not 0.0 <= phase < 1.0:
        raise ValueError("phase must be in [0, 1)")
    peak = peak_rate_for_utilization(peak_utilization, servers, mix)
    valley = valley_fraction * peak
    rng = random.Random(seed)
    points: List[TracePoint] = []
    t = 0.0
    while t < duration:
        shape = diurnal_shape(
            (t - phase * duration) % duration, duration, plateau
        )
        base = valley + (peak - valley) * shape
        noisy = base * (1.0 + rng.uniform(-jitter, jitter))
        points.append(TracePoint(time=t, rate=max(noisy, 0.0)))
        t += step
    return RequestTrace(points)


def constant_trace(rate: float, duration: float, step: float = 10.0) -> RequestTrace:
    """A flat trace; useful for steady-state and unit tests.

    The last point always lands at ``duration`` so the trace spans the
    full requested window even when ``duration`` is not a multiple of
    ``step`` (``total_requests()`` would otherwise undercount the tail).
    """
    if rate < 0.0:
        raise ValueError("rate must be non-negative")
    if duration <= 0.0 or step <= 0.0:
        raise ValueError("duration and step must be positive")
    points = [TracePoint(time=t * step, rate=rate)
              for t in range(max(1, int(duration / step)))]
    if points[-1].time < duration:
        points.append(TracePoint(time=duration, rate=rate))
    return RequestTrace(points)
