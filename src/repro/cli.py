"""Command-line tools for the Mercury/Freon suite.

The original Mercury shipped as a set of programs (the solver, monitord,
fiddle); this module provides the equivalent entry points over the
library:

``repro solve``
    Offline mode: load machine/cluster graphs from an mdot file and a
    utilization trace from CSV, optionally apply a fiddle script, and
    write "another file containing all the usage and temperature
    information for each component in the system over time".

``repro check``
    Parse and validate an mdot file; print a summary of each machine.

``repro graphviz``
    Export a machine's heat/air graphs as graphviz dot for drawing.

``repro freon``
    Run one of the section 5 cluster experiments (freon / freon-ec /
    traditional / local-dvfs / none) and print the outcome summary.

``repro top``
    Run an experiment with telemetry enabled and render a periodically
    refreshed text dashboard of the live metrics.

``repro sweep``
    Expand a grid spec (or a built-in preset) into a set of runs, fan
    them across a worker pool, and write one deterministic merged
    artifact (JSON + Prometheus snapshot).

``repro scale``
    Simulate a datacenter-scale spatial topology (zones, racks,
    cross-machine recirculation) through the flattened one-array-per-
    tick solver; print per-zone peaks, drops, and throughput.

``repro serve``
    Run a cluster experiment as a live service: an asyncio HTTP plane
    with a streaming dashboard at ``/``, Prometheus metrics at
    ``/metrics``, a JSON API, and threshold alerting — real-time-paced
    or free-running.

``solve``, ``freon`` and ``chaos`` accept ``--telemetry PATH``: the
run's event/metric stream is written to ``PATH`` as JSONL and a
Prometheus text-format snapshot to the sibling ``.prom`` file.

Each subcommand is also importable and unit-testable as a function
taking an argv list.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .cluster.lvs import CloningConfig
from .cluster.scenarios import scenario_names
from .cluster.simulation import (
    MODES,
    POLICIES,
    ClusterSimulation,
    chaos_script,
    emergency_script,
)
from .control import names as _control_names
from .faults.injector import FaultInjector
from .core.solver import ENGINES
from .core.trace import load_traces, run_offline, save_history
from .errors import ReproError
from .fiddle.script import events_from_script
from .mdot.loader import load_file
from .mdot.writer import to_graphviz
from .parallel import (
    expand_grid,
    fig11_grid,
    scenario_grid,
    threshold_grid,
    write_artifact,
)
from .parallel import sweep as run_sweep
from .serve import AlertEngine, ThermalService, http_get, load_rules
from .telemetry import CONTENT_TYPE_LATEST, Telemetry
from .telemetry.exposition import parse_prometheus

#: ``repro freon --experiment`` presets: paper figures plus the workload
#: scenario library.  Each preset names a policy and (for scenarios)
#: the workload bundle the simulation builds its trace/mix/faults from.
EXPERIMENTS = {
    # Base Freon under the section 5 emergencies / Freon-EC regional
    # energy conservation, on the classic diurnal trace.
    "fig11": {"policy": "freon", "scenario": None},
    "fig12": {"policy": "freon-ec", "scenario": None},
    # Adversarial workload scenarios (see repro.cluster.scenarios);
    # every one also has a "<name>-chaos" fault-storm variant.
    **{
        name: {"policy": "freon", "scenario": name}
        for name in scenario_names()
    },
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mercury & Freon: temperature emulation and management",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser(
        "solve", help="offline solver: mdot + trace CSV -> history CSV"
    )
    solve.add_argument("mdot", help="mdot file describing the machines")
    solve.add_argument("trace", help="utilization trace CSV")
    solve.add_argument("output", help="output history CSV")
    solve.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds (default: trace length)",
    )
    solve.add_argument(
        "--dt", type=float, default=1.0, help="solver tick in seconds"
    )
    solve.add_argument(
        "--fiddle", default=None,
        help="fiddle script applying timed emergencies",
    )
    solve.add_argument(
        "--engine", choices=ENGINES, default="python",
        help="solver engine (compiled = vectorized NumPy fast path)",
    )
    solve.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write the run's telemetry as JSONL to PATH (+ .prom snapshot)",
    )

    check = sub.add_parser("check", help="validate an mdot file")
    check.add_argument("mdot", help="mdot file to validate")

    graphviz = sub.add_parser(
        "graphviz", help="export a machine's graphs as graphviz dot"
    )
    graphviz.add_argument("mdot", help="mdot file")
    graphviz.add_argument(
        "--machine", default=None,
        help="machine name (default: the first one)",
    )

    freon = sub.add_parser(
        "freon", help="run a section 5 cluster experiment"
    )
    freon.add_argument(
        "--policy", choices=POLICIES, default="freon",
        help="management policy",
    )
    freon.add_argument(
        "--duration", type=float, default=2000.0,
        help="simulated seconds",
    )
    freon.add_argument(
        "--no-emergency", action="store_true",
        help="skip the inlet-temperature emergencies",
    )
    freon.add_argument(
        "--engine", choices=ENGINES, default="python",
        help="solver engine (compiled = vectorized NumPy fast path)",
    )
    freon.add_argument(
        "--experiment", choices=sorted(EXPERIMENTS), default=None,
        help="preset; overrides --policy (fig11 = base Freon, fig12 = "
             "Freon-EC, others = adversarial workload scenarios; "
             "'-chaos' variants add the fault storm)",
    )
    freon.add_argument(
        "--clones", type=int, default=0, metavar="D",
        help="clone each request to D backends, first response wins "
             "(0 = classic single dispatch)",
    )
    freon.add_argument(
        "--clone-overhead", type=float, default=0.10, metavar="BETA",
        help="cancellation overhead per cloned loser, as a fraction of "
             "its attained service",
    )
    freon.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write the run's telemetry as JSONL to PATH (+ .prom snapshot)",
    )
    freon.add_argument(
        "--mode", choices=MODES, default="legacy",
        help="event scheduling mode (event = real sub-tick datagram latency)",
    )
    freon.add_argument(
        "--fast-forward", action="store_true",
        help="skip solver work while the temperature field is converged "
             "and every input is unchanged (idle fast-forward)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a Freon experiment under injected infrastructure faults",
    )
    chaos.add_argument(
        "--policy", choices=POLICIES, default="freon",
        help="management policy",
    )
    chaos.add_argument(
        "--duration", type=float, default=2000.0,
        help="simulated seconds",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection RNG seed (same seed => identical run)",
    )
    chaos.add_argument(
        "--loss", type=float, default=0.05,
        help="tempd->admd datagram loss probability",
    )
    chaos.add_argument(
        "--script", default=None,
        help="fiddle script with fault statements (default: the built-in "
             "chaos scenario: emergencies + loss + stuck sensor + tempd crash)",
    )
    chaos.add_argument(
        "--engine", choices=ENGINES, default="python",
        help="solver engine (compiled = vectorized NumPy fast path)",
    )
    chaos.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write the run's telemetry as JSONL to PATH (+ .prom snapshot)",
    )
    chaos.add_argument(
        "--mode", choices=MODES, default="legacy",
        help="event scheduling mode (event = real sub-tick datagram latency)",
    )
    chaos.add_argument(
        "--fast-forward", action="store_true",
        help="skip solver work while the temperature field is converged "
             "and every input is unchanged (idle fast-forward)",
    )

    top = sub.add_parser(
        "top",
        help="run an experiment and render a live telemetry dashboard",
    )
    top.add_argument(
        "--policy", choices=POLICIES, default="freon",
        help="management policy",
    )
    top.add_argument(
        "--duration", type=float, default=2000.0,
        help="simulated seconds",
    )
    top.add_argument(
        "--every", type=float, default=60.0,
        help="simulated seconds between dashboard frames",
    )
    top.add_argument(
        "--width", type=int, default=80, help="dashboard width in columns"
    )
    top.add_argument(
        "--plain", action="store_true",
        help="print frames sequentially instead of clearing the screen",
    )
    top.add_argument(
        "--chaos", action="store_true",
        help="use the chaos scenario (faults) instead of the emergencies",
    )
    top.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection RNG seed (with --chaos)",
    )
    top.add_argument(
        "--engine", choices=ENGINES, default="python",
        help="solver engine (compiled = vectorized NumPy fast path)",
    )
    top.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="also write the final telemetry as JSONL to PATH (+ .prom)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a grid of experiments across a worker pool",
    )
    sweep.add_argument(
        "grid", nargs="?", default=None,
        help='grid spec JSON file: {"base": {...}, "axes": {...}}',
    )
    sweep.add_argument(
        "--preset", choices=("fig11", "thresholds", "scenarios"),
        default=None,
        help="built-in grid instead of a file (fig11 = every policy "
             "under the emergencies, thresholds = the section 5.1 "
             "CPU-threshold sweep, scenarios = every workload scenario "
             "and chaos variant, cloning off/on)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = run serially in-process)",
    )
    sweep.add_argument(
        "--strategy", choices=("auto", "batch", "fork"), default="auto",
        help="execution strategy: batch = vectorize compiled runs "
             "through one stacked solver, fork = one worker per run, "
             "auto = batch when NumPy is available (all strategies "
             "produce byte-identical artifacts)",
    )
    sweep.add_argument(
        "--output", default="sweep.json", metavar="PATH",
        help="merged artifact path (+ .prom snapshot sibling)",
    )
    sweep.add_argument(
        "--duration", type=float, default=None,
        help="override every run's simulated seconds",
    )
    sweep.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="simulated seconds between worker checkpoints",
    )

    scale = sub.add_parser(
        "scale",
        help="simulate a datacenter-scale topology with the flattened "
             "solver (1k-10k machines)",
    )
    scale.add_argument(
        "--machines", type=int, default=1000,
        help="machines in the generated grid topology",
    )
    scale.add_argument(
        "--zones", type=int, default=4,
        help="cooling zones in the generated grid topology",
    )
    scale.add_argument(
        "--machines-per-rack", type=int, default=20,
        help="rack height of the generated grid topology",
    )
    scale.add_argument(
        "--duration", type=float, default=3600.0,
        help="simulated seconds (one compressed diurnal cycle)",
    )
    scale.add_argument(
        "--topology", default=None, metavar="FILE",
        help="topology JSON file instead of a generated grid",
    )
    scale.add_argument(
        "--preset", choices=("scale1k",), default=None,
        help="built-in experiment (scale1k = 1000 machines, 4 zones, "
             "one 3600s diurnal cycle)",
    )
    scale.add_argument(
        "--policy", choices=_control_names("scale"), default="freon",
        help="management policy (any scale-capable repro.control name)",
    )
    scale.add_argument(
        "--experiment",
        choices=("emergency", "chaos") + scenario_names(),
        default=None,
        help="scenario preset: the section 5 inlet emergencies, the "
             "chaos fault storm, or an adversarial workload scenario "
             "(traces, faults, and inlet events all route through the "
             "flattened stack)",
    )
    scale.add_argument(
        "--fault-seed", type=int, default=2006,
        help="fault-injection RNG seed for chaos experiments",
    )
    scale.add_argument(
        "--clones", type=int, default=0, metavar="D",
        help="request cloning degree across the room (0 = off)",
    )
    scale.add_argument(
        "--supply", type=float, default=None, metavar="CELSIUS",
        help="override every zone's cold-aisle supply temperature",
    )
    scale.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write the run's telemetry as JSONL to PATH (+ .prom snapshot)",
    )

    serve = sub.add_parser(
        "serve",
        help="run an experiment as a live HTTP service "
             "(dashboard, /metrics, alerts)",
    )
    serve.add_argument(
        "--policy", choices=POLICIES, default="freon",
        help="management policy",
    )
    serve.add_argument(
        "--duration", type=float, default=2000.0,
        help="simulated seconds",
    )
    serve.add_argument(
        "--pace", type=float, default=1.0,
        help="simulated seconds per wall second (0 = free-running)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="HTTP bind address",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="HTTP port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--rules", default=None, metavar="PATH",
        help="alert rule file (TOML or JSON; default: one CPU rule at "
             "the policy's T_h with 2 degrees of hysteresis)",
    )
    serve.add_argument(
        "--frame-every", type=float, default=5.0, metavar="SECONDS",
        help="simulated seconds between dashboard frames",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="use the chaos scenario (faults) instead of the emergencies",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection RNG seed (with --chaos)",
    )
    serve.add_argument(
        "--engine", choices=ENGINES, default="python",
        help="solver engine (compiled = vectorized NumPy fast path)",
    )
    serve.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep serving this many wall seconds after the run completes",
    )
    serve.add_argument(
        "--probe", action="store_true",
        help="after the run, scrape the service's own /metrics and "
             "/api endpoints and verify the round trip (CI smoke mode)",
    )
    return parser


def _make_telemetry(args: argparse.Namespace) -> Optional[Telemetry]:
    """An enabled facade when ``--telemetry`` was given, else ``None``."""
    return Telemetry() if getattr(args, "telemetry", None) else None


def _write_telemetry(telemetry: Optional[Telemetry],
                     args: argparse.Namespace, out) -> None:
    """Dump JSONL + Prometheus snapshot when ``--telemetry PATH`` was given."""
    if telemetry is None or not args.telemetry:
        return
    rows = telemetry.write_jsonl(args.telemetry)
    snapshot = Path(args.telemetry).with_suffix(".prom")
    telemetry.write_snapshot(snapshot)
    print(
        f"telemetry: {rows} rows -> {args.telemetry}; snapshot -> {snapshot}",
        file=out,
    )


def cmd_solve(args: argparse.Namespace, out) -> int:
    machines, cluster = load_file(args.mdot)
    if not machines:
        print("error: mdot file declares no machines", file=out)
        return 2
    traces = load_traces(args.trace)
    events = None
    if args.fiddle:
        with open(args.fiddle) as handle:
            events = events_from_script(handle.read())
    telemetry = _make_telemetry(args)
    history = run_offline(
        machines,
        traces,
        cluster=cluster,
        dt=args.dt,
        duration=args.duration,
        events=events,
        engine=args.engine,
        telemetry=telemetry,
    )
    save_history(history, args.output)
    samples = sum(len(history.samples(m)) for m in history.machines())
    print(
        f"solved {len(machines)} machine(s), {samples} samples "
        f"-> {args.output}",
        file=out,
    )
    _write_telemetry(telemetry, args, out)
    return 0


def cmd_check(args: argparse.Namespace, out) -> int:
    machines, cluster = load_file(args.mdot)
    for machine in machines:
        flows = machine.air_flow_rates()
        print(
            f"machine {machine.name!r}: {len(machine.components)} components, "
            f"{len(machine.air_regions)} air regions, "
            f"{len(machine.heat_edges)} heat edges, "
            f"{len(machine.air_edges)} air edges; "
            f"fan {machine.fan_cfm:g} cfm, inlet "
            f"{machine.inlet_temperature:g} C, exhaust flow "
            f"{flows[machine.exhaust]:.5f} m^3/s",
            file=out,
        )
    if cluster is not None:
        print(
            f"cluster: {len(cluster.machines)} machines, "
            f"{len(cluster.sources)} cooling sources, "
            f"{len(cluster.edges)} air edges",
            file=out,
        )
    print("OK", file=out)
    return 0


def cmd_graphviz(args: argparse.Namespace, out) -> int:
    machines, _ = load_file(args.mdot)
    if not machines:
        print("error: mdot file declares no machines", file=out)
        return 2
    if args.machine is None:
        target = machines[0]
    else:
        matches = [m for m in machines if m.name == args.machine]
        if not matches:
            print(f"error: no machine named {args.machine!r}", file=out)
            return 2
        target = matches[0]
    print(to_graphviz(target), file=out, end="")
    return 0


def cmd_freon(args: argparse.Namespace, out) -> int:
    policy = args.policy
    scenario = None
    if args.experiment is not None:
        preset = EXPERIMENTS[args.experiment]
        policy = preset["policy"]
        scenario = preset["scenario"]
        label = scenario or "classic trace"
        print(
            f"experiment {args.experiment}: policy {policy} ({label})",
            file=out,
        )
    if scenario is not None:
        # A scenario brings its own fault script; --no-emergency strips
        # it (empty string: not-None, so the scenario won't refill it).
        script = "" if args.no_emergency else None
    else:
        script = None if args.no_emergency else emergency_script()
    cloning = None
    if args.clones:
        cloning = CloningConfig(
            clones=args.clones, cancel_overhead=args.clone_overhead
        )
    telemetry = _make_telemetry(args)
    simulation = ClusterSimulation(
        policy=policy, fiddle_script=script, engine=args.engine,
        telemetry=telemetry, mode=args.mode,
        idle_fast_forward=args.fast_forward,
        scenario=scenario, scenario_duration=args.duration,
        cloning=cloning,
    )
    result = simulation.run(args.duration)
    print(f"policy: {policy}  engine: {args.engine}", file=out)
    if args.fast_forward and simulation.solver.coasted_ticks:
        print(
            f"fast-forward: coasted {simulation.solver.coasted_ticks} of "
            f"{len(result.records)} ticks",
            file=out,
        )
    print(
        f"dropped requests: {result.drop_fraction * 100:.2f}% of "
        f"{result.total_offered:.0f}",
        file=out,
    )
    peaks = {
        m: round(result.max_temperature(m), 1) for m in simulation.machines
    }
    print(f"peak CPU temperatures: {peaks}", file=out)
    if result.adjustments:
        print(f"adjustments: {len(result.adjustments)}", file=out)
    if result.shutdowns:
        print(
            f"shutdowns: {[(s.time, s.machine) for s in result.shutdowns]}",
            file=out,
        )
    if result.ec_events:
        print(f"reconfigurations: {len(result.ec_events)}", file=out)
    if result.pstate_changes:
        print(f"P-state changes: {len(result.pstate_changes)}", file=out)
    if scenario is not None or cloning is not None:
        print(
            f"p99 request latency: {result.p99_latency() * 1000:.1f} ms",
            file=out,
        )
    if cloning is not None:
        scales = result.clone_latency_scales
        shed = sum(1 for s in scales if s >= 1.0)
        print(
            f"cloning: d={args.clones}, shed {shed} of "
            f"{len(scales)} tick(s)",
            file=out,
        )
    _write_telemetry(telemetry, args, out)
    return 0


def cmd_chaos(args: argparse.Namespace, out) -> int:
    if args.script is not None:
        with open(args.script) as handle:
            script = handle.read()
    else:
        script = chaos_script(loss=args.loss)
    telemetry = _make_telemetry(args)
    simulation = ClusterSimulation(
        policy=args.policy,
        fiddle_script=script,
        injector=FaultInjector(seed=args.seed),
        engine=args.engine,
        telemetry=telemetry,
        mode=args.mode,
        idle_fast_forward=args.fast_forward,
    )
    result = simulation.run(args.duration)
    print(f"policy: {args.policy}  fault seed: {args.seed}", file=out)
    if args.fast_forward and simulation.solver.coasted_ticks:
        print(
            f"fast-forward: coasted {simulation.solver.coasted_ticks} of "
            f"{len(result.records)} ticks",
            file=out,
        )
    print(
        f"dropped requests: {result.drop_fraction * 100:.2f}% of "
        f"{result.total_offered:.0f}",
        file=out,
    )
    peaks = {
        m: round(result.max_temperature(m), 1) for m in simulation.machines
    }
    print(f"peak CPU temperatures: {peaks}", file=out)
    if result.datagram_stats:
        stats = result.datagram_stats
        print(
            f"datagrams: {stats['sent']} sent, {stats['delivered']} "
            f"delivered, {stats['dropped']} dropped, "
            f"{stats['duplicated']} duplicated, {stats['delayed']} delayed",
            file=out,
        )
    print(f"adjustments: {len(result.adjustments)}", file=out)
    for when, event in result.fault_log:
        print(f"  t={when:7.1f}  {event}", file=out)
    for restart in result.restarts:
        print(
            f"watchdog restarted {restart.machine}/{restart.daemon} "
            f"at t={restart.time:g}",
            file=out,
        )
    stale = sum(t.stale_wakes for t in simulation.tempds.values())
    conservative = sum(
        t.conservative_wakes for t in simulation.tempds.values()
    )
    if stale or conservative:
        print(
            f"tempd resilience: {stale} stale wake(s), "
            f"{conservative} conservative throttle(s)",
            file=out,
        )
    _write_telemetry(telemetry, args, out)
    return 0


def cmd_top(args: argparse.Namespace, out) -> int:
    if args.chaos:
        script = chaos_script()
        injector = FaultInjector(seed=args.seed)
    else:
        script = emergency_script()
        injector = None
    telemetry = Telemetry()
    simulation = ClusterSimulation(
        policy=args.policy,
        fiddle_script=script,
        injector=injector,
        engine=args.engine,
        telemetry=telemetry,
    )
    ticks = int(round(args.duration / simulation.dt))
    frame_every = max(1, int(round(args.every / simulation.dt)))
    for tick in range(ticks):
        simulation.step()
        if (tick + 1) % frame_every == 0 or tick == ticks - 1:
            if not args.plain:
                print("\x1b[2J\x1b[H", end="", file=out)
            print(telemetry.render(width=args.width), file=out)
    result = simulation.result()
    print(
        f"done: policy {args.policy}, {args.duration:g}s simulated, "
        f"dropped {result.drop_fraction * 100:.2f}% of "
        f"{result.total_offered:.0f} requests",
        file=out,
    )
    _write_telemetry(telemetry, args, out)
    return 0


def cmd_sweep(args: argparse.Namespace, out) -> int:
    if (args.grid is None) == (args.preset is None):
        print("error: pass exactly one of GRID or --preset", file=out)
        return 2
    if args.preset == "fig11":
        grid = fig11_grid()
    elif args.preset == "thresholds":
        grid = threshold_grid()
    elif args.preset == "scenarios":
        grid = scenario_grid()
    else:
        with open(args.grid) as handle:
            grid = json.load(handle)
    if args.duration is not None:
        grid.setdefault("base", {})["duration"] = args.duration
    if args.checkpoint_every is not None:
        grid.setdefault("base", {})["checkpoint_every"] = args.checkpoint_every
    specs = expand_grid(grid)
    print(
        f"sweep: {len(specs)} run(s) across {args.workers} worker(s)",
        file=out,
    )
    artifact = run_sweep(specs, workers=args.workers,
                         strategy=args.strategy)
    for run in artifact["runs"]:
        summary = run["summary"]
        resumed = "  (resumed)" if run["resumed"] else ""
        print(
            f"  {run['run_id']}: dropped "
            f"{summary['drop_fraction'] * 100:.2f}% of "
            f"{summary['total_offered']:.0f}, "
            f"{summary['adjustments']} adjustment(s){resumed}",
            file=out,
        )
    json_path, prom_path = write_artifact(artifact, args.output)
    print(f"artifact -> {json_path}; snapshot -> {prom_path}", file=out)
    return 0


async def _serve_probe(service: ThermalService, out) -> int:
    """Self-scrape for CI: verify /metrics round-trips and alerts ran."""
    host, port = service.address
    status, headers, body = await http_get(host, port, "/metrics")
    families = parse_prometheus(body.decode("utf-8"))
    content_ok = headers.get("content-type") == CONTENT_TYPE_LATEST
    print(
        f"probe: /metrics {status}, {len(families)} series, "
        f"content-type {'ok' if content_ok else headers.get('content-type')}",
        file=out,
    )
    status_api, _, body_api = await http_get(host, port, "/api/status")
    summary = json.loads(body_api)
    print(
        f"probe: /api/status {status_api}, time {summary.get('time')}, "
        f"alerts {summary.get('alerts')}",
        file=out,
    )
    ok = (
        status == 200 and content_ok and len(families) > 0
        and status_api == 200 and summary.get("done") is True
    )
    print(f"probe: {'PASS' if ok else 'FAIL'}", file=out)
    return 0 if ok else 1


async def _serve_run(service: ThermalService, args: argparse.Namespace,
                     out) -> int:
    async with service:
        host, port = service.address
        print(
            f"serving http://{host}:{port}/  "
            f"(policy {args.policy}, pace {args.pace:g}, "
            f"{args.duration:g}s simulated)",
            file=out,
        )
        print(f"  dashboard  http://{host}:{port}/", file=out)
        print(f"  metrics    http://{host}:{port}/metrics", file=out)
        print(f"  stream     http://{host}:{port}/stream", file=out)
        await service.serve(
            duration=args.duration, pace=args.pace,
            frame_every=args.frame_every,
        )
        result = service.simulation.result()
        incidents = service.alerts.incidents
        print(
            f"done: dropped {result.drop_fraction * 100:.2f}% of "
            f"{result.total_offered:.0f} requests, "
            f"{len(incidents)} alert incident(s)",
            file=out,
        )
        code = 0
        if args.probe:
            code = await _serve_probe(service, out)
        if args.linger > 0.0:
            print(f"lingering {args.linger:g}s (ctrl-c to stop)", file=out)
            await asyncio.sleep(args.linger)
        return code


def cmd_scale(args: argparse.Namespace, out) -> int:
    import time

    from .topology import ScaleSimulation, grid_topology, load_topology

    if args.preset == "scale1k":
        args.machines, args.zones, args.duration = 1000, 4, 3600.0
    if args.topology is not None:
        topology = load_topology(args.topology)
    else:
        topology = grid_topology(
            args.machines, zones=args.zones,
            machines_per_rack=args.machines_per_rack,
            zone_supplies=(
                {f"zone{i}": args.supply for i in range(args.zones)}
                if args.supply is not None else None
            ),
        )
    telemetry = _make_telemetry(args)
    cloning = CloningConfig(clones=args.clones) if args.clones else None
    scenario = None
    injector = None
    inlet_events = None
    if args.experiment == "emergency":
        script = emergency_script()
    elif args.experiment == "chaos":
        script = chaos_script()
    else:
        script = None
        if args.experiment is not None:
            from .cluster.scenarios import build_scenario

            scenario = build_scenario(
                args.experiment, duration=args.duration,
                servers=len(topology.machines),
            )
    if script is not None:
        from .faults import FaultSchedule
        from .topology import inlet_events_from_script

        inlet_events = inlet_events_from_script(script)
        schedule = FaultSchedule.from_script(script)
        if len(schedule):
            injector = FaultInjector(schedule, seed=args.fault_seed)
    simulation = ScaleSimulation(
        topology, duration=args.duration, policy=args.policy,
        cloning=cloning, telemetry=telemetry, scenario=scenario,
        injector=injector, inlet_events=inlet_events,
        fault_seed=args.fault_seed,
    )
    start = time.perf_counter()
    summary = simulation.run()
    elapsed = time.perf_counter() - start
    ticks_per_sec = summary["ticks"] / elapsed if elapsed > 0 else 0.0
    print(
        f"scale: {summary['machines']} machines in {summary['zones']} "
        f"zone(s), {summary['ticks']} ticks in {elapsed:.2f}s wall "
        f"({ticks_per_sec:,.0f} ticks/s)",
        file=out,
    )
    print(
        f"  dropped {summary['drop_fraction'] * 100:.2f}% of "
        f"{summary['offered_requests']:.0f} requests, "
        f"{summary['throttle_events']} throttle event(s), "
        f"{summary['throttled_machines']} machine(s) still throttled",
        file=out,
    )
    line = f"  policy {summary['policy']}: {summary['active_machines']} machine(s) active"
    if args.experiment is not None:
        line += f", experiment {args.experiment}"
    if "faults_logged" in summary:
        line += f", {summary['faults_logged']} fault(s) injected"
    print(line, file=out)
    if cloning is not None:
        print(
            f"  cloning d={args.clones}: {summary['clone_ticks']} cloned "
            f"tick(s), {summary['shed_ticks']} shed tick(s)",
            file=out,
        )
    for zone in sorted(summary["zone_cpu_max"]):
        print(
            f"  {zone}: CPU max {summary['zone_cpu_max'][zone]:.2f}C, "
            f"mean {summary['zone_cpu_mean'][zone]:.2f}C",
            file=out,
        )
    _write_telemetry(telemetry, args, out)
    return 0


def cmd_serve(args: argparse.Namespace, out) -> int:
    if args.chaos:
        script = chaos_script()
        injector = FaultInjector(seed=args.seed)
    else:
        script = emergency_script()
        injector = None
    simulation = ClusterSimulation(
        policy=args.policy,
        fiddle_script=script,
        injector=injector,
        engine=args.engine,
        telemetry=Telemetry(),
    )
    alerts = None
    if args.rules is not None:
        alerts = AlertEngine(
            load_rules(args.rules), telemetry=simulation.telemetry
        )
    service = ThermalService(
        simulation, alerts=alerts, host=args.host, port=args.port,
    )
    try:
        return asyncio.run(_serve_run(service, args, out))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=out)
        return 130


_COMMANDS = {
    "solve": cmd_solve,
    "check": cmd_check,
    "graphviz": cmd_graphviz,
    "freon": cmd_freon,
    "chaos": cmd_chaos,
    "top": cmd_top,
    "sweep": cmd_sweep,
    "scale": cmd_scale,
    "serve": cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    if out is None:
        out = sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=out)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
