"""A minimal asyncio HTTP/1.1 server: routes, JSON, and server-sent events.

The serving plane must live inside the stdlib (the reproduction adds no
dependencies), must share one event loop with the datagram transports
and the simulation pacing task, and needs exactly four content shapes:
HTML, plain text, JSON, and an SSE stream.  That is a small enough
surface to implement directly on :func:`asyncio.start_server` — each
connection carries one request (``Connection: close``), handlers are
coroutines returning a :class:`Response`, and an SSE handler returns a
:class:`EventStream` whose async iterator the connection loop drains
until the client goes away.

This is not a general web server: no keep-alive, no chunked request
bodies, no TLS.  It is the smallest correct carrier for ``/metrics``
scrapes, the dashboard, and the alert API.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..errors import ServeError

#: Request head (request line + headers) size bound, bytes.
MAX_HEAD_BYTES = 16384

#: Request body size bound, bytes (the alert API posts tiny payloads).
MAX_BODY_BYTES = 65536

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """One query parameter (last occurrence wins)."""
        return self.query.get(name, default)


@dataclass
class Response:
    """One complete response: status, content type, body."""

    status: int = 200
    content_type: str = "text/plain; charset=utf-8"
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def text(cls, body: str, status: int = 200) -> "Response":
        return cls(status=status, body=body.encode("utf-8"))

    @classmethod
    def html(cls, body: str, status: int = 200) -> "Response":
        return cls(
            status=status,
            content_type="text/html; charset=utf-8",
            body=body.encode("utf-8"),
        )

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "Response":
        return cls(
            status=status,
            content_type="application/json",
            body=(json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        head += [f"{name}: {value}" for name, value in self.headers.items()]
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + self.body


class EventStream:
    """A server-sent-events response: an async iterator of SSE frames.

    ``source`` yields already-formatted frames (see :func:`sse_frame`);
    the connection loop writes each as it arrives and stops when the
    client disconnects or the iterator ends.
    """

    content_type = "text/event-stream"

    def __init__(self, source: AsyncIterator[bytes]) -> None:
        self.source = source

    def encode_head(self) -> bytes:
        return (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )


def sse_frame(data: object, event: Optional[str] = None,
              id: Optional[str] = None) -> bytes:
    """Format one server-sent-events frame.

    ``data`` may be a string (multi-line strings become one ``data:``
    line per line, per the SSE wire format) or any JSON-able object,
    which is serialized compactly.  The returned bytes end with the
    blank line that terminates a frame.
    """
    if not isinstance(data, str):
        data = json.dumps(data, sort_keys=True, separators=(",", ":"))
    lines = []
    if event is not None:
        if "\n" in event or "\r" in event:
            raise ServeError(f"SSE event name may not span lines: {event!r}")
        lines.append(f"event: {event}")
    if id is not None:
        lines.append(f"id: {id}")
    for part in data.split("\n"):
        lines.append(f"data: {part}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


#: Handler signature: request -> Response or EventStream.
Handler = Callable[[Request], Awaitable[object]]


class HttpServer:
    """Route table plus the asyncio connection loop."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._routes: Dict[Tuple[str, str], Handler] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        #: Requests served, by status code (observability for tests).
        self.served: Dict[int, int] = {}

    def route(self, method: str, path: str, handler: Handler) -> None:
        """Bind a handler to an exact (method, path)."""
        key = (method.upper(), path)
        if key in self._routes:
            raise ServeError(f"route {key} already registered")
        self._routes[key] = handler

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port); the server must be started."""
        if self._server is None:
            raise ServeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ephemeral ``port=0``)."""
        return self.address[1]

    async def start(self) -> "HttpServer":
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        return self

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # start_server does not manage handler-task lifetimes: cancel any
        # connection still in flight (e.g. an SSE stream mid-drain) so
        # shutdown never leaks tasks into the caller's loop teardown.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling ----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            request = await self._read_request(reader)
            if request is None:
                await self._write_response(writer, Response.text("bad request", 400))
                return
            handler = self._routes.get((request.method, request.path))
            if handler is None:
                if any(path == request.path for _, path in self._routes):
                    await self._write_response(
                        writer, Response.text("method not allowed", 405)
                    )
                else:
                    await self._write_response(
                        writer, Response.text("not found", 404)
                    )
                return
            try:
                result = await handler(request)
            except Exception:  # noqa: BLE001 - a handler bug must not kill the loop
                await self._write_response(
                    writer, Response.text("internal error", 500)
                )
                return
            if isinstance(result, EventStream):
                await self._write_stream(writer, result)
            else:
                await self._write_response(writer, result)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Cancelled by stop(): finish cleanly rather than ending the
            # task CANCELLED, which asyncio.streams logs as an error.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Request]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return None
        if len(head) > MAX_HEAD_BYTES:
            return None
        try:
            text = head.decode("ascii")
        except UnicodeDecodeError:
            return None
        request_line, _, header_block = text.partition("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return None
        method, target = parts[0].upper(), parts[1]
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        headers: Dict[str, str] = {}
        for line in header_block.strip().split("\r\n"):
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                return None
            if n < 0 or n > MAX_BODY_BYTES:
                return None
            body = await reader.readexactly(n)
        return Request(
            method=method, path=split.path or "/", query=query,
            headers=headers, body=body,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        self.served[response.status] = self.served.get(response.status, 0) + 1
        writer.write(response.encode())
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, stream: EventStream
    ) -> None:
        self.served[200] = self.served.get(200, 0) + 1
        writer.write(stream.encode_head())
        await writer.drain()
        async for frame in stream.source:
            writer.write(frame)
            await writer.drain()


async def http_get(
    host: str, port: int, path: str, method: str = "GET"
) -> Tuple[int, Dict[str, str], bytes]:
    """One-shot HTTP client: ``(status, headers, body)``.

    Sized for tests, the CLI's self-probe, and the serving benchmark —
    one request per connection, which matches the server's
    ``Connection: close`` behaviour.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\nConnection: close\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("ascii", "replace").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = await reader.read()
        length = headers.get("content-length")
        if length is not None:
            body = body[: int(length)]
        return status, headers, body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
