"""repro.serve — the live thermal service.

The paper's Mercury/Freon deployment is a *continuously running* system:
sensors stream, daemons react, operators watch.  This package promotes
the reproduction from batch runs to that shape — one asyncio process
hosting a :class:`~repro.cluster.simulation.ClusterSimulation` on the
:mod:`repro.kernel` event loop and serving it live:

* :class:`~.service.ThermalService` — the HTTP plane: a ``/metrics``
  Prometheus scrape endpoint, a JSON API, an SSE stream feeding the
  self-contained HTML dashboard, and the alert API;
* :class:`~.alerts.AlertEngine` — threshold rules over T_h with
  hysteresis and a firing -> acknowledged -> resolved lifecycle, loaded
  from TOML/JSON files, exported as telemetry;
* :class:`~.datagrams.AsyncUdpSensorServer` /
  :class:`~.datagrams.AsyncAdmdListener` — the sensor and tempd -> admd
  wire protocols on asyncio datagram transports, so thousands of
  concurrent sensor flows share the loop with the scrape plane.

``repro serve`` on the command line wires it all together.
"""

from __future__ import annotations

from .alerts import (
    AlertEngine,
    AlertRule,
    Incident,
    default_rules,
    load_rules,
    parse_rules,
)
from .datagrams import AsyncAdmdListener, AsyncUdpSensorServer
from .http import (
    EventStream,
    HttpServer,
    Request,
    Response,
    http_get,
    sse_frame,
)
from .service import FRAME_EVERY, ThermalService

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Incident",
    "default_rules",
    "load_rules",
    "parse_rules",
    "AsyncAdmdListener",
    "AsyncUdpSensorServer",
    "EventStream",
    "HttpServer",
    "Request",
    "Response",
    "http_get",
    "sse_frame",
    "ThermalService",
    "FRAME_EVERY",
]
