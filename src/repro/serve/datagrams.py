"""Asyncio datagram transports for the sensor and tempd -> admd planes.

The thread-per-datagram ``socketserver`` endpoints in
:mod:`repro.sensors.server` and :mod:`repro.daemons.transport` are fine
for a handful of integration-test flows, but a live service hosting one
simulation and thousands of sensor clients wants every transport on one
event loop: no thread hand-offs, no per-datagram locks, and the HTTP
scrape plane sharing the same scheduler.  This module provides the
asyncio faces of the same two wire protocols:

* :class:`AsyncUdpSensorServer` — Mercury's solver-side sensor endpoint
  (``SensorQuery`` -> ``SensorReply``, ``UtilizationUpdate`` ingest)
  speaking the exact binary protocol of :mod:`repro.sensors.protocol`;
* :class:`AsyncAdmdListener` — Freon's admd endpoint decoding tempd JSON
  datagrams into :class:`~repro.daemons.tempd.TempdMessage` deliveries.

Both bind ephemeral ports by default (``port=0``) and expose the
actually-bound ``address``/``port``, so concurrent tests and services
never collide.  The existing threaded endpoints remain for callers
without an event loop; the wire formats are byte-identical.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Tuple

from ..daemons.tempd import TempdMessage
from ..daemons.transport import decode_message
from ..errors import SensorError, ServeError
from ..sensors import protocol
from ..sensors.server import SensorService
from ..telemetry import ensure as _ensure_telemetry


class _SensorProtocol(asyncio.DatagramProtocol):
    """Datagram face of a :class:`SensorService` on the event loop."""

    def __init__(self, owner: "AsyncUdpSensorServer") -> None:
        self.owner = owner
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        owner = self.owner
        owner.received += 1
        owner._tel_received.inc()
        try:
            if len(data) == protocol.QUERY_SIZE:
                reply = owner.service.handle_query(data)
                self.transport.sendto(reply, addr)
                owner.replied += 1
            elif len(data) == protocol.UPDATE_SIZE:
                owner.service.handle_update(data)
            else:
                # anything else: drop silently, like a real UDP service
                owner.malformed += 1
                owner._tel_malformed.inc()
        except SensorError:
            owner.malformed += 1
            owner._tel_malformed.inc()


class AsyncUdpSensorServer:
    """The sensor service's UDP endpoint on the running event loop.

    The wrapped :class:`SensorService` keeps its internal lock, so the
    same service instance may simultaneously serve this endpoint, the
    threaded :class:`~repro.sensors.server.UdpSensorServer`, and
    in-process callers.

    Use as an async context manager, or call :meth:`start`/:meth:`stop`::

        server = await AsyncUdpSensorServer(service).start()
        host, port = server.address
        ...
        await server.stop()
    """

    def __init__(
        self,
        service: SensorService,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
    ) -> None:
        self.service = service
        self._host = host
        self._port = port
        self._transport: Optional[asyncio.DatagramTransport] = None
        telemetry = _ensure_telemetry(telemetry)
        self._tel_received = telemetry.counter(
            "serve_sensor_datagrams_total",
            help="Datagrams received on the asyncio sensor endpoint.",
        )
        self._tel_malformed = telemetry.counter(
            "serve_sensor_datagrams_malformed_total",
            help="Sensor datagrams dropped as malformed or unservable.",
        )
        #: Plain counters for tests and ops visibility.
        self.received = 0
        self.replied = 0
        self.malformed = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port); the endpoint must be started."""
        if self._transport is None:
            raise ServeError("sensor endpoint not started")
        return self._transport.get_extra_info("sockname")[:2]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ephemeral ``port=0``)."""
        return self.address[1]

    async def start(self) -> "AsyncUdpSensorServer":
        if self._transport is not None:
            raise ServeError("sensor endpoint already started")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _SensorProtocol(self),
            local_addr=(self._host, self._port),
        )
        return self

    async def stop(self) -> None:
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    async def __aenter__(self) -> "AsyncUdpSensorServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()


class _AdmdProtocol(asyncio.DatagramProtocol):
    """Datagram face of admd's ``deliver`` on the event loop."""

    def __init__(self, owner: "AsyncAdmdListener") -> None:
        self.owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        owner = self.owner
        try:
            message = decode_message(data)
        except SensorError:
            owner.malformed += 1
            owner._tel_malformed.inc()
            return
        # Single-threaded by construction: the event loop serializes
        # datagrams, so no deliver lock is needed here.
        owner.deliver(message)
        owner.received += 1
        owner._tel_received.inc()


class AsyncAdmdListener:
    """admd's UDP endpoint on the running event loop.

    The telemetry counter names match the threaded
    :class:`~repro.daemons.transport.AdmdListener`, so dashboards see one
    message plane regardless of transport.
    """

    def __init__(
        self,
        deliver: Callable[[TempdMessage], None],
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry=None,
    ) -> None:
        self.deliver = deliver
        self._host = host
        self._port = port
        self._transport: Optional[asyncio.DatagramTransport] = None
        telemetry = _ensure_telemetry(telemetry)
        self._tel_received = telemetry.counter(
            "freon_udp_messages_received_total",
            help="tempd messages received and delivered to admd.",
        )
        self._tel_malformed = telemetry.counter(
            "freon_udp_messages_malformed_total",
            help="UDP datagrams dropped as malformed.",
        )
        self.received = 0
        self.malformed = 0

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port); the listener must be started."""
        if self._transport is None:
            raise ServeError("admd endpoint not started")
        return self._transport.get_extra_info("sockname")[:2]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ephemeral ``port=0``)."""
        return self.address[1]

    async def start(self) -> "AsyncAdmdListener":
        if self._transport is not None:
            raise ServeError("admd endpoint already started")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _AdmdProtocol(self),
            local_addr=(self._host, self._port),
        )
        return self

    async def stop(self) -> None:
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    async def __aenter__(self) -> "AsyncAdmdListener":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()
