"""The live service's dashboards: streaming HTML page and text fallback.

Two renderings of the same state, one per consumer:

* :func:`render_html` — a single self-contained page (inline CSS + JS,
  no external assets, so it works on an air-gapped lab network) that
  subscribes to the service's ``/stream`` SSE endpoint and draws the
  Figure 11-style per-machine CPU temperature traces on a canvas, the
  per-machine status table, and the alert list with acknowledge buttons;
* :func:`render_text` — the ``repro top`` frame
  (:func:`repro.telemetry.dashboard.render`) plus an alert footer, for
  ``curl``, CI logs, and terminals (served at ``/dashboard.txt``).
"""

from __future__ import annotations

from typing import List

from ..telemetry.dashboard import render as _render_metrics

#: Template placeholders: {title}, {threshold}.
_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font-family: ui-monospace, Menlo, Consolas, monospace;
         background: #111418; color: #d7dce2; margin: 1.5rem; }}
  h1 {{ font-size: 1.1rem; font-weight: 600; }}
  .meta {{ color: #8b949e; margin-bottom: 1rem; }}
  canvas {{ background: #161b22; border: 1px solid #30363d; width: 100%;
            height: 260px; }}
  table {{ border-collapse: collapse; margin-top: 1rem; width: 100%; }}
  th, td {{ text-align: left; padding: 0.25rem 0.9rem 0.25rem 0;
            border-bottom: 1px solid #21262d; font-size: 0.85rem; }}
  th {{ color: #8b949e; font-weight: 500; }}
  .alert-firing {{ color: #f85149; }}
  .alert-acked {{ color: #d29922; }}
  .alert-ok {{ color: #3fb950; }}
  button {{ background: #21262d; color: #d7dce2; border: 1px solid #30363d;
            border-radius: 4px; cursor: pointer; font: inherit;
            padding: 0.1rem 0.5rem; }}
  #alerts li {{ margin: 0.15rem 0; list-style: none; }}
  #alerts ul {{ padding: 0; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div class="meta">
  sim time <span id="simtime">-</span> s &middot;
  active servers <span id="active">-</span> &middot;
  dropped <span id="dropped">-</span> req/s &middot;
  stream <span id="link">connecting&hellip;</span>
</div>
<canvas id="chart" width="960" height="260"></canvas>
<div id="alerts"><ul></ul></div>
<table>
  <thead><tr>
    <th>machine</th><th>state</th><th>cpu &deg;C</th><th>disk &deg;C</th>
    <th>weight</th><th>connections</th>
  </tr></thead>
  <tbody id="machines"></tbody>
</table>
<script>
"use strict";
const THRESHOLD = {threshold};
const WINDOW = 600;           // points kept per machine
const series = new Map();     // machine -> [[t, cpu], ...]
const colors = ["#58a6ff", "#3fb950", "#d29922", "#f85149",
                "#bc8cff", "#39c5cf", "#d2a8ff", "#ffa657"];

function colorFor(name) {{
  const names = [...series.keys()].sort();
  return colors[names.indexOf(name) % colors.length];
}}

function drawChart() {{
  const canvas = document.getElementById("chart");
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  let tMin = Infinity, tMax = -Infinity, yMin = Infinity, yMax = -Infinity;
  for (const points of series.values()) {{
    for (const [t, y] of points) {{
      tMin = Math.min(tMin, t); tMax = Math.max(tMax, t);
      yMin = Math.min(yMin, y); yMax = Math.max(yMax, y);
    }}
  }}
  if (!isFinite(tMin) || tMax <= tMin) return;
  yMin = Math.min(yMin, THRESHOLD) - 2; yMax = Math.max(yMax, THRESHOLD) + 2;
  const X = t => (t - tMin) / (tMax - tMin) * (canvas.width - 20) + 10;
  const Y = y => canvas.height - 15
      - (y - yMin) / (yMax - yMin) * (canvas.height - 30);
  ctx.strokeStyle = "#f85149"; ctx.setLineDash([4, 4]);
  ctx.beginPath(); ctx.moveTo(10, Y(THRESHOLD));
  ctx.lineTo(canvas.width - 10, Y(THRESHOLD)); ctx.stroke();
  ctx.setLineDash([]);
  ctx.fillStyle = "#8b949e"; ctx.font = "11px monospace";
  ctx.fillText("T_h " + THRESHOLD + "\\u00b0C", 14, Y(THRESHOLD) - 4);
  for (const [name, points] of series) {{
    ctx.strokeStyle = colorFor(name);
    ctx.beginPath();
    points.forEach(([t, y], i) => {{
      if (i === 0) ctx.moveTo(X(t), Y(y)); else ctx.lineTo(X(t), Y(y));
    }});
    ctx.stroke();
    const last = points[points.length - 1];
    ctx.fillStyle = colorFor(name);
    ctx.fillText(name, X(last[0]) - 55, Y(last[1]) - 4);
  }}
}}

function renderMachines(frame) {{
  const rows = Object.keys(frame.servers).sort().map(name => {{
    const s = frame.servers[name];
    const hot = s.cpu_temperature >= THRESHOLD ? " class=\\"alert-firing\\"" : "";
    return `<tr><td>${{name}}</td><td>${{s.state}}</td>` +
      `<td${{hot}}>${{s.cpu_temperature.toFixed(1)}}</td>` +
      `<td>${{s.disk_temperature.toFixed(1)}}</td>` +
      `<td>${{s.weight.toFixed(2)}}</td>` +
      `<td>${{s.connections.toFixed(0)}}</td></tr>`;
  }});
  document.getElementById("machines").innerHTML = rows.join("");
}}

function renderAlerts(alerts) {{
  const items = alerts.map(a => {{
    const cls = "alert-" + a.state;
    const ack = a.state === "firing"
      ? ` <button onclick="ack('${{a.rule}}','${{a.machine}}')">ack</button>`
      : "";
    return `<li class="${{cls}}">[${{a.state}}] ${{a.rule}} on ` +
           `${{a.machine}} (${{a.value === null ? "-" :
             a.value.toFixed(1)}}\\u00b0C)${{ack}}</li>`;
  }});
  document.getElementById("alerts").firstElementChild.innerHTML =
      items.join("") || "<li class=\\"alert-ok\\">no alerts evaluated</li>";
}}

async function ack(rule, machine) {{
  await fetch(`/api/alerts/ack?rule=${{encodeURIComponent(rule)}}` +
              `&machine=${{encodeURIComponent(machine)}}`, {{method: "POST"}});
}}

const stream = new EventSource("/stream");
stream.onopen = () => document.getElementById("link").textContent = "live";
stream.onerror = () => document.getElementById("link").textContent = "lost";
stream.addEventListener("tick", e => {{
  const frame = JSON.parse(e.data);
  document.getElementById("simtime").textContent = frame.time.toFixed(0);
  document.getElementById("active").textContent = frame.active_servers;
  document.getElementById("dropped").textContent =
      frame.dropped_rate.toFixed(2);
  for (const [name, s] of Object.entries(frame.servers)) {{
    if (!series.has(name)) series.set(name, []);
    const points = series.get(name);
    points.push([frame.time, s.cpu_temperature]);
    if (points.length > WINDOW) points.shift();
  }}
  renderMachines(frame);
  if (frame.alerts) renderAlerts(frame.alerts);
  drawChart();
}});
</script>
</body>
</html>
"""


def render_html(title: str = "repro serve", threshold: float = 67.0) -> str:
    """The self-contained streaming dashboard page."""
    return _PAGE.format(title=title, threshold=f"{threshold:g}")


def render_text(telemetry, alerts: List[dict], width: int = 80) -> str:
    """The ``repro top`` frame plus an alert footer (``/dashboard.txt``)."""
    frame = _render_metrics(telemetry, width=width)
    lines = [frame, "", "ALERTS"]
    if alerts:
        for entry in alerts:
            value = entry.get("value")
            shown = "-" if value is None else f"{value:.1f}C"
            lines.append(
                f"  [{entry['state']:>6}] {entry['rule']} "
                f"on {entry['machine']} ({shown})"
            )
    else:
        lines.append("  (no alerts evaluated)")
    return "\n".join(lines)
