"""The live thermal service: one simulation, one event loop, many clients.

:class:`ThermalService` hosts a :class:`~repro.cluster.simulation.
ClusterSimulation` and serves its state over HTTP while the simulation
runs.  Two loops share one process without threads:

* the **simulation loop** is the :mod:`repro.kernel` event kernel,
  advanced in chunks of ticks by an asyncio task (:meth:`serve`) —
  real-time-paced (``pace`` simulated seconds per wall second) or
  free-running (``pace=0``, yield between chunks);
* the **I/O loop** is asyncio: the HTTP routes below, the SSE broadcast,
  and (optionally) the :mod:`repro.serve.datagrams` UDP endpoints all
  interleave with the simulation chunks, so a scrape never blocks a tick
  and a tick never blocks a scrape for longer than one chunk.

Routes::

    GET  /                   streaming HTML dashboard
    GET  /dashboard.txt      text dashboard (repro top frame + alerts)
    GET  /metrics            Prometheus text exposition of the registry
    GET  /healthz            liveness probe
    GET  /stream             server-sent events: tick + alert frames
    GET  /api/status         service + simulation summary
    GET  /api/series         recent per-machine Fig11/12 series
    GET  /api/alerts         alert states and incident history
    POST /api/alerts/ack     acknowledge a firing alert

The service only *reads* simulation state between ticks, so a run with
the service attached is tick-for-tick byte-identical to the same run
without it (the golden-trace test under ``tests/serve`` pins this).
"""

from __future__ import annotations

import asyncio
import time as _time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..cluster.simulation import ClusterSimulation, TickRecord
from ..errors import ServeError
from ..telemetry import Telemetry
from ..telemetry.exposition import CONTENT_TYPE_LATEST, to_prometheus
from . import dashboard
from .alerts import AlertEngine, default_rules
from .http import EventStream, HttpServer, Request, Response, sse_frame

#: Default simulated seconds between frames (matches the simulation's
#: telemetry sample period, so SSE and the event stream stay in step).
FRAME_EVERY = 5.0

#: Wall-clock ceiling between pacing checks, seconds.
PACE_INTERVAL = 0.25


def _frame_of(record: TickRecord, alerts: List[dict]) -> Dict[str, object]:
    """One JSON-able dashboard frame from a tick record."""
    return {
        "time": record.time,
        "offered_rate": record.offered_rate,
        "dropped_rate": record.dropped_rate,
        "active_servers": record.active_servers,
        "servers": {
            name: {
                "state": server.state,
                "cpu_temperature": server.cpu_temperature,
                "disk_temperature": server.disk_temperature,
                "weight": server.weight,
                "connections": server.connections,
            }
            for name, server in record.servers.items()
        },
        "alerts": alerts,
    }


class ThermalService:
    """HTTP/SSE/alerting plane over one hosted cluster simulation."""

    def __init__(
        self,
        simulation: ClusterSimulation,
        alerts: Optional[AlertEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        history: int = 720,
        title: str = "repro serve",
    ) -> None:
        if history <= 0:
            raise ServeError(f"history must be positive, got {history!r}")
        self.simulation = simulation
        # /metrics serves the simulation's registry when the simulation
        # was built with telemetry; otherwise the service keeps its own
        # registry so the serve-plane metrics always exist.  Construct
        # the simulation with ``telemetry=Telemetry()`` for full depth.
        self.telemetry = (
            simulation.telemetry if simulation.telemetry.enabled
            else Telemetry()
        )
        self.alerts = alerts if alerts is not None else AlertEngine(
            default_rules(
                threshold=simulation.config.high("cpu"),
                clear_below=simulation.config.low("cpu"),
            ),
            telemetry=self.telemetry,
        )
        self.title = title
        #: Recent frames for /api/series and late-joining dashboards.
        self.frames: Deque[Dict[str, object]] = deque(maxlen=history)
        self._subscribers: Set[asyncio.Queue] = set()
        self.http = HttpServer(host=host, port=port)
        self._route_all()
        self.done = False
        self._tel_frames = self.telemetry.counter(
            "serve_frames_total", help="Dashboard frames broadcast.",
        )
        self._tel_scrapes = self.telemetry.counter(
            "serve_scrapes_total", help="/metrics scrapes served.",
        )
        self._tel_subscribers = self.telemetry.gauge(
            "serve_stream_subscribers", help="Live SSE subscribers.",
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port) of the HTTP plane."""
        return self.http.address

    @property
    def port(self) -> int:
        """The actually-bound HTTP port (useful with ephemeral ``port=0``)."""
        return self.http.port

    async def start(self) -> "ThermalService":
        """Bind the HTTP plane (the simulation does not advance yet)."""
        await self.http.start()
        return self

    async def stop(self) -> None:
        """Close the HTTP plane and end every SSE stream."""
        for queue in list(self._subscribers):
            queue.put_nowait(None)
        await self.http.stop()

    async def __aenter__(self) -> "ThermalService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- simulation driving ------------------------------------------------

    def advance(self, ticks: int = 1) -> Dict[str, object]:
        """Advance the hosted simulation and broadcast one frame.

        Steps the kernel ``ticks`` solver ticks, evaluates the alert
        rules against the sensor plane at the new simulated time, and
        pushes the resulting frame to the history ring and every SSE
        subscriber.  Returns the frame.  Synchronous on purpose: the
        serving task calls it between awaits, and tests call it directly
        for deterministic stepping.
        """
        simulation = self.simulation
        for _ in range(ticks):
            simulation.step()
        transitions = self.alerts.evaluate(
            simulation.time,
            simulation.service.read_temperature,
            simulation.machines,
        )
        frame = _frame_of(simulation.records[-1], self.alerts.states())
        self.frames.append(frame)
        self._tel_frames.inc()
        self._broadcast(sse_frame(frame, event="tick"))
        for transition in transitions:
            self._broadcast(sse_frame(transition, event="alert"))
        return frame

    async def serve(
        self,
        duration: Optional[float] = None,
        pace: float = 0.0,
        frame_every: float = FRAME_EVERY,
    ) -> None:
        """Run the simulation for ``duration`` simulated seconds, serving.

        ``pace`` is simulated seconds per wall second; ``0`` means
        free-running (as fast as the solver goes, yielding to the event
        loop between chunks).  ``frame_every`` simulated seconds elapse
        between dashboard frames.  The HTTP plane must be started.
        """
        if pace < 0.0:
            raise ServeError(f"pace must be >= 0, got {pace!r}")
        if frame_every <= 0.0:
            raise ServeError(
                f"frame_every must be positive, got {frame_every!r}"
            )
        simulation = self.simulation
        if duration is None:
            duration = simulation.trace.duration
        chunk = max(1, int(round(frame_every / simulation.dt)))
        remaining = int(round(duration / simulation.dt))
        if pace == 0.0:
            while remaining > 0:
                step = min(chunk, remaining)
                self.advance(step)
                remaining -= step
                await asyncio.sleep(0)  # let scrapers and streams run
        else:
            wall_start = _time.monotonic()
            sim_start = simulation.time
            while remaining > 0:
                elapsed = _time.monotonic() - wall_start
                target = sim_start + elapsed * pace
                while remaining > 0 and simulation.time < target:
                    step = min(chunk, remaining)
                    self.advance(step)
                    remaining -= step
                if remaining > 0:
                    await asyncio.sleep(
                        min(frame_every / pace, PACE_INTERVAL)
                    )
        self.done = True
        self._broadcast(
            sse_frame({"time": simulation.time}, event="done")
        )

    # -- SSE ---------------------------------------------------------------

    def _broadcast(self, frame: bytes) -> None:
        for queue in list(self._subscribers):
            queue.put_nowait(frame)

    def _subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(queue)
        self._tel_subscribers.set(len(self._subscribers))
        return queue

    def _unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)
        self._tel_subscribers.set(len(self._subscribers))

    async def _stream_frames(self, queue: asyncio.Queue):
        try:
            yield sse_frame(
                {
                    "title": self.title,
                    "machines": list(self.simulation.machines),
                    "policy": self.simulation.policy,
                },
                event="hello",
            )
            if self.frames:
                yield sse_frame(self.frames[-1], event="tick")
            while True:
                frame = await queue.get()
                if frame is None:  # service stopping
                    return
                yield frame
        finally:
            self._unsubscribe(queue)

    # -- routes ------------------------------------------------------------

    def _route_all(self) -> None:
        self.http.route("GET", "/", self._page)
        self.http.route("GET", "/dashboard.txt", self._page_text)
        self.http.route("GET", "/metrics", self._metrics)
        self.http.route("GET", "/healthz", self._healthz)
        self.http.route("GET", "/stream", self._stream)
        self.http.route("GET", "/api/status", self._status)
        self.http.route("GET", "/api/series", self._series)
        self.http.route("GET", "/api/alerts", self._alerts)
        self.http.route("POST", "/api/alerts/ack", self._ack)

    async def _page(self, request: Request) -> Response:
        return Response.html(
            dashboard.render_html(
                title=self.title,
                threshold=self.simulation.config.high("cpu"),
            )
        )

    async def _page_text(self, request: Request) -> Response:
        width = int(request.param("width", "80"))
        return Response.text(
            dashboard.render_text(
                self.telemetry, self.alerts.states(), width=width
            )
            + "\n"
        )

    async def _metrics(self, request: Request) -> Response:
        self._tel_scrapes.inc()
        return Response(
            content_type=CONTENT_TYPE_LATEST,
            body=to_prometheus(self.telemetry.registry).encode("utf-8"),
        )

    async def _healthz(self, request: Request) -> Response:
        return Response.json({"ok": True, "time": self.simulation.time})

    async def _stream(self, request: Request) -> EventStream:
        return EventStream(self._stream_frames(self._subscribe()))

    async def _status(self, request: Request) -> Response:
        states = self.alerts.states()
        return Response.json(
            {
                "title": self.title,
                "policy": self.simulation.policy,
                "mode": self.simulation.mode,
                "machines": list(self.simulation.machines),
                "time": self.simulation.time,
                "ticks": len(self.simulation.records),
                "done": self.done,
                "frames": len(self.frames),
                "alerts": {
                    "firing": sum(1 for s in states if s["state"] == "firing"),
                    "acked": sum(1 for s in states if s["state"] == "acked"),
                    "rules": len(self.alerts.rules),
                },
            }
        )

    async def _series(self, request: Request) -> Response:
        machine = request.param("machine")
        if machine is not None and machine not in self.simulation.machines:
            return Response.json(
                {"error": f"unknown machine {machine!r}"}, status=404
            )
        try:
            points = int(request.param("points", "0"))
        except ValueError:
            return Response.json({"error": "points must be an int"}, 400)
        frames = list(self.frames)
        if points > 0:
            frames = frames[-points:]
        machines = (
            [machine] if machine is not None
            else list(self.simulation.machines)
        )
        series = {
            name: {
                "cpu": [f["servers"][name]["cpu_temperature"] for f in frames],
                "disk": [
                    f["servers"][name]["disk_temperature"] for f in frames
                ],
                "weight": [f["servers"][name]["weight"] for f in frames],
            }
            for name in machines
        }
        return Response.json(
            {
                "times": [f["time"] for f in frames],
                "active_servers": [f["active_servers"] for f in frames],
                "dropped_rate": [f["dropped_rate"] for f in frames],
                "series": series,
            }
        )

    async def _alerts(self, request: Request) -> Response:
        return Response.json(
            {
                "states": self.alerts.states(),
                "incidents": [i.to_dict() for i in self.alerts.incidents],
            }
        )

    async def _ack(self, request: Request) -> Response:
        rule = request.param("rule")
        machine = request.param("machine")
        if not rule or not machine:
            return Response.json(
                {"error": "rule and machine parameters required"}, 400
            )
        changed = self.alerts.ack(rule, machine, self.simulation.time)
        if not changed:
            return Response.json(
                {"error": f"no firing alert {rule!r} on {machine!r}"}, 404
            )
        return Response.json({"acked": True, "rule": rule, "machine": machine})
