"""Threshold alerting over live component temperatures.

Freon reacts to a crossed threshold by reshaping load; the operators in
the loop need the complementary signal — "machine1's CPU has been over
T_h for a minute" — delivered as an alert with a lifecycle, not a log
line.  This module provides that plane for the live service:

* :class:`AlertRule` — a declarative threshold over one component with a
  hysteresis band (``threshold`` fires, ``clear_below`` resolves) and an
  optional ``hold`` time the condition must persist before firing;
* :class:`AlertEngine` — evaluates every rule against the latest sensor
  readings on the simulation clock and drives each (rule, machine) pair
  through the ``ok -> firing -> acknowledged -> resolved`` lifecycle;
* :func:`load_rules` — rules from a TOML or JSON file.

Alert state is itself telemetry: the engine exports an
``alert_state{rule=...,machine=...}`` gauge (0 ok, 1 firing, 2 acked)
plus fired/acked/resolved counters, so the alert plane shows up in the
same ``/metrics`` scrape as the temperatures it watches.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import AlertRuleError, SensorError

#: Lifecycle states of one (rule, machine) pair.
STATE_OK = "ok"
STATE_FIRING = "firing"
STATE_ACKED = "acked"

#: Gauge encoding of the lifecycle, exported per (rule, machine).
STATE_VALUES = {STATE_OK: 0.0, STATE_FIRING: 1.0, STATE_ACKED: 2.0}

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_.:-]*$")

#: Keys a rule table/object may carry.
_RULE_FIELDS = frozenset(
    {"name", "component", "threshold", "clear_below", "hold", "machines"}
)


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule.

    ``threshold`` is the firing bound (inclusive, like Freon's T_h
    check); ``clear_below`` is the resolve bound (exclusive).  The band
    between them is the hysteresis: a reading inside it preserves
    whatever state the pair is in, so a temperature dithering around T_h
    does not flap the alert.  ``hold`` seconds of continuous exceedance
    are required before firing (0 = fire on the first hot reading).
    ``machines`` is the explicit target list, or ``None`` for every
    machine the service hosts.
    """

    name: str
    threshold: float
    component: str = "cpu"
    clear_below: Optional[float] = None
    hold: float = 0.0
    machines: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise AlertRuleError(f"invalid alert rule name {self.name!r}")
        if self.clear_below is None:
            object.__setattr__(self, "clear_below", self.threshold - 2.0)
        if not self.clear_below < self.threshold:  # also rejects NaN
            raise AlertRuleError(
                f"rule {self.name!r}: clear_below ({self.clear_below!r}) "
                f"must be below threshold ({self.threshold!r})"
            )
        if self.hold < 0.0:
            raise AlertRuleError(
                f"rule {self.name!r}: hold must be non-negative, "
                f"got {self.hold!r}"
            )
        if self.machines is not None and not self.machines:
            raise AlertRuleError(
                f"rule {self.name!r}: machines must be omitted (= all) "
                f"or non-empty"
            )

    def targets(self, machines: Sequence[str]) -> Tuple[str, ...]:
        """The machines this rule watches, given the service's fleet."""
        if self.machines is None:
            return tuple(machines)
        return self.machines


@dataclass
class Incident:
    """One completed or in-flight firing of a rule on a machine."""

    rule: str
    machine: str
    component: str
    fired_at: float
    value: float
    #: Highest reading observed while the incident was open.
    peak: float
    acked_at: Optional[float] = None
    resolved_at: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "machine": self.machine,
            "component": self.component,
            "fired_at": self.fired_at,
            "value": self.value,
            "peak": self.peak,
            "acked_at": self.acked_at,
            "resolved_at": self.resolved_at,
        }


@dataclass
class _PairState:
    """Mutable lifecycle state of one (rule, machine) pair."""

    state: str = STATE_OK
    #: Simulated time the current exceedance started (for ``hold``).
    over_since: Optional[float] = None
    #: Last reading the engine evaluated for this pair.
    last_value: Optional[float] = None
    incident: Optional[Incident] = None


#: Reader signature: (machine, component) -> temperature in Celsius.
Reader = Callable[[str, str], float]


class AlertEngine:
    """Evaluates alert rules and owns every pair's lifecycle.

    ``evaluate`` is called from the service's simulation loop with the
    current simulated time and a temperature reader (normally the sensor
    service's — a reading a fault injector is corrupting is exactly what
    a real alerting plane would see).  A reader raising
    :class:`~repro.errors.SensorError` (an injected dropout) leaves that
    pair's state untouched, the same stale-data posture tempd takes.
    """

    def __init__(self, rules: Iterable[AlertRule], telemetry=None) -> None:
        from ..telemetry import ensure as _ensure_telemetry

        self.rules: List[AlertRule] = list(rules)
        names = [rule.name for rule in self.rules]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise AlertRuleError(f"duplicate alert rule names: {dupes}")
        self.telemetry = _ensure_telemetry(telemetry)
        self._pairs: Dict[Tuple[str, str], _PairState] = {}
        #: Closed and open incidents, oldest first.
        self.incidents: List[Incident] = []

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, now: float, read: Reader, machines: Sequence[str]
    ) -> List[Dict[str, object]]:
        """Evaluate every rule; returns the transitions that occurred.

        Each transition is a dict ``{"rule", "machine", "state", "value",
        "time"}`` — the raw material for SSE ``alert`` frames.
        """
        transitions: List[Dict[str, object]] = []
        for rule in self.rules:
            for machine in rule.targets(machines):
                try:
                    value = read(machine, rule.component)
                except SensorError:
                    continue  # dropout: hold the current state
                pair = self._pairs.setdefault(
                    (rule.name, machine), _PairState()
                )
                pair.last_value = value
                transition = self._step_pair(rule, machine, pair, now, value)
                if transition is not None:
                    transitions.append(transition)
        return transitions

    def _step_pair(
        self,
        rule: AlertRule,
        machine: str,
        pair: _PairState,
        now: float,
        value: float,
    ) -> Optional[Dict[str, object]]:
        if pair.incident is not None and value > pair.incident.peak:
            pair.incident.peak = value
        if pair.state == STATE_OK:
            if value >= rule.threshold:
                if pair.over_since is None:
                    pair.over_since = now
                if now - pair.over_since >= rule.hold:
                    return self._fire(rule, machine, pair, now, value)
            else:
                pair.over_since = None
            return None
        # firing or acked: resolve only below the hysteresis floor.
        if value < rule.clear_below:
            return self._resolve(rule, machine, pair, now, value)
        return None

    def _fire(
        self,
        rule: AlertRule,
        machine: str,
        pair: _PairState,
        now: float,
        value: float,
    ) -> Dict[str, object]:
        pair.state = STATE_FIRING
        pair.incident = Incident(
            rule=rule.name,
            machine=machine,
            component=rule.component,
            fired_at=now,
            value=value,
            peak=value,
        )
        self.incidents.append(pair.incident)
        self.telemetry.counter(
            "alerts_fired_total", {"rule": rule.name, "machine": machine},
            help="Alert incidents opened.",
        ).inc()
        self._set_state_gauge(rule.name, machine, STATE_FIRING)
        self.telemetry.event(
            "alert_fired", "serve", rule=rule.name, machine=machine,
            value=value,
        )
        return {
            "rule": rule.name, "machine": machine, "state": STATE_FIRING,
            "value": value, "time": now,
        }

    def _resolve(
        self,
        rule: AlertRule,
        machine: str,
        pair: _PairState,
        now: float,
        value: float,
    ) -> Dict[str, object]:
        if pair.incident is not None:
            pair.incident.resolved_at = now
        pair.state = STATE_OK
        pair.over_since = None
        pair.incident = None
        self.telemetry.counter(
            "alerts_resolved_total", {"rule": rule.name, "machine": machine},
            help="Alert incidents resolved.",
        ).inc()
        self._set_state_gauge(rule.name, machine, STATE_OK)
        self.telemetry.event(
            "alert_resolved", "serve", rule=rule.name, machine=machine,
            value=value,
        )
        return {
            "rule": rule.name, "machine": machine, "state": STATE_OK,
            "value": value, "time": now,
        }

    def _set_state_gauge(self, rule: str, machine: str, state: str) -> None:
        self.telemetry.gauge(
            "alert_state",
            {"rule": rule, "machine": machine},
            help="Alert lifecycle per rule and machine "
                 "(0 ok, 1 firing, 2 acknowledged).",
        ).set(STATE_VALUES[state])

    # -- operator actions --------------------------------------------------

    def ack(self, rule: str, machine: str, now: float) -> bool:
        """Acknowledge a firing alert; returns whether anything changed.

        An acknowledged alert stays silent while the condition persists
        and resolves normally once the reading drops below the
        hysteresis floor; a *new* exceedance after that resolve opens a
        fresh (unacknowledged) incident.
        """
        pair = self._pairs.get((rule, machine))
        if pair is None or pair.state != STATE_FIRING:
            return False
        pair.state = STATE_ACKED
        if pair.incident is not None:
            pair.incident.acked_at = now
        self.telemetry.counter(
            "alerts_acked_total", {"rule": rule, "machine": machine},
            help="Alert incidents acknowledged.",
        ).inc()
        self._set_state_gauge(rule, machine, STATE_ACKED)
        self.telemetry.event(
            "alert_acked", "serve", rule=rule, machine=machine,
        )
        return True

    # -- introspection -----------------------------------------------------

    def states(self) -> List[Dict[str, object]]:
        """Every evaluated (rule, machine) pair's current state, sorted."""
        out = []
        for (rule, machine) in sorted(self._pairs):
            pair = self._pairs[(rule, machine)]
            out.append(
                {
                    "rule": rule,
                    "machine": machine,
                    "state": pair.state,
                    "value": pair.last_value,
                }
            )
        return out

    def active(self) -> List[Incident]:
        """Open incidents (firing or acknowledged), oldest first."""
        return [i for i in self.incidents if i.resolved_at is None]


# -- rule files -------------------------------------------------------------


def _rule_from_mapping(data: object, where: str) -> AlertRule:
    if not isinstance(data, dict):
        raise AlertRuleError(f"{where}: rule must be a table/object")
    unknown = sorted(set(data) - _RULE_FIELDS)
    if unknown:
        raise AlertRuleError(f"{where}: unknown rule fields {unknown}")
    if "name" not in data or "threshold" not in data:
        raise AlertRuleError(f"{where}: rule needs 'name' and 'threshold'")
    machines = data.get("machines")
    if machines is not None:
        if not isinstance(machines, list) or not all(
            isinstance(m, str) for m in machines
        ):
            raise AlertRuleError(f"{where}: machines must be a list of names")
        machines = tuple(machines)
    try:
        return AlertRule(
            name=str(data["name"]),
            threshold=float(data["threshold"]),
            component=str(data.get("component", "cpu")),
            clear_below=(
                None if data.get("clear_below") is None
                else float(data["clear_below"])
            ),
            hold=float(data.get("hold", 0.0)),
            machines=machines,
        )
    except (TypeError, ValueError) as exc:
        raise AlertRuleError(f"{where}: {exc}") from None


def parse_rules(data: object, source: str = "<rules>") -> List[AlertRule]:
    """Validate a decoded rule document: ``{"rule": [...]}``/``{"rules": [...]}``."""
    if not isinstance(data, dict):
        raise AlertRuleError(f"{source}: rule file must be a table/object")
    entries = data.get("rule", data.get("rules"))
    if entries is None:
        raise AlertRuleError(
            f"{source}: no rules found (use [[rule]] tables in TOML or a "
            f'"rules" array in JSON)'
        )
    if not isinstance(entries, list):
        raise AlertRuleError(f"{source}: rules must be an array of tables")
    rules = [
        _rule_from_mapping(entry, f"{source} rule #{index + 1}")
        for index, entry in enumerate(entries)
    ]
    names = [rule.name for rule in rules]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise AlertRuleError(f"{source}: duplicate alert rule names: {dupes}")
    return rules


def load_rules(path) -> List[AlertRule]:
    """Load alert rules from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py<3.11 fallback
            raise AlertRuleError(
                f"{path}: TOML rule files need python >= 3.11 (tomllib); "
                f"use JSON instead"
            ) from exc
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise AlertRuleError(f"{path}: invalid TOML: {exc}") from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AlertRuleError(f"{path}: invalid JSON: {exc}") from None
    return parse_rules(data, source=str(path))


def default_rules(
    threshold: float = 67.0, clear_below: float = 65.0
) -> List[AlertRule]:
    """The built-in rule set: CPU over the Freon T_h on any machine."""
    return [
        AlertRule(
            name="cpu_over_threshold",
            component="cpu",
            threshold=threshold,
            clear_below=clear_below,
        )
    ]
