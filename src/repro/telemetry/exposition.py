"""Exporters: Prometheus text-format snapshots and JSONL streams.

Two consumers, two formats.  ``to_prometheus`` renders the registry as
a text-format exposition snapshot (``# HELP``/``# TYPE`` headers, one
sample per line, histogram ``_bucket``/``_sum``/``_count`` expansion)
that any Prometheus-compatible scraper or ``promtool`` can ingest.
``write_jsonl`` streams the event log plus a final dump of every metric
value, one JSON object per line — the raw material for the paper's
Figure 11/12 time series.

``parse_prometheus`` is the inverse of ``to_prometheus`` for the subset
this module emits; the round-trip test leans on it.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, TextIO, Tuple, Union

from ..errors import TelemetryError
from .registry import family_samples

_LabelKey = Tuple[Tuple[str, str], ...]

#: The Content-Type a scrape endpoint must answer with for the text
#: exposition format this module renders (Prometheus text format 0.0.4).
CONTENT_TYPE_LATEST = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _render_labels(labels: _LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus(registry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for name, labels, value in family_samples(family):
            lines.append(
                f"{name}{_render_labels(labels)} {_render_value(value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(text: str) -> _LabelKey:
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise TelemetryError(f"unquoted label value in {text!r}")
        j = eq + 2
        raw: List[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                raw.append(text[j : j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise TelemetryError(f"unterminated label value in {text!r}")
        labels.append((name, _unescape_label_value("".join(raw))))
        i = j + 1
    return tuple(sorted(labels))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> Dict[Tuple[str, _LabelKey], float]:
    """Parse a text-format snapshot back into ``{(name, labels): value}``.

    Handles the subset :func:`to_prometheus` emits — enough for the
    exposition round-trip test to compare against the live registry.
    """
    samples: Dict[Tuple[str, _LabelKey], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            rest = line[line.index("{") + 1 :]
            close = rest.rindex("}")
            labels = _parse_labels(rest[:close])
            value = _parse_value(rest[close + 1 :].strip())
        else:
            name, value_text = line.rsplit(None, 1)
            labels = ()
            value = _parse_value(value_text)
        samples[(name, labels)] = value
    return samples


def write_snapshot(telemetry, path: Union[str, "object"]) -> None:
    """Write a Prometheus text-format snapshot of ``telemetry`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(telemetry.registry))


def _event_row(event) -> Dict[str, object]:
    row = asdict(event)
    row["type"] = row.pop("kind")
    if row.get("duration") is None:
        row.pop("duration", None)
    return row


def dump_jsonl(telemetry, stream: TextIO) -> int:
    """Stream every event, then final metric values, as JSONL rows.

    Event rows carry ``type: "event" | "sample"``; the trailing metric
    rows carry ``type: "metric"`` with the flattened exposition samples
    so a consumer has the end-state registry without parsing the
    ``.prom`` snapshot.  Returns the number of rows written.
    """
    rows = 0
    for event in telemetry.events.events:
        stream.write(json.dumps(_event_row(event), sort_keys=True) + "\n")
        rows += 1
    for name, labels, value in telemetry.registry.samples():
        stream.write(
            json.dumps(
                {
                    "type": "metric",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                },
                sort_keys=True,
            )
            + "\n"
        )
        rows += 1
    return rows


def write_jsonl(telemetry, path: Union[str, "object"]) -> int:
    """Write the JSONL stream for ``telemetry`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        return dump_jsonl(telemetry, fh)
