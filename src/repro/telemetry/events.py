"""Structured event spans for discrete actions.

Metrics aggregate; events narrate.  Every discrete action worth
replaying — a fiddle edit, a fault injection, a Freon weight
adjustment, a region power-off, a watchdog restart, a compiled-engine
recompile — is emitted as one :class:`Event` carrying its component,
both timestamps, and free-form attributes.  The JSONL exporter streams
them in order, which is exactly the series Figures 11/12 are plotted
from.

The disabled path (:class:`NullEventLog`) records nothing and
allocates nothing per emit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(slots=True)
class Event:
    """One recorded action or periodic sample.

    ``kind`` is ``"event"`` for discrete actions and ``"sample"`` for
    periodic measurements; ``duration`` is wall-clock seconds for spans,
    ``None`` otherwise.
    """

    kind: str
    name: str
    component: str
    sim_time: float
    wall_time: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    duration: Optional[float] = None


class EventLog:
    """An append-only, in-order log of :class:`Event` records."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (
            lambda: 0.0
        )
        self.events: List[Event] = []

    def emit(self, name: str, component: str = "", **attrs: Any) -> Event:
        """Record a discrete action."""
        event = Event(
            kind="event",
            name=name,
            component=component,
            sim_time=self._clock(),
            wall_time=time.time(),
            attrs=attrs,
        )
        self.events.append(event)
        return event

    def sample(self, name: str, value: float, component: str = "",
               **attrs: Any) -> Event:
        """Record one point of a periodic time series."""
        attrs["value"] = value
        event = Event(
            kind="sample",
            name=name,
            component=component,
            sim_time=self._clock(),
            wall_time=time.time(),
            attrs=attrs,
        )
        self.events.append(event)
        return event

    @contextmanager
    def span(self, name: str, component: str = "",
             **attrs: Any) -> Iterator[Event]:
        """Record an action with its wall-clock duration.

        The event is appended on entry (so a crash mid-span still leaves
        a record) and its ``duration`` is filled in on exit.
        """
        event = self.emit(name, component, **attrs)
        start = time.perf_counter()
        try:
            yield event
        finally:
            event.duration = time.perf_counter() - start


class NullEventLog:
    """A disabled event log: emits vanish, spans cost nothing."""

    enabled = False
    #: Always empty; shared so reads are safe without isinstance checks.
    events: List[Event] = []

    def emit(self, name: str, component: str = "", **attrs: Any) -> None:
        return None

    def sample(self, name: str, value: float, component: str = "",
               **attrs: Any) -> None:
        return None

    @contextmanager
    def span(self, name: str, component: str = "",
             **attrs: Any) -> Iterator[None]:
        yield None


#: The one shared disabled event log.
NULL_EVENT_LOG = NullEventLog()
