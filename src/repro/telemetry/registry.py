"""Metric primitives: counters, gauges, and histograms with label sets.

A :class:`Registry` owns metric *families* (one per name); each family
owns *children* (one per label set).  Producers hold on to a child
handle — created once, at wiring time — and mutate it on the hot path
with plain attribute arithmetic, so an enabled registry costs a few
float operations per update and a disabled one (:class:`NullRegistry`)
costs a single no-op method call and allocates nothing.

Every child is timestamped on the **simulation** clock at each mutation
(the registry's ``clock`` callable, usually wired to the harness time) —
a plain attribute read, never a syscall.  The **wall** clock is stamped
lazily: reading a child's ``wall_time`` takes ``time.time()`` at that
moment, so snapshots and expositions carry the observation time while
the update hot path stays syscall-free and two runs of the same scenario
produce byte-identical snapshot data (which is what lets the parallel
sweep engine compare shards).

Metric and label names follow the Prometheus data model
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); values are floats.  Histograms use
cumulative ``le`` (less-or-equal) bucket semantics: an observation equal
to a bucket's upper bound lands *in* that bucket.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: General-purpose histogram buckets (dimensionless / seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets sized for per-tick solver latencies (seconds, 10 us - 1 s).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

LabelMap = Mapping[str, str]
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[LabelMap]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _LazyWallTime:
    """Mixin: ``wall_time`` is stamped when read, never when updated.

    Update paths (``inc``/``set``/``observe``) are hot — the compiled
    solver calls them every tick — so they must not pay a clock syscall,
    and two runs of the same scenario must leave bit-identical metric
    state behind.  The wall clock therefore carries *snapshot* semantics:
    reading it answers "when was this metric observed", not "when was it
    last updated".
    """

    __slots__ = ()

    @property
    def wall_time(self) -> float:
        """Wall-clock time of the read (i.e. snapshot/exposition time)."""
        return time.time()


class Counter(_LazyWallTime):
    """A monotonically increasing float."""

    __slots__ = ("labels", "value", "sim_time", "_clock")
    kind = "counter"

    def __init__(self, labels: _LabelKey, clock: Callable[[], float]) -> None:
        self.labels = labels
        self.value = 0.0
        self.sim_time = clock()
        self._clock = clock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0.0:
            raise TelemetryError("counters only go up; use a gauge")
        self.value += amount
        self.sim_time = self._clock()


class Gauge(_LazyWallTime):
    """A float that can go up and down."""

    __slots__ = ("labels", "value", "sim_time", "_clock")
    kind = "gauge"

    def __init__(self, labels: _LabelKey, clock: Callable[[], float]) -> None:
        self.labels = labels
        self.value = 0.0
        self.sim_time = clock()
        self._clock = clock

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value
        self.sim_time = self._clock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.set(self.value - amount)


class Histogram(_LazyWallTime):
    """A distribution with cumulative ``le`` buckets, a sum, and a count."""

    __slots__ = (
        "labels", "bounds", "bucket_counts", "sum", "count",
        "sim_time", "_clock",
    )
    kind = "histogram"

    def __init__(
        self,
        labels: _LabelKey,
        clock: Callable[[], float],
        bounds: Sequence[float],
    ) -> None:
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: Per-bucket (non-cumulative) counts; last slot is the +Inf bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.sim_time = clock()
        self._clock = clock

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        self.sim_time = self._clock()

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket, ending with the +Inf total."""
        out: List[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out

    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket upper bounds."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            if running >= target:
                return bound
        return float("inf")


class _Family:
    """One named metric family: kind, help text, children by label set."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(self, name: str, kind: str, help: str,
                 bounds: Optional[Tuple[float, ...]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.children: Dict[_LabelKey, object] = {}


class Registry:
    """A live collection of metric families.

    ``clock`` supplies the *simulation* timestamp stamped on every
    update (wall time is always ``time.time``).  The harness usually
    passes a callable reading its simulated clock; the default pins the
    simulation timestamp at 0.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (
            lambda: 0.0
        )
        self._families: Dict[str, _Family] = {}

    # -- metric creation ---------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                bounds: Optional[Tuple[float, ...]] = None) -> _Family:
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise TelemetryError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        elif kind == "histogram" and bounds is not None and family.bounds != bounds:
            raise TelemetryError(
                f"histogram {name!r} re-declared with different buckets"
            )
        return family

    def counter(self, name: str, labels: Optional[LabelMap] = None,
                help: str = "") -> Counter:
        """The counter child for ``(name, labels)``, created on first use."""
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Counter(key, self._clock)
            family.children[key] = child
        return child  # type: ignore[return-value]

    def gauge(self, name: str, labels: Optional[LabelMap] = None,
              help: str = "") -> Gauge:
        """The gauge child for ``(name, labels)``, created on first use."""
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Gauge(key, self._clock)
            family.children[key] = child
        return child  # type: ignore[return-value]

    def histogram(self, name: str, labels: Optional[LabelMap] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        """The histogram child for ``(name, labels)``, created on first use."""
        bounds = tuple(sorted(set(float(b) for b in buckets)))
        if not bounds:
            raise TelemetryError("histograms need at least one bucket bound")
        family = self._family(name, "histogram", help, bounds)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Histogram(key, self._clock, family.bounds or bounds)
            family.children[key] = child
        return child  # type: ignore[return-value]

    # -- reading -----------------------------------------------------------

    def families(self) -> List[_Family]:
        """All families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def value(self, name: str, labels: Optional[LabelMap] = None) -> float:
        """Current value of one counter/gauge child (0.0 if absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(_label_key(labels))
        if child is None:
            return 0.0
        if isinstance(child, Histogram):
            raise TelemetryError(f"{name!r} is a histogram; read its fields")
        return child.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of one family's children (counter/gauge values, histogram counts)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        total = 0.0
        for child in family.children.values():
            if isinstance(child, Histogram):
                total += child.count
            else:
                total += child.value  # type: ignore[union-attr]
        return total

    def samples(self) -> Iterator[Tuple[str, _LabelKey, float]]:
        """Flatten every family into exposition-shaped samples.

        Counters/gauges yield one ``(name, labels, value)`` each;
        histograms yield cumulative ``name_bucket`` samples (with an
        ``le`` label, ``+Inf`` last), then ``name_sum`` and
        ``name_count``.  This is the exact sample set the Prometheus
        exporter renders, which makes round-trip testing mechanical.
        """
        for family in self.families():
            yield from family_samples(family)


def family_samples(family: _Family) -> Iterator[Tuple[str, _LabelKey, float]]:
    """Exposition-shaped samples for one family (see :meth:`Registry.samples`)."""
    for key in sorted(family.children):
        child = family.children[key]
        if isinstance(child, Histogram):
            cumulative = child.cumulative()
            for bound, count in zip(child.bounds, cumulative[:-1]):
                le = (("le", repr(bound)),)
                yield (family.name + "_bucket", key + le, float(count))
            yield (
                family.name + "_bucket",
                key + (("le", "+Inf"),),
                float(cumulative[-1]),
            )
            yield (family.name + "_sum", key, child.sum)
            yield (family.name + "_count", key, float(child.count))
        else:
            yield (family.name, key, child.value)  # type: ignore[union-attr]


def dump_registry(registry: Registry) -> List[dict]:
    """Serialize a registry into plain JSON-able data.

    The shape is a sorted list of family dicts, each with sorted
    children, so two registries holding the same metric state dump to
    identical structures regardless of insertion order.  This is the
    wire format sweep workers hand back to the parent process (live
    registries hold an unpicklable clock closure).
    """
    out: List[dict] = []
    for family in registry.families():
        fam: dict = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "children": [],
        }
        if family.kind == "histogram":
            fam["bounds"] = list(family.bounds or ())
        for key in sorted(family.children):
            child = family.children[key]
            entry: dict = {
                "labels": [list(pair) for pair in key],
                "sim_time": child.sim_time,  # type: ignore[union-attr]
            }
            if isinstance(child, Histogram):
                entry["bucket_counts"] = list(child.bucket_counts)
                entry["sum"] = child.sum
                entry["count"] = child.count
            else:
                entry["value"] = child.value  # type: ignore[union-attr]
            fam["children"].append(entry)
        out.append(fam)
    return out


def load_registry(
    data: Sequence[dict],
    into: Registry,
    labels: Optional[LabelMap] = None,
) -> Registry:
    """Merge a :func:`dump_registry` payload into ``into``.

    ``labels`` (e.g. ``{"run": run_id}``) are added to every child's
    label set, which is how a sweep keeps per-run children disjoint in
    the merged registry.  Merging is deterministic and order-independent:
    counters and histogram buckets accumulate, and a gauge keeps
    whichever side has the greater ``(sim_time, value)`` pair, so any
    permutation of shard payloads produces the same merged state.

    Raises :class:`TelemetryError` if an extra label would overwrite a
    label already present on a child, or if histogram bucket bounds
    disagree.
    """
    extra = _label_key(labels)
    for fam in data:
        name, kind, help_ = fam["name"], fam["kind"], fam.get("help", "")
        for entry in fam["children"]:
            key: _LabelKey = tuple((str(k), str(v)) for k, v in entry["labels"])
            if extra:
                existing = {k for k, _ in key}
                for label_name, _ in extra:
                    if label_name in existing:
                        raise TelemetryError(
                            f"merge label {label_name!r} collides with an "
                            f"existing label on {name!r}"
                        )
                key = tuple(sorted(key + extra))
            merged = dict(key)
            sim_time = float(entry["sim_time"])
            if kind == "counter":
                family = into._family(name, "counter", help_)
                fresh = _label_key(merged) not in family.children
                child = into.counter(name, merged, help=help_)
                if fresh:
                    child.value = float(entry["value"])
                    child.sim_time = sim_time
                else:
                    child.value += float(entry["value"])
                    child.sim_time = max(child.sim_time, sim_time)
            elif kind == "gauge":
                family = into._family(name, "gauge", help_)
                fresh = _label_key(merged) not in family.children
                child = into.gauge(name, merged, help=help_)
                if fresh or (sim_time, float(entry["value"])) >= (
                    child.sim_time, child.value
                ):
                    child.value = float(entry["value"])
                    child.sim_time = sim_time
            elif kind == "histogram":
                bounds = tuple(float(b) for b in fam["bounds"])
                family = into._family(name, "histogram", help_, bounds)
                if family.bounds != bounds:
                    raise TelemetryError(
                        f"histogram {name!r} merged with different buckets"
                    )
                fresh = _label_key(merged) not in family.children
                hist = into.histogram(name, merged, buckets=bounds, help=help_)
                counts = [int(n) for n in entry["bucket_counts"]]
                if len(counts) != len(hist.bucket_counts):
                    raise TelemetryError(
                        f"histogram {name!r} merged with mismatched bucket count"
                    )
                if fresh:
                    hist.bucket_counts = counts
                    hist.sum = float(entry["sum"])
                    hist.count = int(entry["count"])
                    hist.sim_time = sim_time
                else:
                    hist.bucket_counts = [
                        a + b for a, b in zip(hist.bucket_counts, counts)
                    ]
                    hist.sum += float(entry["sum"])
                    hist.count += int(entry["count"])
                    hist.sim_time = max(hist.sim_time, sim_time)
            else:
                raise TelemetryError(f"unknown metric kind {kind!r} in dump")
    return into


class _NullMetric:
    """Shared, allocation-free stand-in for every disabled metric kind."""

    __slots__ = ()
    kind = "null"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The one null metric instance every NullRegistry call returns.
NULL_METRIC = _NullMetric()


class NullRegistry:
    """A disabled registry: every call is a no-op returning a shared handle.

    The contract the overhead benchmark enforces: no records are kept
    and the per-update path allocates nothing, so instrumented hot loops
    (the compiled solver tick) pay only an attribute check.
    """

    enabled = False

    def counter(self, name: str, labels: Optional[LabelMap] = None,
                help: str = "") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, labels: Optional[LabelMap] = None,
              help: str = "") -> _NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, labels: Optional[LabelMap] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> _NullMetric:
        return NULL_METRIC

    def families(self) -> List[_Family]:
        return []

    def value(self, name: str, labels: Optional[LabelMap] = None) -> float:
        return 0.0

    def total(self, name: str) -> float:
        return 0.0

    def samples(self) -> Iterator[Tuple[str, _LabelKey, float]]:
        return iter(())


#: The one shared disabled registry.
NULL_REGISTRY = NullRegistry()
