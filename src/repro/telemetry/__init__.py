"""repro.telemetry — unified observability for the Mercury/Freon reproduction.

One :class:`Telemetry` object bundles a metric :class:`~.registry.Registry`
and an :class:`~.events.EventLog` behind a single simulation clock, so
every layer — solver engines, sensor clients, daemons, Freon policies,
the fault injector, and the cluster harness — reports through the same
handle.  Figures 11/12 of the paper are time series of exactly what this
records: temperatures, LVS weights, and dropped requests over time.

Producers accept ``telemetry=None`` and fall back to the shared
:data:`NULL_TELEMETRY`, whose registry and event log are allocation-free
no-ops; hot paths guard optional work with ``if telemetry.enabled:`` so
the compiled solver's throughput is untouched when observability is off
(``benchmarks/test_telemetry_overhead.py`` enforces this).

Usage::

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    sim = ClusterSimulation(policy="freon", telemetry=telemetry)
    sim.run(600)
    telemetry.write_jsonl("out.jsonl")       # event/sample/metric stream
    telemetry.write_snapshot("out.prom")     # Prometheus text format
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .events import NULL_EVENT_LOG, Event, EventLog, NullEventLog
from .exposition import (
    CONTENT_TYPE_LATEST,
    dump_jsonl,
    parse_prometheus,
    to_prometheus,
    write_jsonl,
    write_snapshot,
)
from .registry import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    dump_registry,
    load_registry,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "ensure",
    "Registry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "NullEventLog",
    "Event",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "CONTENT_TYPE_LATEST",
    "to_prometheus",
    "parse_prometheus",
    "write_snapshot",
    "write_jsonl",
    "dump_jsonl",
    "dump_registry",
    "load_registry",
]


class Telemetry:
    """An enabled registry + event log sharing one simulation clock.

    The clock is a :class:`~repro.kernel.clock.SimClock` (or anything
    with a mutable ``now``).  Standalone producers call :meth:`advance`
    once per tick; a kernel-driven simulation instead hands its own
    clock over with :meth:`use_clock`, so metric updates and events are
    stamped with the kernel's dispatch time (wall time is stamped
    independently).
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        from ..kernel.clock import SimClock

        self._clock = clock if clock is not None else SimClock()
        getter = lambda: self._clock.now  # noqa: E731 - reads current clock
        self.registry = Registry(getter)
        self.events = EventLog(getter)

    @property
    def now(self) -> float:
        """The current simulated time, seconds."""
        return self._clock.now

    def advance(self, now: float) -> None:
        """Move the simulation clock to ``now`` (seconds)."""
        self._clock.advance(now)

    def use_clock(self, clock) -> None:
        """Adopt an external clock (the kernel's) as the time source.

        The new clock is fast-forwarded to this facade's current time if
        it is behind, so a facade that recorded before the simulation
        was built never sees time move backwards.
        """
        if clock.now < self._clock.now:
            clock.advance(self._clock.now)
        self._clock = clock

    # -- delegation, so producers need only the facade ---------------------

    def counter(self, name: str, labels=None, help: str = "") -> Counter:
        return self.registry.counter(name, labels, help)

    def gauge(self, name: str, labels=None, help: str = "") -> Gauge:
        return self.registry.gauge(name, labels, help)

    def histogram(self, name: str, labels=None,
                  buckets=DEFAULT_BUCKETS, help: str = "") -> Histogram:
        return self.registry.histogram(name, labels, buckets, help)

    def event(self, name: str, component: str = "", **attrs: Any):
        return self.events.emit(name, component, **attrs)

    def sample(self, name: str, value: float, component: str = "",
               **attrs: Any):
        return self.events.sample(name, value, component, **attrs)

    def span(self, name: str, component: str = "", **attrs: Any):
        return self.events.span(name, component, **attrs)

    # -- export ------------------------------------------------------------

    def to_prometheus(self) -> str:
        """The registry as a Prometheus text-format snapshot."""
        return to_prometheus(self.registry)

    def write_snapshot(self, path) -> None:
        """Write the Prometheus snapshot to ``path``."""
        write_snapshot(self, path)

    def write_jsonl(self, path) -> int:
        """Write the JSONL event/metric stream to ``path``."""
        return write_jsonl(self, path)

    def render(self, width: int = 80) -> str:
        """One ``repro top`` dashboard frame."""
        from .dashboard import render

        return render(self, width)


class NullTelemetry:
    """The disabled facade: same surface, zero records, zero allocations."""

    enabled = False
    now = 0.0

    def __init__(self) -> None:
        self.registry = NULL_REGISTRY
        self.events = NULL_EVENT_LOG

    def advance(self, now: float) -> None:
        pass

    def use_clock(self, clock) -> None:
        pass

    def counter(self, name: str, labels=None, help: str = ""):
        return self.registry.counter(name, labels, help)

    def gauge(self, name: str, labels=None, help: str = ""):
        return self.registry.gauge(name, labels, help)

    def histogram(self, name: str, labels=None,
                  buckets=DEFAULT_BUCKETS, help: str = ""):
        return self.registry.histogram(name, labels, buckets, help)

    def event(self, name: str, component: str = "", **attrs: Any) -> None:
        return None

    def sample(self, name: str, value: float, component: str = "",
               **attrs: Any) -> None:
        return None

    def span(self, name: str, component: str = "", **attrs: Any):
        return self.events.span(name, component, **attrs)

    def to_prometheus(self) -> str:
        return ""

    def render(self, width: int = 80) -> str:
        from .dashboard import render

        return render(self, width)


#: The one shared disabled telemetry facade producers default to.
NULL_TELEMETRY = NullTelemetry()


def ensure(telemetry: Optional[Union[Telemetry, NullTelemetry]]):
    """``telemetry`` itself, or :data:`NULL_TELEMETRY` when ``None``."""
    return NULL_TELEMETRY if telemetry is None else telemetry
