"""Plain-text dashboard rendering for ``repro top``.

No curses: each refresh renders the whole frame as a string and the CLI
repaints it with a cursor-home escape (or just reprints when stdout is
not a TTY).  That keeps the dashboard usable in CI logs, pipes, and
dumb terminals — the same trade-off ``kubectl top`` and friends make.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _fmt_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
        return f"{value:.3e}"
    return f"{value:.3f}"


def _fmt_labels(labels: _LabelKey) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in labels)


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render(telemetry, width: int = 80) -> str:
    """Render one dashboard frame for ``telemetry`` as a multi-line string."""
    lines: List[str] = []
    title = " repro top "
    pad = max(width - len(title), 0)
    lines.append("=" * (pad // 2) + title + "=" * (pad - pad // 2))
    lines.append(
        f"sim time: {telemetry.now:>12.1f} s    "
        f"events: {len(telemetry.events.events):>8d}    "
        f"telemetry: {'on' if telemetry.enabled else 'off'}"
    )

    counters: List[Tuple[str, _LabelKey, float]] = []
    gauges: List[Tuple[str, _LabelKey, float]] = []
    histograms = []
    for family in telemetry.registry.families():
        for key in sorted(family.children):
            child = family.children[key]
            if family.kind == "histogram":
                histograms.append((family.name, key, child))
            elif family.kind == "counter":
                counters.append((family.name, key, child.value))
            else:
                gauges.append((family.name, key, child.value))

    name_w = max(
        [len(n) for n, _, _ in counters + gauges]
        + [len(n) for n, _, _ in histograms]
        + [20]
    )
    name_w = min(name_w, max(width - 34, 20))

    if gauges:
        lines.append("")
        lines.append("GAUGES")
        for name, key, value in gauges:
            lines.append(
                f"  {name:<{name_w}} {_fmt_value(value):>12} "
                f"{_fmt_labels(key)}"
            )
    if counters:
        lines.append("")
        lines.append("COUNTERS")
        totals: Dict[str, float] = {}
        for name, _, value in counters:
            totals[name] = totals.get(name, 0.0) + value
        for name, key, value in counters:
            share = value / totals[name] if totals[name] else 0.0
            lines.append(
                f"  {name:<{name_w}} {_fmt_value(value):>12} "
                f"[{_bar(share, 10)}] {_fmt_labels(key)}"
            )
    if histograms:
        lines.append("")
        lines.append("HISTOGRAMS            count         mean          p95")
        for name, key, hist in histograms:
            lines.append(
                f"  {name:<{name_w}} {hist.count:>8d} "
                f"{hist.mean():>12.3e} {hist.quantile(0.95):>12.3e} "
                f"{_fmt_labels(key)}"
            )

    if not (counters or gauges or histograms):
        lines.append("")
        lines.append("  (no metrics recorded yet)")

    lines.append("=" * width)
    return "\n".join(line[:width] for line in lines)
