"""The traditional thermal-emergency policy: shut hot servers down.

Section 5.1's comparison point: "we also ran an experiment assuming the
traditional approach to handling emergencies, i.e. we turned servers off
when the temperature of their CPUs crossed T_r."  Machines stay off for
the remainder of the run; if the survivors cannot carry the load,
requests are dropped (the paper measured 14% of the trace dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .policy import FreonConfig


@dataclass(frozen=True)
class Shutdown:
    """One red-line shutdown, for experiment records."""

    time: float
    machine: str
    component: str
    temperature: float


class TraditionalPolicy:
    """Turn a server off the moment any component crosses its red line."""

    def __init__(
        self,
        readers: Dict[str, Callable[[], Dict[str, float]]],
        turn_off: Callable[[str], None],
        config: Optional[FreonConfig] = None,
        is_on: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._readers = dict(readers)
        self._turn_off = turn_off
        self.config = config or FreonConfig()
        self._is_on = is_on or (lambda name: True)
        self._elapsed = 0.0
        self.shutdowns: List[Shutdown] = []
        self._dead: set = set()

    def tick(self, dt: float, now: float) -> List[Shutdown]:
        """Advance the clock; check temperatures once per monitor period."""
        self._elapsed += dt
        if self._elapsed + 1e-9 < self.config.monitor_period:
            return []
        self._elapsed = 0.0
        return self.check(now)

    def check(self, now: float) -> List[Shutdown]:
        """Read every live server's temperatures; shut down red-liners."""
        fired: List[Shutdown] = []
        for machine, reader in self._readers.items():
            if machine in self._dead or not self._is_on(machine):
                continue
            temperatures = reader()
            for component, temperature in temperatures.items():
                if temperature >= self.config.red(component):
                    self._turn_off(machine)
                    self._dead.add(machine)
                    event = Shutdown(
                        time=now,
                        machine=machine,
                        component=component,
                        temperature=temperature,
                    )
                    self.shutdowns.append(event)
                    fired.append(event)
                    break
        return fired
