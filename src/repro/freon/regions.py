"""Physical-region bookkeeping for Freon-EC (paper section 4.2).

"Freon-EC associates each server with a physical 'region' of the room.
We define the regions such that common thermal emergencies will likely
affect all servers of a region" — e.g. one region per air conditioner.
Freon-EC prefers to *replace* a hot server with one from a different
region (likely unaffected by the same emergency), and picks regions for
new capacity in round-robin order, preferring regions not currently
under an emergency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import ClusterError


class RegionMap:
    """Server-to-region assignment plus per-region emergency counters."""

    def __init__(self, assignment: Mapping[str, str]) -> None:
        if not assignment:
            raise ClusterError("region map needs at least one server")
        self._region_of: Dict[str, str] = dict(assignment)
        self._regions: List[str] = sorted(set(assignment.values()))
        self._emergencies: Dict[str, int] = {region: 0 for region in self._regions}
        self._rr_index = 0

    @property
    def regions(self) -> List[str]:
        """All region names, sorted."""
        return list(self._regions)

    @property
    def rr_index(self) -> int:
        """The round-robin cursor (exposed so policies can checkpoint it)."""
        return self._rr_index

    @rr_index.setter
    def rr_index(self, value: int) -> None:
        self._rr_index = int(value) % max(len(self._regions), 1)

    def region_of(self, server: str) -> str:
        """The region a server belongs to."""
        try:
            return self._region_of[server]
        except KeyError:
            raise ClusterError(f"server {server!r} has no region") from None

    def servers_in(self, region: str) -> List[str]:
        """Servers assigned to a region, sorted by name."""
        return sorted(s for s, r in self._region_of.items() if r == region)

    # -- emergency accounting ("increment/decrement count of emergencies
    #    in region", Figure 10) ------------------------------------------

    def note_emergency(self, server: str) -> None:
        """A component on ``server`` just crossed its high threshold."""
        self._emergencies[self.region_of(server)] += 1

    def clear_emergency(self, server: str) -> None:
        """A component on ``server`` just dropped below its low threshold."""
        region = self.region_of(server)
        if self._emergencies[region] > 0:
            self._emergencies[region] -= 1

    def under_emergency(self, region: str) -> bool:
        """True while any emergency is active in the region."""
        return self._emergencies.get(region, 0) > 0

    def emergency_count(self, region: str) -> int:
        """Active emergency count for a region."""
        return self._emergencies.get(region, 0)

    # -- selection (Figure 10's round-robin region choice) -----------------

    def pick_region(
        self,
        has_candidate: Callable[[str], bool],
    ) -> Optional[str]:
        """Round-robin pick of a region with a usable server.

        "select a region that (a) has at least one server that is off,
        and (b) preferably is not under an emergency."  ``has_candidate``
        says whether a region currently has a usable (e.g. powered-off)
        server.  Regions not under emergency are preferred; the
        round-robin cursor advances past the returned region.
        """
        n = len(self._regions)
        calm_choice: Optional[int] = None
        any_choice: Optional[int] = None
        for offset in range(n):
            idx = (self._rr_index + offset) % n
            region = self._regions[idx]
            if not has_candidate(region):
                continue
            if not self.under_emergency(region):
                calm_choice = idx
                break
            if any_choice is None:
                any_choice = idx
        chosen = calm_choice if calm_choice is not None else any_choice
        if chosen is None:
            return None
        self._rr_index = (chosen + 1) % n
        return self._regions[chosen]


def two_region_split(servers: Sequence[str]) -> RegionMap:
    """The section 5.2 grouping: alternating servers per region.

    "we grouped machines 1 and 3 in region 0 and the others in region 1"
    — i.e. odd-indexed machines in one region, even-indexed in the other.
    """
    assignment = {
        server: f"region{idx % 2}" for idx, server in enumerate(servers)
    }
    return RegionMap(assignment)
