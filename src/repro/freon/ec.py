"""Freon-EC: combined energy conservation and thermal management (4.2).

Freon-EC keeps Freon's structure (tempd + admd) but admd additionally
implements the Figure 10 loop:

* servers are associated with physical **regions**; emergencies are
  counted per region;
* the cluster is **reconfigured** for energy: servers are turned off
  whenever the remaining ones can absorb the load below ``U_l`` average
  utilization, and turned (back) on when the *projected* utilization of
  any component exceeds ``U_h`` — projections extrapolate two observation
  intervals ahead assuming linear load growth;
* when a component crosses its high threshold: if every server in the
  cluster is needed, fall back to base Freon's weight adjustment;
  otherwise *turn the hot server off*, first turning on a replacement
  (preferably from a region not under emergency) if the remaining active
  servers could not absorb the load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence

from ..cluster.lvs import LoadBalancer, ServerState
from ..config import table1
from ..daemons.admd import Admd
from ..daemons.tempd import TempdMessage
from ..freon.policy import FreonConfig
from .regions import RegionMap


class PowerController(Protocol):
    """What Freon-EC needs from the cluster to switch machines on/off."""

    def off_servers(self) -> List[str]:
        """Names of machines currently powered off."""

    def active_servers(self) -> List[str]:
        """Names of machines currently accepting load."""

    def request_on(self, name: str) -> None:
        """Boot a machine and add it to the balancer when ready."""

    def request_off(self, name: str) -> None:
        """Quiesce, drain, and power a machine off."""


@dataclass(frozen=True)
class EcEvent:
    """One reconfiguration decision, for experiment records."""

    time: float
    action: str  # "on" | "off"
    machine: str
    reason: str


class AdmdEC(Admd):
    """admd with the Freon-EC energy/thermal policy of Figure 10."""

    def __init__(
        self,
        balancer: LoadBalancer,
        regions: RegionMap,
        power: PowerController,
        config: Optional[FreonConfig] = None,
        util_high: float = table1.EC_UTIL_HIGH,
        util_low: float = table1.EC_UTIL_LOW,
        min_active: int = 1,
        telemetry=None,
    ) -> None:
        super().__init__(
            balancer, config=config, turn_off=power.request_off,
            telemetry=telemetry,
        )
        self.regions = regions
        self.power = power
        self.util_high = util_high
        self.util_low = util_low
        self.min_active = min_active
        self.total_machines = len(balancer.servers())
        #: Latest per-server component utilizations (from STATUS messages).
        self._utilizations: Dict[str, Dict[str, float]] = {}
        #: Previous per-component cluster averages, for the projection.
        self._previous_average: Optional[Dict[str, float]] = None
        #: Servers currently known to be hot (above a high threshold).
        self._hot: Dict[str, bool] = {}
        self.events: List[EcEvent] = []

    # -- message handling overrides ------------------------------------------

    def _handle_status(self, message: TempdMessage) -> None:
        self._utilizations[message.machine] = dict(message.utilizations)

    def _handle_adjust(self, message: TempdMessage) -> None:
        machine = message.machine
        newly_hot = not self._hot.get(machine, False)
        self._hot[machine] = True
        if newly_hot:
            self.regions.note_emergency(machine)
            self._respond_to_emergency(message)
        elif self.balancer.server(machine).state is ServerState.ACTIVE:
            # Ongoing emergency on a server we decided to keep: base policy.
            super()._handle_adjust(message)

    def _handle_release(self, message: TempdMessage) -> None:
        machine = message.machine
        if self._hot.get(machine, False):
            self._hot[machine] = False
            self.regions.clear_emergency(machine)
        super()._handle_release(message)

    def _respond_to_emergency(self, message: TempdMessage) -> None:
        """Figure 10's hot-component branch."""
        machine = message.machine
        needed = self._servers_needed()
        if needed >= self.total_machines:
            # All servers in the cluster need to be active.
            super()._handle_adjust(message)
            return
        active = self.power.active_servers()
        if needed >= len(active):
            # Cannot remove a server without replacing it first.
            replacement = self._pick_off_server()
            if replacement is None:
                super()._handle_adjust(message)
                return
            self.power.request_on(replacement)
            self._log(message.time, "on", replacement, "replace hot server")
        self.power.request_off(machine)
        self._log(message.time, "off", machine, "hot server replaced/retired")

    # -- periodic reconfiguration (the top/bottom of Figure 10's loop) -----

    def evaluate(self, now: float) -> None:
        """One reconfiguration pass; call once per monitor period."""
        average = self._average_utilizations()
        projected = self._project(average)
        self._previous_average = average
        if self.telemetry.enabled:
            for component, value in projected.items():
                self.telemetry.gauge(
                    "freon_ec_projected_utilization", {"component": component},
                    help="Two-interval projected cluster-average utilization.",
                ).set(value)
            self.telemetry.gauge(
                "freon_ec_active_servers",
                help="Servers currently accepting load.",
            ).set(len(self.power.active_servers()))

        # Grow when projected demand exceeds the high threshold.
        if projected and max(projected.values()) > self.util_high:
            candidate = self._pick_off_server()
            if candidate is not None:
                self.power.request_on(candidate)
                self._log(now, "on", candidate,
                          f"projected util {max(projected.values()):.2f} > "
                          f"{self.util_high:.2f}")

        # Shrink while the remaining servers would stay under U_l.
        while True:
            active = self.power.active_servers()
            if len(active) <= self.min_active:
                break
            if not self._can_remove(average, len(active)):
                break
            victim = self._pick_removal_victim(active)
            if victim is None:
                break
            self.power.request_off(victim)
            self._log(now, "off", victim, "energy conservation")
            # Recompute the average as if the load spread over one fewer
            # server, so "as many as possible" stops at the right count.
            scale = len(active) / max(len(active) - 1, 1)
            average = {c: u * scale for c, u in average.items()}

    # -- arithmetic helpers ---------------------------------------------------

    def _average_utilizations(self) -> Dict[str, float]:
        """Per-component utilization averaged across active servers."""
        active = self.power.active_servers()
        if not active:
            return {}
        sums: Dict[str, float] = {}
        for name in active:
            for component, value in self._utilizations.get(name, {}).items():
                sums[component] = sums.get(component, 0.0) + value
        return {c: total / len(active) for c, total in sums.items()}

    def _project(self, average: Dict[str, float]) -> Dict[str, float]:
        """Two-interval linear projection when load is increasing."""
        if self._previous_average is None:
            return dict(average)
        projected: Dict[str, float] = {}
        for component, value in average.items():
            previous = self._previous_average.get(component, value)
            delta = value - previous
            projected[component] = value + 2.0 * delta if delta > 0.0 else value
        return projected

    def _servers_needed(self) -> int:
        """How many servers current demand requires at U_h per server."""
        average = self._average_utilizations()
        active = len(self.power.active_servers())
        if not average or active == 0:
            return self.min_active
        demand = max(average.values()) * active
        return max(self.min_active, math.ceil(demand / self.util_high - 1e-9))

    def _can_remove(self, average: Dict[str, float], active_count: int) -> bool:
        """Would one removal keep every component average below U_l?"""
        if not average:
            return True
        scale = active_count / max(active_count - 1, 1)
        return all(u * scale < self.util_low for u in average.values())

    def _pick_off_server(self) -> Optional[str]:
        """Round-robin region pick of a powered-off server."""
        off = set(self.power.off_servers())
        if not off:
            return None
        region = self.regions.pick_region(
            lambda r: any(s in off for s in self.regions.servers_in(r))
        )
        if region is None:
            return None
        for server in self.regions.servers_in(region):
            if server in off:
                return server
        return None

    def _pick_removal_victim(self, active: Sequence[str]) -> Optional[str]:
        """Lowest-capacity active server ("increasing order of current
        processing capacity"): restricted (low-weight) servers go first."""
        candidates = [
            name for name in active
            if self.balancer.server(name).state is ServerState.ACTIVE
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (self.balancer.server(n).weight, n))

    def _log(self, time: float, action: str, machine: str, reason: str) -> None:
        self.events.append(
            EcEvent(time=time, action=action, machine=machine, reason=reason)
        )
        if self.telemetry.enabled:
            self.telemetry.counter(
                "freon_ec_events_total", {"action": action},
                help="Freon-EC reconfiguration decisions, by action.",
            ).inc()
            self.telemetry.event(
                f"freon_ec_{action}", "freon-ec", machine=machine, reason=reason,
            )
