"""The PD feedback controller at the heart of Freon (paper section 4.1).

"The specific information that tempd sends to admd is the output of a PD
(Proportional and Derivative) feedback controller":

``output_c = max(kp (T_curr - T_h) + kd (T_curr - T_last), 0)``
``output   = max over components c of output_c``

The controller only runs while a component is above its high threshold,
and its output is forced non-negative.  Based on ``output``, admd scales
the hot server's load share by ``1 / (output + 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Paper values for the controller gains.
DEFAULT_KP = 0.1
DEFAULT_KD = 0.2


@dataclass
class PDController:
    """One component's proportional-derivative controller."""

    kp: float = DEFAULT_KP
    kd: float = DEFAULT_KD
    _last_temperature: Optional[float] = None

    def update(self, current: float, high_threshold: float) -> float:
        """One controller step; returns the non-negative output.

        The derivative term uses the previously *observed* temperature;
        on the first observation it contributes nothing.
        """
        last = self._last_temperature if self._last_temperature is not None else current
        output = self.kp * (current - high_threshold) + self.kd * (current - last)
        self._last_temperature = current
        return max(output, 0.0)

    def observe(self, current: float) -> None:
        """Record a temperature without producing an output.

        Called while the component is below its high threshold so the
        derivative term is fresh when the controller re-engages.
        """
        self._last_temperature = current

    def reset(self) -> None:
        """Forget controller state (after an emergency fully clears)."""
        self._last_temperature = None


class ControllerBank:
    """Per-component controllers for one server, keyed by sensor name."""

    def __init__(self, kp: float = DEFAULT_KP, kd: float = DEFAULT_KD) -> None:
        self._kp = kp
        self._kd = kd
        self._controllers: Dict[str, PDController] = {}

    def controller(self, component: str) -> PDController:
        """The (lazily created) controller for a component."""
        if component not in self._controllers:
            self._controllers[component] = PDController(kp=self._kp, kd=self._kd)
        return self._controllers[component]

    def combined_output(self, readings: Dict[str, float],
                        thresholds: Dict[str, float]) -> float:
        """``output = max_c output_c`` over components above threshold.

        ``readings`` maps component to current temperature; components at
        or below their high threshold only update their derivative state.
        """
        output = 0.0
        for component, temperature in readings.items():
            controller = self.controller(component)
            high = thresholds[component]
            if temperature > high:
                output = max(output, controller.update(temperature, high))
            else:
                controller.observe(temperature)
        return output

    def reset(self) -> None:
        """Reset every controller in the bank."""
        for controller in self._controllers.values():
            controller.reset()
