"""CPU-local thermal management: DVFS / clock-throttling (section 4.3).

The paper contrasts Freon's "remote throttling" with hardware-local
techniques: voltage/frequency scaling "is effective at controlling
temperature for CPU-bound computations", but "CPUs typically support
only a limited set of voltages and frequencies", scaling "slows the
processing of interrupts, which can severely degrade the throughput
achievable by the server", and it "does not apply to components other
than the CPU".

:class:`DvfsGovernor` implements the local alternative so the comparison
can actually be run (ablation benchmark
``benchmarks/test_ablation_local_throttling.py``):

* a discrete ladder of (frequency-ratio, power-ratio) P-states — power
  falls roughly with f*V^2, so the ratios are super-linear;
* a thermostat: step down a P-state when the CPU exceeds the high
  threshold, step back up when it cools below the low threshold;
* the machine's *request capacity scales with frequency*, which is
  exactly the throughput cost Freon avoids by throttling remotely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ClusterError
from ..telemetry import ensure as _ensure_telemetry

#: A Pentium-4-era P-state ladder: (frequency ratio, power ratio).
#: Power scales ~ f * V^2 with voltage dropping alongside frequency.
DEFAULT_PSTATES: Tuple[Tuple[float, float], ...] = (
    (1.00, 1.00),
    (0.85, 0.68),
    (0.70, 0.45),
    (0.55, 0.29),
)


@dataclass(frozen=True)
class PStateChange:
    """One recorded P-state transition."""

    time: float
    index: int
    frequency_ratio: float
    power_ratio: float
    temperature: float


class DvfsGovernor:
    """A per-CPU thermal governor stepping through discrete P-states.

    Parameters
    ----------
    read_temperature:
        Callable returning the CPU temperature (the on-die sensor).
    apply:
        Callable receiving ``(frequency_ratio, power_ratio)`` and applying
        them to the emulation — the power ratio through Mercury's power
        scaling (`fiddle power` / ``set_power_scale``), the frequency
        ratio to whatever models request processing speed.
    high, low:
        Thermostat thresholds (step down above ``high``, step up below
        ``low``).
    pstates:
        The (frequency, power) ladder, fastest first.
    period:
        Seconds between governor decisions (hardware governors run much
        faster than Freon's one-minute loop; default 5 s).
    """

    def __init__(
        self,
        read_temperature: Callable[[], float],
        apply: Callable[[float, float], None],
        high: float = 67.0,
        low: float = 64.0,
        pstates: Sequence[Tuple[float, float]] = DEFAULT_PSTATES,
        period: float = 5.0,
        machine: str = "",
        telemetry=None,
    ) -> None:
        if not pstates:
            raise ClusterError("at least one P-state is required")
        ordered = list(pstates)
        for (f_a, p_a), (f_b, p_b) in zip(ordered, ordered[1:]):
            if not (f_b < f_a and p_b < p_a):
                raise ClusterError("P-states must be strictly descending")
        if low >= high:
            raise ClusterError("low threshold must be below high threshold")
        if period <= 0.0:
            raise ClusterError("governor period must be positive")
        self._read = read_temperature
        self._apply = apply
        self.high = high
        self.low = low
        self.pstates = ordered
        self.period = period
        self.index = 0
        self._elapsed = 0.0
        self.changes: List[PStateChange] = []
        self.time = 0.0
        self.machine = machine
        self.telemetry = _ensure_telemetry(telemetry)
        labels = {"machine": machine} if machine else None
        self._tel_changes = self.telemetry.counter(
            "dvfs_pstate_changes_total", labels,
            help="P-state transitions made by the local governor.",
        )
        self._tel_freq = self.telemetry.gauge(
            "dvfs_frequency_ratio", labels,
            help="Current frequency relative to nominal.",
        )

    @property
    def frequency_ratio(self) -> float:
        """Current frequency relative to nominal (1.0 = full speed)."""
        return self.pstates[self.index][0]

    @property
    def power_ratio(self) -> float:
        """Current power relative to nominal."""
        return self.pstates[self.index][1]

    @property
    def throttled(self) -> bool:
        """True while running below the top P-state."""
        return self.index > 0

    def tick(self, dt: float) -> bool:
        """Advance the governor clock; decide when a period elapses."""
        self.time += dt
        self._elapsed += dt
        if self._elapsed + 1e-9 < self.period:
            return False
        self._elapsed = 0.0
        return self.decide()

    def wake(self, now: float) -> bool:
        """One kernel-scheduled decision at absolute time ``now``.

        The event kernel owns the cadence; the governor only needs its
        clock synchronized so recorded :class:`PStateChange` timestamps
        stay absolute.
        """
        self.time = now
        return self.decide()

    def decide(self) -> bool:
        """One thermostat decision; returns True on a P-state change."""
        temperature = self._read()
        new_index = self.index
        if temperature > self.high and self.index < len(self.pstates) - 1:
            new_index = self.index + 1
        elif temperature < self.low and self.index > 0:
            new_index = self.index - 1
        if new_index == self.index:
            return False
        self.index = new_index
        frequency, power = self.pstates[new_index]
        self._apply(frequency, power)
        self.changes.append(
            PStateChange(
                time=self.time,
                index=new_index,
                frequency_ratio=frequency,
                power_ratio=power,
                temperature=temperature,
            )
        )
        self._tel_changes.inc()
        self._tel_freq.set(frequency)
        if self.telemetry.enabled:
            self.telemetry.event(
                "dvfs_pstate_change", "dvfs", machine=self.machine,
                index=new_index, frequency_ratio=frequency,
                temperature=temperature,
            )
        return True
