"""Freon and Freon-EC: cluster thermal-emergency management policies.

``AdmdEC`` is re-exported lazily: it subclasses the admd daemon, which in
turn uses this package's policy types, so an eager import would be
circular.
"""

from .controller import ControllerBank, PDController
from .local import DEFAULT_PSTATES, DvfsGovernor, PStateChange
from .policy import ComponentThresholds, FreonConfig, weight_for_share_reduction
from .regions import RegionMap, two_region_split
from .traditional import Shutdown, TraditionalPolicy

__all__ = [
    "AdmdEC", "ComponentThresholds", "ControllerBank", "EcEvent",
    "FreonConfig", "PDController", "RegionMap", "Shutdown",
    "TraditionalPolicy", "two_region_split", "weight_for_share_reduction",
    "DEFAULT_PSTATES", "DvfsGovernor", "PStateChange",
]

_LAZY = ("AdmdEC", "EcEvent")


def __getattr__(name):
    if name in _LAZY:
        from . import ec

        return getattr(ec, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
