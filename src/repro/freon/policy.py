"""Freon policy configuration and the admd-side weight arithmetic.

Section 4.1: when tempd reports controller output ``o`` for a hot
server, admd "forces LVS to adjust its request distribution by setting
the hot server's weight so that it receives only 1/(o + 1) of the load
it is currently receiving (this requires accounting for the weights of
all servers)", and additionally caps the server's concurrent requests at
the recent average so rising overall load cannot negate the shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..config import table1
from ..errors import ClusterError
from .controller import DEFAULT_KD, DEFAULT_KP


@dataclass(frozen=True)
class ComponentThresholds:
    """High / low / red-line temperatures for one component class."""

    high: float
    low: float
    red: float

    def __post_init__(self) -> None:
        if not self.low < self.high < self.red:
            raise ValueError(
                f"thresholds must satisfy low < high < red, got "
                f"{self.low} / {self.high} / {self.red}"
            )


@dataclass(frozen=True)
class FreonConfig:
    """Everything a Freon deployment needs to know.

    Defaults are the paper's section 5 experiment settings: CPU
    thresholds 67/64, disk 65/62 Celsius, red-lines 2 degrees above the
    highs, one-minute daemon periods, five-second LVS statistics
    sampling, and the PD gains 0.1/0.2.
    """

    thresholds: Dict[str, ComponentThresholds] = field(
        default_factory=lambda: {
            "cpu": ComponentThresholds(
                high=table1.T_HIGH_CPU, low=table1.T_LOW_CPU, red=table1.T_RED_CPU
            ),
            "disk": ComponentThresholds(
                high=table1.T_HIGH_DISK, low=table1.T_LOW_DISK, red=table1.T_RED_DISK
            ),
        }
    )
    kp: float = DEFAULT_KP
    kd: float = DEFAULT_KD
    #: tempd wake-up / admd adjustment period, seconds.
    monitor_period: float = 60.0
    #: admd LVS-statistics sampling period, seconds.
    stats_period: float = 5.0
    #: Default LVS weight of an unrestricted server.
    base_weight: float = 1.0
    #: Seconds tempd keeps trusting last-known-good readings when its
    #: sensors stop answering (hold the last PD output meanwhile).
    sensor_staleness_limit: float = 180.0
    #: Controller output tempd applies once readings stay unavailable
    #: past the staleness limit: fail conservative toward throttling
    #: (output 1.0 halves the server's load share).
    conservative_output: float = 1.0

    def high(self, component: str) -> float:
        """High threshold for a component class."""
        return self.thresholds[component].high

    def low(self, component: str) -> float:
        """Low threshold for a component class."""
        return self.thresholds[component].low

    def red(self, component: str) -> float:
        """Red-line threshold for a component class."""
        return self.thresholds[component].red


def weight_for_share_reduction(
    current_weights: Dict[str, float],
    hot_server: str,
    output: float,
    telemetry=None,
) -> float:
    """The new weight giving ``hot_server`` 1/(output+1) of its current share.

    With least-connections scheduling a server's long-run load share is
    ``w_i / sum(w)``.  Let ``s`` be the hot server's current share and
    ``s' = s / (output + 1)`` the target.  Solving
    ``w' / (W_rest + w') = s'`` gives ``w' = s' W_rest / (1 - s')``.

    ``current_weights`` must cover every server currently eligible for
    load (the "accounting for the weights of all servers").  An enabled
    ``telemetry`` facade records the PD outputs this arithmetic was fed
    (``freon_controller_output``), the raw material of Figure 11's
    weight series.
    """
    if hot_server not in current_weights:
        raise ClusterError(f"unknown server {hot_server!r}")
    if output < 0.0:
        raise ClusterError("controller output must be non-negative")
    if telemetry is not None and telemetry.enabled:
        telemetry.histogram(
            "freon_controller_output", {"machine": hot_server},
            buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
            help="PD-controller outputs fed to the weight arithmetic.",
        ).observe(output)
    total = sum(current_weights.values())
    if total <= 0.0:
        raise ClusterError("total weight must be positive")
    w_hot = current_weights[hot_server]
    w_rest = total - w_hot
    share = w_hot / total
    target = share / (output + 1.0)
    if w_rest <= 0.0:
        # Only server in the pool: weights cannot shift load anywhere.
        return w_hot
    if target >= 1.0:
        return w_hot
    return target * w_rest / (1.0 - target)
