"""The flattened datacenter solve: 1k-10k machines, one array per tick.

The compiled engine (:mod:`repro.core.compiled`) already batches every
machine sharing a layout signature into one NumPy group, but it still
pays per-machine Python costs each tick: a :class:`~repro.core.state.
MachineState` dict write-back per machine, per-machine sensor reads,
and per-machine daemon bookkeeping.  At 1k-10k machines those dominate.

:class:`FlatSolver` drops all of it.  Every machine of a
:class:`~repro.topology.model.Topology` shares one layout template, so
the whole room is a single machines×nodes state array built by
:meth:`repro.core.compiled._Group.from_template` and advanced by one
:func:`repro.core.compiled.tick_group` call per tick — the same pure
array kernel the per-machine engines use, so the physics agrees with
the reference solver within the usual 1e-9 °C.  Between ticks the
:class:`~repro.topology.recirculation.RecirculationOperator` turns the
exhaust column into next tick's inlet vector with one sparse matvec.
Sensor sampling is a column read; there are no per-machine objects at
all.

:class:`ScaleSimulation` wraps the flat solver in a datacenter-shaped
workload: per-machine diurnal offered load with deterministic phase
offsets (:func:`repro.cluster.tracegen.phase_offsets` — regional
afternoons differ, so 10k machines do not peak in lockstep), one
vectorized LVS-style allocation per tick
(:func:`repro.cluster.lvs.allocate_rates`), and a pluggable management
policy from the :mod:`repro.control` registry: every monitor period
the policy observes and actuates the room through a vectorized
:class:`~repro.control.view.FlatStateView`, so Freon, Freon-EC,
traditional shutdown, and the emergency guard all run at this scale
unchanged from their cluster-stack forms.  Fault injection
(:mod:`repro.faults`) and the ``--experiment`` scenario presets plug in
through the same seam.  Telemetry is per-zone:
``scale_zone_cpu_max_celsius{zone=...}`` et al. via sort +
``np.maximum.reduceat`` over the zone partition, plus a
``sim_machines`` gauge.

Everything checkpoints to plain JSON and restores bit-exactly,
flattened arrays included.
"""

from __future__ import annotations

import shlex
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # NumPy is required for the flattened path; imports stay gated
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..config import table1
from ..config.layouts import validation_machine
from ..control import (
    POWER_ACTIVE,
    POWER_BOOTING,
    POWER_OFF,
    FlatStateView,
)
from ..control import build as _build_policy
from ..control import get as _get_policy
from ..core.compiled import _Group, compile_layout, have_numpy, tick_group
from ..core.graph import MachineLayout
from ..core.state import MachineState
from ..cluster.lvs import CloningConfig, allocate_rates, allocate_rates_cloned
from ..cluster.tracegen import (
    diurnal_shape_array,
    peak_rate_for_utilization,
    phase_offsets,
)
from ..cluster.webserver import RequestMix
from ..errors import ControlError, TopologyError
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule, is_fault_command
from ..telemetry import ensure as _ensure_telemetry
from .model import Topology
from .recirculation import RecirculationOperator

#: Checkpoint format version for :class:`ScaleSimulation`.  Version 2
#: added power states, concurrency caps, boot timers, inlet-event
#: cursors, and the policy's own state.
CHECKPOINT_VERSION = 2

#: Boot behavior mirroring :class:`~repro.cluster.webserver.WebServer`:
#: a booting machine burns full CPU and most of its disk for
#: ``boot_time`` seconds before turning ACTIVE.
BOOT_SECONDS = 60.0
BOOT_CPU_UTIL = 1.0
BOOT_DISK_UTIL = 0.6


def inlet_events_from_script(text: str) -> List[Tuple[float, str, float]]:
    """Extract ``fiddle <machine> temperature inlet <C>`` events.

    Fault statements are skipped (they go to the injector); any other
    fiddle verb has no flattened equivalent and is rejected loudly
    rather than silently ignored.
    """
    from ..fiddle.script import parse_script

    events: List[Tuple[float, str, float]] = []
    for timed in parse_script(text):
        if is_fault_command(timed.command):
            continue
        tokens = shlex.split(timed.command)
        if (
            len(tokens) == 5
            and tokens[0] == "fiddle"
            and tokens[2] == "temperature"
            and tokens[3] == "inlet"
        ):
            events.append((timed.time, tokens[1], float(tokens[4])))
        else:
            raise TopologyError(
                "scale runs support only "
                "'fiddle <machine> temperature inlet <C>' commands, got "
                f"{timed.command!r}"
            )
    return events


class FlatSolver:
    """One machines×nodes array solving a whole topology per tick.

    All machines share ``layout`` (the flattening requires one plan);
    the row order is the topology's canonical machine order.  The
    surface mirrors the pieces of :class:`~repro.core.solver.Solver`
    the datacenter harness needs — column sensor reads, utilization
    feeds, inlet overrides, per-machine power scaling,
    checkpoint/restore — without any per-machine state objects.
    """

    def __init__(
        self,
        topology: Topology,
        layout: Optional[MachineLayout] = None,
        dt: float = 1.0,
        initial_temperature: Optional[float] = None,
    ) -> None:
        if not have_numpy():
            raise TopologyError(
                "the flattened solver requires NumPy"
            )
        if dt <= 0.0:
            raise TopologyError("dt must be positive")
        if layout is None:
            layout = validation_machine("template")
        if initial_temperature is None:
            initial_temperature = layout.inlet_temperature
        self.topology = topology
        self.operator = RecirculationOperator(topology)
        self.layout = layout
        self.dt = dt
        self.n = len(topology.machines)
        self.plan = compile_layout(layout)
        template = MachineState(layout, initial_temperature)
        self.group = _Group.from_template(self.plan, template, self.n)
        self._exhaust_col = self.plan.n_comps + self.plan.exhaust_air
        self.prev_exhaust = np.full(self.n, float(initial_temperature))
        #: Row index -> forced inlet temperature (fiddle-style override).
        self.inlet_overrides: Dict[int, float] = {}
        #: Baseline per-row power factors; power scaling multiplies these
        #: so repeated on/off cycles never accumulate drift.
        self._base_factor = self.group.factor.copy()
        self.time = 0.0
        self.iterations = 0

    # -- access ----------------------------------------------------------

    def node_column(self, node: str):
        """The live temperature column of one node across all machines."""
        try:
            return self.group.T[:, self.plan.node_index[node]]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def set_utilization(self, component: str, values) -> None:
        """Set one component's utilization for every machine at once."""
        try:
            col = self.plan.comp_index[component]
        except KeyError:
            raise TopologyError(f"unknown component {component!r}") from None
        self.group.util[:, col] = values

    def set_inlet_override(self, machine: str, value: Optional[float]) -> None:
        """Force (or with ``None`` release) one machine's inlet."""
        try:
            row = self.operator.index[machine]
        except KeyError:
            raise TopologyError(f"unknown machine {machine!r}") from None
        if value is None:
            self.inlet_overrides.pop(row, None)
        else:
            self.inlet_overrides[row] = float(value)

    def set_power_factor(self, row: int, scale: float) -> None:
        """Scale one machine's entire heat dissipation (0.0 = powered off)."""
        self.group.factor[row, :] = self._base_factor[row, :] * float(scale)

    # -- stepping --------------------------------------------------------

    def step(self, ticks: int = 1) -> None:
        """Advance the whole room ``ticks`` solver iterations."""
        g = self.group
        for _ in range(ticks):
            if g.flows_dirty:
                g.rebuild_flows()
            inlet = self.operator.inlets_array(self.prev_exhaust)
            for row, value in self.inlet_overrides.items():
                inlet[row] = value
            tick_group(g, inlet, self.dt)
            self.prev_exhaust = g.T[:, self._exhaust_col].copy()
            self.time += self.dt
            self.iterations += 1

    # -- checkpoint / restore --------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """All mutable solver state as plain JSON-able data."""
        g = self.group
        return {
            "time": self.time,
            "iterations": self.iterations,
            "T": g.T.tolist(),
            "util": g.util.tolist(),
            "prev_exhaust": self.prev_exhaust.tolist(),
            "inlet_overrides": {
                str(row): value for row, value in self.inlet_overrides.items()
            },
            "topology": self.operator.checkpoint(),
        }

    def restore(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` (same topology and layout).

        JSON serializes floats with round-trip precision, so a restore
        from parsed JSON reproduces every array bit-for-bit.
        """
        g = self.group
        T = np.array(data["T"], dtype=float)
        util = np.array(data["util"], dtype=float)
        prev = np.array(data["prev_exhaust"], dtype=float)
        if T.shape != g.T.shape or util.shape != g.util.shape:
            raise TopologyError("checkpoint shape does not match this solver")
        if prev.shape != self.prev_exhaust.shape:
            raise TopologyError("checkpoint shape does not match this solver")
        g.T[:] = T
        g.util[:] = util
        self.prev_exhaust = prev
        self.inlet_overrides = {
            int(row): float(value)
            for row, value in data["inlet_overrides"].items()
        }
        self.operator.restore(data["topology"])
        self.time = float(data["time"])
        self.iterations = int(data["iterations"])

    def __repr__(self) -> str:
        return (
            f"FlatSolver({self.n} machines x "
            f"{len(self.plan.node_names)} nodes, t={self.time:.0f}s)"
        )


class ScaleSimulation:
    """A datacenter-scale workload driving one :class:`FlatSolver`.

    Each tick: offered load (per-machine phase-shifted diurnal curves,
    or a scenario's :class:`~repro.cluster.scenarios.RequestTrace`), one
    vectorized LVS allocation across the whole room, CPU/disk
    utilizations from the allocated rates, one flattened solver tick.
    Every ``monitor_period`` seconds the configured management policy
    (any scale-capable name in the :mod:`repro.control` registry)
    samples and wakes against the room's :class:`FlatStateView`; every
    ``sample_period`` seconds per-zone telemetry gauges are refreshed.

    Fault injection rides the same seam: pass an ``injector`` (or a
    chaos ``scenario``, whose fault statements build one) and sensor
    faults perturb the policy's reads, daemon crashes silence machines,
    and network faults drop/duplicate its actuation datagrams — the
    identical chaos semantics the 4-machine cluster stack runs, at 10k
    machines.
    """

    def __init__(
        self,
        topology: Topology,
        duration: float = 3600.0,
        dt: float = 1.0,
        layout: Optional[MachineLayout] = None,
        policy: str = "freon",
        monitor_period: float = 4.0,
        sample_period: float = 60.0,
        peak_utilization: float = 0.70,
        valley_fraction: float = 0.15,
        plateau: float = 0.75,
        phase_spread: float = 0.25,
        phase_seed: int = 2006,
        cpu_high: float = table1.T_HIGH_CPU,
        cpu_low: float = table1.T_LOW_CPU,
        mix: Optional[RequestMix] = None,
        cloning: Optional[CloningConfig] = None,
        telemetry=None,
        scenario=None,
        injector: Optional[FaultInjector] = None,
        inlet_events: Optional[Sequence[Tuple[float, str, float]]] = None,
        fault_seed: int = 2006,
    ) -> None:
        try:
            spec = _get_policy(policy, stack="scale")
        except ControlError as exc:
            raise TopologyError(str(exc)) from None
        if duration <= 0.0:
            raise TopologyError("duration must be positive")
        if monitor_period <= 0.0 or sample_period <= 0.0:
            raise TopologyError("periods must be positive")
        self.topology = topology
        self.duration = float(duration)
        self.policy = policy
        self.monitor_period = float(monitor_period)
        self.sample_period = float(sample_period)
        self.cpu_high = float(cpu_high)
        self.cpu_low = float(cpu_low)
        # Scenario presets supply their own trace, request mix, fault
        # schedule, and inlet emergencies; explicit arguments win.
        self.scenario = scenario
        self._trace = None
        events: List[Tuple[float, str, float]] = [
            (float(t), str(m), float(v)) for t, m, v in (inlet_events or ())
        ]
        if scenario is not None:
            if mix is None:
                mix = scenario.mix
            self._trace = scenario.trace
            events.extend(inlet_events_from_script(scenario.fiddle_script))
            if injector is None:
                schedule = FaultSchedule.from_script(scenario.fiddle_script)
                if len(schedule):
                    injector = FaultInjector(schedule, seed=fault_seed)
        self.injector = injector
        self._inlet_events = sorted(events, key=lambda e: e[0])
        self._inlet_cursor = 0
        self.mix = RequestMix() if mix is None else mix
        self.solver = self._make_solver(topology, layout, dt)
        n = self.solver.n
        self.phases = np.array(
            phase_offsets(n, spread=phase_spread, seed=phase_seed)
        )
        #: Per-machine peak offered rate: each machine serves its own
        #: regional stream sized for one server at the target peak.
        self._peak_rate = peak_rate_for_utilization(
            peak_utilization, 1, self.mix
        )
        self._valley_rate = valley_fraction * self._peak_rate
        self._plateau = float(plateau)
        self.weights = np.ones(n)
        self.caps = np.full(n, np.inf)
        self.power = np.full(n, POWER_ACTIVE, dtype=np.int64)
        self._boot_remaining = np.zeros(n)
        self._last_allocated = np.zeros(n)
        self._capacity = np.full(n, self.mix.capacity())
        self.offered_total = 0.0
        self.dropped_total = 0.0
        self.throttle_events = 0
        #: Request-cloning policy; None keeps single dispatch (and the
        #: summary/checkpoint layouts exactly as before).
        self.cloning = cloning
        self.clone_ticks = 0
        self.shed_ticks = 0
        self._monitor_ticks = max(
            1, int(round(self.monitor_period / self.solver.dt))
        )
        self._sample_ticks = max(
            1, int(round(self.sample_period / self.solver.dt))
        )
        self._policy = (
            None if spec.factory is None
            else _build_policy(policy, "scale", config=self._control_config())
        )
        self._view: Optional[FlatStateView] = None
        # Zone partition for reduceat aggregation: rows sorted by zone
        # id (stable, so canonical machine order breaks ties), one
        # segment start per zone.
        self._zone_names = list(topology.zones)
        zone_ids = np.array(
            [
                self._zone_names.index(topology.positions[name].zone)
                for name in topology.machines
            ],
            dtype=np.intp,
        )
        self._zone_sort = np.argsort(zone_ids, kind="stable")
        sorted_ids = zone_ids[self._zone_sort]
        self._zone_starts = np.searchsorted(
            sorted_ids, np.arange(len(self._zone_names))
        )
        self._zone_counts = np.bincount(
            zone_ids, minlength=len(self._zone_names)
        ).astype(float)
        # Small grids can leave trailing zones empty; reduceat segments
        # are only well-defined for populated ones.
        self._zone_populated = np.flatnonzero(self._zone_counts)
        self.telemetry = _ensure_telemetry(telemetry)
        self.telemetry.gauge(
            "sim_machines", help="Machines in the simulated datacenter.",
        ).set(float(n))
        self.telemetry.gauge(
            "sim_zones", help="Cooling zones in the simulated datacenter.",
        ).set(float(len(self._zone_names)))

    def _make_solver(self, topology: Topology, layout, dt: float):
        """Build the room solver.  The parity harness
        (:mod:`repro.control.parity`) overrides this to substitute the
        per-machine python-engine reference behind the same surface."""
        return FlatSolver(topology, layout=layout, dt=dt)

    # -- control plane ---------------------------------------------------

    def _control_config(self):
        """The policy configuration this room's thresholds imply."""
        from ..freon.policy import ComponentThresholds, FreonConfig

        red_gap = table1.T_RED_CPU - table1.T_HIGH_CPU
        try:
            thresholds = {
                "cpu": ComponentThresholds(
                    high=self.cpu_high,
                    low=self.cpu_low,
                    red=self.cpu_high + red_gap,
                ),
                "disk": ComponentThresholds(
                    high=table1.T_HIGH_DISK,
                    low=table1.T_LOW_DISK,
                    red=table1.T_RED_DISK,
                ),
            }
        except ValueError as exc:
            raise TopologyError(str(exc)) from None
        return FreonConfig(
            thresholds=thresholds,
            monitor_period=self.monitor_period,
            stats_period=self.monitor_period,
        )

    @property
    def controller(self):
        """The live policy object (None for ``policy="none"``)."""
        return self._policy

    @property
    def dt(self) -> float:
        """Solver tick length (the sweep engine's stepping contract)."""
        return self.solver.dt

    @property
    def time(self) -> float:
        """Current simulated time (the sweep engine's stepping contract)."""
        return self.solver.time

    def apply_checkpoint(self, data: Mapping[str, object]) -> None:
        """Alias for :meth:`restore` (the sweep engine's resume hook)."""
        self.restore(data)

    def state_view(self) -> FlatStateView:
        """The vectorized :class:`MachineStateView` over this room."""
        if self._view is None:
            self._view = FlatStateView(self)
        return self._view

    def connections(self):
        """Concurrent connections per machine (Little's law on the last
        allocation), as the LVS statistics the policy samples."""
        return self._last_allocated * self.mix.base_response_time

    def set_connection_cap(self, index: int, cap: Optional[float]) -> None:
        """Cap (or with ``None`` uncap) one machine's concurrency."""
        self.caps[index] = np.inf if cap is None else max(float(cap), 0.0)

    def set_power(self, index: int, on: bool) -> None:
        """Power one machine on (boot) or off (immediate heat cut)."""
        if on:
            if self.power[index] == POWER_OFF:
                self.power[index] = POWER_BOOTING
                self._boot_remaining[index] = BOOT_SECONDS
                self.solver.set_power_factor(index, 1.0)
        elif self.power[index] in (POWER_ACTIVE, POWER_BOOTING):
            self.power[index] = POWER_OFF
            self._boot_remaining[index] = 0.0
            self.solver.set_power_factor(index, 0.0)

    def _finish_boots(self) -> None:
        booting = self.power == POWER_BOOTING
        if not booting.any():
            return
        done = booting & (self._boot_remaining <= 1e-9)
        if done.any():
            self.power[done] = POWER_ACTIVE
            self.weights[done] = 1.0
            self.caps[done] = np.inf

    def _apply_inlet_events(self, now: float) -> None:
        while (
            self._inlet_cursor < len(self._inlet_events)
            and self._inlet_events[self._inlet_cursor][0] <= now + 1e-9
        ):
            _, machine, value = self._inlet_events[self._inlet_cursor]
            self.solver.set_inlet_override(machine, value)
            self._inlet_cursor += 1

    # -- workload --------------------------------------------------------

    def offered_rates(self, t: float):
        """Per-machine offered request rates at simulated time ``t``.

        :func:`repro.cluster.tracegen.diurnal_shape_array` with
        per-machine phase offsets and no jitter (jitter would need a
        per-machine RNG stream per tick; the phase spread already
        decorrelates the room).
        """
        duration = self.duration
        tt = (t - self.phases * duration) % duration
        shape = diurnal_shape_array(tt, duration, self._plateau)
        return self._valley_rate + (self._peak_rate - self._valley_rate) * shape

    # -- stepping --------------------------------------------------------

    def step(self, ticks: int = 1) -> None:
        """Advance the datacenter ``ticks`` solver ticks."""
        solver = self.solver
        dt = solver.dt
        mix = self.mix
        for _ in range(ticks):
            now = solver.time
            if self.injector is not None:
                self.injector.advance_to(now)
            self._apply_inlet_events(now)
            self._finish_boots()
            if self._trace is not None:
                offered = float(self._trace.rate_at(now))
            else:
                offered = float(self.offered_rates(now).sum())
            active = self.power == POWER_ACTIVE
            eff_weights = np.where(active, self.weights, 0.0)
            ceilings = np.where(active, self._capacity, 0.0)
            capped = active & np.isfinite(self.caps)
            if capped.any():
                # A concurrency cap c bounds the sustainable rate at
                # c / base_response_time (Little's law).
                ceilings = np.where(
                    capped,
                    np.minimum(ceilings, self.caps / mix.base_response_time),
                    ceilings,
                )
            if self.cloning is None:
                allocated, dropped = allocate_rates(
                    offered, eff_weights, ceilings
                )
            else:
                allocated, dropped, _, cloned = allocate_rates_cloned(
                    offered, eff_weights, ceilings, self.cloning
                )
                if cloned:
                    self.clone_ticks += 1
                else:
                    self.shed_ticks += 1
            self.offered_total += offered * dt
            self.dropped_total += dropped * dt
            self._last_allocated = allocated
            cpu_util = np.minimum(allocated * mix.cpu_demand, 1.0)
            disk_util = np.minimum(allocated * mix.disk_demand, 1.0)
            booting = self.power == POWER_BOOTING
            if booting.any():
                cpu_util = np.where(booting, BOOT_CPU_UTIL, cpu_util)
                disk_util = np.where(booting, BOOT_DISK_UTIL, disk_util)
                self._boot_remaining = np.where(
                    booting, self._boot_remaining - dt, self._boot_remaining
                )
            solver.set_utilization(table1.CPU, cpu_util)
            solver.set_utilization(table1.DISK_PLATTERS, disk_util)
            solver.step()
            if self._policy is not None and (
                solver.iterations % self._monitor_ticks == 0
            ):
                view = self.state_view()
                wake_time = solver.time
                self._policy.sample(view, wake_time)
                self._policy.wake(view, wake_time)
                self.throttle_events = getattr(
                    self._policy, "throttle_events", self.throttle_events
                )
            if self.telemetry.enabled and (
                solver.iterations % self._sample_ticks == 0
            ):
                self._sample()

    def run(self, duration: Optional[float] = None) -> Dict[str, object]:
        """Run for ``duration`` simulated seconds and return the summary."""
        if duration is None:
            duration = self.duration
        ticks = int(round(duration / self.solver.dt))
        self.step(ticks)
        if self.telemetry.enabled:
            self._sample()
        return self.summary()

    # -- observability ---------------------------------------------------

    def zone_cpu_stats(self) -> Dict[str, Tuple[float, float]]:
        """Per zone: (max, mean) CPU temperature right now."""
        cpu_T = self.solver.node_column(table1.CPU)
        by_zone = cpu_T[self._zone_sort]
        starts = self._zone_starts[self._zone_populated]
        maxima = np.maximum.reduceat(by_zone, starts)
        sums = np.add.reduceat(by_zone, starts)
        return {
            self._zone_names[z]: (
                float(maxima[i]),
                float(sums[i] / self._zone_counts[z]),
            )
            for i, z in enumerate(self._zone_populated)
        }

    def _sample(self) -> None:
        self.telemetry.advance(self.solver.time)
        for zone, (peak, mean) in self.zone_cpu_stats().items():
            labels = {"zone": zone}
            self.telemetry.gauge(
                "scale_zone_cpu_max_celsius", labels,
                help="Hottest CPU temperature per cooling zone.",
            ).set(peak)
            self.telemetry.gauge(
                "scale_zone_cpu_mean_celsius", labels,
                help="Mean CPU temperature per cooling zone.",
            ).set(mean)
        throttled = int((self.weights < 1.0).sum())
        self.telemetry.gauge(
            "scale_throttled_machines",
            help="Machines currently running at reduced scheduling weight.",
        ).set(float(throttled))
        self.telemetry.gauge(
            "scale_active_machines",
            help="Machines currently powered on and serving.",
        ).set(float(int((self.power == POWER_ACTIVE).sum())))
        self.telemetry.gauge(
            "scale_offered_requests_total",
            help="Cumulative offered requests.",
        ).set(self.offered_total)
        self.telemetry.gauge(
            "scale_dropped_requests_total",
            help="Cumulative dropped requests.",
        ).set(self.dropped_total)

    def summary(self) -> Dict[str, object]:
        """Scalar outcome summary (the CLI's report)."""
        zone_stats = self.zone_cpu_stats()
        drop_fraction = (
            self.dropped_total / self.offered_total
            if self.offered_total > 0.0
            else 0.0
        )
        summary: Dict[str, object] = {
            "machines": self.solver.n,
            "zones": len(self._zone_names),
            "ticks": self.solver.iterations,
            "sim_time": self.solver.time,
            "policy": self.policy,
            "offered_requests": self.offered_total,
            "dropped_requests": self.dropped_total,
            "drop_fraction": drop_fraction,
            "throttle_events": self.throttle_events,
            "throttled_machines": int((self.weights < 1.0).sum()),
            "active_machines": int((self.power == POWER_ACTIVE).sum()),
            "zone_cpu_max": {z: s[0] for z, s in zone_stats.items()},
            "zone_cpu_mean": {z: s[1] for z, s in zone_stats.items()},
        }
        if self.cloning is not None:
            summary["clone_ticks"] = self.clone_ticks
            summary["shed_ticks"] = self.shed_ticks
            summary["clone_latency_scale"] = self.cloning.latency_scale
        if self.injector is not None:
            summary["faults_logged"] = len(self.injector.log)
        return summary

    # -- checkpoint / restore --------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the whole datacenter as plain JSON-able data."""
        state: Dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "solver": self.solver.checkpoint(),
            "weights": self.weights.tolist(),
            "caps": self.caps.tolist(),
            "power": self.power.tolist(),
            "boot_remaining": self._boot_remaining.tolist(),
            "allocated": self._last_allocated.tolist(),
            "inlet_cursor": self._inlet_cursor,
            "offered_total": self.offered_total,
            "dropped_total": self.dropped_total,
            "throttle_events": self.throttle_events,
            "policy_state": (
                None if self._policy is None else self._policy.checkpoint()
            ),
        }
        if self.injector is not None:
            state["faults"] = self.injector.checkpoint()
        if self.cloning is not None:
            # Gated so classic checkpoints keep their historical layout.
            state["clone_ticks"] = self.clone_ticks
            state["shed_ticks"] = self.shed_ticks
        return state

    def restore(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` onto this simulation."""
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise TopologyError(
                f"unsupported scale checkpoint version {version!r}"
            )
        self.solver.restore(data["solver"])
        weights = np.array(data["weights"], dtype=float)
        if weights.shape != self.weights.shape:
            raise TopologyError("checkpoint shape does not match this room")
        self.weights = weights
        self.caps = np.array(data["caps"], dtype=float)
        self.power = np.array(data["power"], dtype=np.int64)
        self._boot_remaining = np.array(data["boot_remaining"], dtype=float)
        self._last_allocated = np.array(data["allocated"], dtype=float)
        self._inlet_cursor = int(data["inlet_cursor"])
        for row in range(self.solver.n):
            self.solver.set_power_factor(
                row, 0.0 if self.power[row] == POWER_OFF else 1.0
            )
        self.offered_total = float(data["offered_total"])
        self.dropped_total = float(data["dropped_total"])
        self.throttle_events = int(data["throttle_events"])
        if self._policy is not None and data.get("policy_state") is not None:
            self._policy.restore(data["policy_state"])
        if self.injector is not None and data.get("faults") is not None:
            self.injector.restore(data["faults"])
        self.clone_ticks = int(data.get("clone_ticks", 0))
        self.shed_ticks = int(data.get("shed_ticks", 0))

    def __repr__(self) -> str:
        return (
            f"ScaleSimulation({self.solver.n} machines, "
            f"{len(self._zone_names)} zones, policy={self.policy!r})"
        )
