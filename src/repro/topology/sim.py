"""The flattened datacenter solve: 1k-10k machines, one array per tick.

The compiled engine (:mod:`repro.core.compiled`) already batches every
machine sharing a layout signature into one NumPy group, but it still
pays per-machine Python costs each tick: a :class:`~repro.core.state.
MachineState` dict write-back per machine, per-machine sensor reads,
and per-machine daemon bookkeeping.  At 1k-10k machines those dominate.

:class:`FlatSolver` drops all of it.  Every machine of a
:class:`~repro.topology.model.Topology` shares one layout template, so
the whole room is a single machines×nodes state array built by
:meth:`repro.core.compiled._Group.from_template` and advanced by one
:func:`repro.core.compiled.tick_group` call per tick — the same pure
array kernel the per-machine engines use, so the physics agrees with
the reference solver within the usual 1e-9 °C.  Between ticks the
:class:`~repro.topology.recirculation.RecirculationOperator` turns the
exhaust column into next tick's inlet vector with one sparse matvec.
Sensor sampling is a column read; there are no per-machine objects at
all.

:class:`ScaleSimulation` wraps the flat solver in a datacenter-shaped
workload: per-machine diurnal offered load with deterministic phase
offsets (:func:`repro.cluster.tracegen.phase_offsets` — regional
afternoons differ, so 10k machines do not peak in lockstep), one
vectorized LVS-style allocation per tick
(:func:`repro.cluster.lvs.allocate_rates`), and a vectorized Freon-like
policy: every monitor period the CPU temperature column is compared
against the high/low thresholds and hot machines' scheduling weights
are halved (restored geometrically once cool).  Telemetry is per-zone:
``scale_zone_cpu_max_celsius{zone=...}`` et al. via sort +
``np.maximum.reduceat`` over the zone partition, plus a
``sim_machines`` gauge.

Everything checkpoints to plain JSON and restores bit-exactly,
flattened arrays included.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

try:  # NumPy is required for the flattened path; imports stay gated
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..config import table1
from ..config.layouts import validation_machine
from ..core.compiled import _Group, compile_layout, have_numpy, tick_group
from ..core.graph import MachineLayout
from ..core.state import MachineState
from ..cluster.lvs import CloningConfig, allocate_rates, allocate_rates_cloned
from ..cluster.tracegen import peak_rate_for_utilization, phase_offsets
from ..cluster.webserver import RequestMix
from ..errors import TopologyError
from ..telemetry import ensure as _ensure_telemetry
from .model import Topology
from .recirculation import RecirculationOperator

#: Checkpoint format version for :class:`ScaleSimulation`.
CHECKPOINT_VERSION = 1

#: Scheduling-weight floor for throttled machines (never fully starve).
MIN_WEIGHT = 0.05

#: Multiplicative throttle/restore factors of the vectorized policy.
THROTTLE_FACTOR = 0.5
RESTORE_FACTOR = 1.0 / 0.9


class FlatSolver:
    """One machines×nodes array solving a whole topology per tick.

    All machines share ``layout`` (the flattening requires one plan);
    the row order is the topology's canonical machine order.  The
    surface mirrors the pieces of :class:`~repro.core.solver.Solver`
    the datacenter harness needs — column sensor reads, utilization
    feeds, inlet overrides, checkpoint/restore — without any
    per-machine state objects.
    """

    def __init__(
        self,
        topology: Topology,
        layout: Optional[MachineLayout] = None,
        dt: float = 1.0,
        initial_temperature: Optional[float] = None,
    ) -> None:
        if not have_numpy():
            raise TopologyError(
                "the flattened solver requires NumPy"
            )
        if dt <= 0.0:
            raise TopologyError("dt must be positive")
        if layout is None:
            layout = validation_machine("template")
        if initial_temperature is None:
            initial_temperature = layout.inlet_temperature
        self.topology = topology
        self.operator = RecirculationOperator(topology)
        self.layout = layout
        self.dt = dt
        self.n = len(topology.machines)
        self.plan = compile_layout(layout)
        template = MachineState(layout, initial_temperature)
        self.group = _Group.from_template(self.plan, template, self.n)
        self._exhaust_col = self.plan.n_comps + self.plan.exhaust_air
        self.prev_exhaust = np.full(self.n, float(initial_temperature))
        #: Row index -> forced inlet temperature (fiddle-style override).
        self.inlet_overrides: Dict[int, float] = {}
        self.time = 0.0
        self.iterations = 0

    # -- access ----------------------------------------------------------

    def node_column(self, node: str):
        """The live temperature column of one node across all machines."""
        try:
            return self.group.T[:, self.plan.node_index[node]]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def set_utilization(self, component: str, values) -> None:
        """Set one component's utilization for every machine at once."""
        try:
            col = self.plan.comp_index[component]
        except KeyError:
            raise TopologyError(f"unknown component {component!r}") from None
        self.group.util[:, col] = values

    def set_inlet_override(self, machine: str, value: Optional[float]) -> None:
        """Force (or with ``None`` release) one machine's inlet."""
        try:
            row = self.operator.index[machine]
        except KeyError:
            raise TopologyError(f"unknown machine {machine!r}") from None
        if value is None:
            self.inlet_overrides.pop(row, None)
        else:
            self.inlet_overrides[row] = float(value)

    # -- stepping --------------------------------------------------------

    def step(self, ticks: int = 1) -> None:
        """Advance the whole room ``ticks`` solver iterations."""
        g = self.group
        for _ in range(ticks):
            if g.flows_dirty:
                g.rebuild_flows()
            inlet = self.operator.inlets_array(self.prev_exhaust)
            for row, value in self.inlet_overrides.items():
                inlet[row] = value
            tick_group(g, inlet, self.dt)
            self.prev_exhaust = g.T[:, self._exhaust_col].copy()
            self.time += self.dt
            self.iterations += 1

    # -- checkpoint / restore --------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """All mutable solver state as plain JSON-able data."""
        g = self.group
        return {
            "time": self.time,
            "iterations": self.iterations,
            "T": g.T.tolist(),
            "util": g.util.tolist(),
            "prev_exhaust": self.prev_exhaust.tolist(),
            "inlet_overrides": {
                str(row): value for row, value in self.inlet_overrides.items()
            },
            "topology": self.operator.checkpoint(),
        }

    def restore(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` (same topology and layout).

        JSON serializes floats with round-trip precision, so a restore
        from parsed JSON reproduces every array bit-for-bit.
        """
        g = self.group
        T = np.array(data["T"], dtype=float)
        util = np.array(data["util"], dtype=float)
        prev = np.array(data["prev_exhaust"], dtype=float)
        if T.shape != g.T.shape or util.shape != g.util.shape:
            raise TopologyError("checkpoint shape does not match this solver")
        if prev.shape != self.prev_exhaust.shape:
            raise TopologyError("checkpoint shape does not match this solver")
        g.T[:] = T
        g.util[:] = util
        self.prev_exhaust = prev
        self.inlet_overrides = {
            int(row): float(value)
            for row, value in data["inlet_overrides"].items()
        }
        self.operator.restore(data["topology"])
        self.time = float(data["time"])
        self.iterations = int(data["iterations"])

    def __repr__(self) -> str:
        return (
            f"FlatSolver({self.n} machines x "
            f"{len(self.plan.node_names)} nodes, t={self.time:.0f}s)"
        )


class ScaleSimulation:
    """A datacenter-scale workload driving one :class:`FlatSolver`.

    Each tick: per-machine phase-shifted diurnal offered load, one
    vectorized LVS allocation across the whole room, CPU/disk
    utilizations from the allocated rates, one flattened solver tick.
    Every ``monitor_period`` seconds the vectorized Freon-like policy
    reads the CPU temperature column and throttles/restores scheduling
    weights; every ``sample_period`` seconds per-zone telemetry gauges
    are refreshed.
    """

    def __init__(
        self,
        topology: Topology,
        duration: float = 3600.0,
        dt: float = 1.0,
        layout: Optional[MachineLayout] = None,
        policy: str = "freon",
        monitor_period: float = 4.0,
        sample_period: float = 60.0,
        peak_utilization: float = 0.70,
        valley_fraction: float = 0.15,
        plateau: float = 0.75,
        phase_spread: float = 0.25,
        phase_seed: int = 2006,
        cpu_high: float = table1.T_HIGH_CPU,
        cpu_low: float = table1.T_LOW_CPU,
        mix: Optional[RequestMix] = None,
        cloning: Optional[CloningConfig] = None,
        telemetry=None,
    ) -> None:
        if policy not in ("freon", "none"):
            raise TopologyError(
                f"unknown scale policy {policy!r}; pick 'freon' or 'none'"
            )
        if duration <= 0.0:
            raise TopologyError("duration must be positive")
        if monitor_period <= 0.0 or sample_period <= 0.0:
            raise TopologyError("periods must be positive")
        self.topology = topology
        self.duration = float(duration)
        self.policy = policy
        self.monitor_period = float(monitor_period)
        self.sample_period = float(sample_period)
        self.cpu_high = float(cpu_high)
        self.cpu_low = float(cpu_low)
        self.mix = RequestMix() if mix is None else mix
        self.solver = FlatSolver(topology, layout=layout, dt=dt)
        n = self.solver.n
        self.phases = np.array(
            phase_offsets(n, spread=phase_spread, seed=phase_seed)
        )
        #: Per-machine peak offered rate: each machine serves its own
        #: regional stream sized for one server at the target peak.
        self._peak_rate = peak_rate_for_utilization(
            peak_utilization, 1, self.mix
        )
        self._valley_rate = valley_fraction * self._peak_rate
        self._plateau = float(plateau)
        self.weights = np.ones(n)
        self._capacity = np.full(n, self.mix.capacity())
        self.offered_total = 0.0
        self.dropped_total = 0.0
        self.throttle_events = 0
        #: Request-cloning policy; None keeps single dispatch (and the
        #: summary/checkpoint layouts exactly as before).
        self.cloning = cloning
        self.clone_ticks = 0
        self.shed_ticks = 0
        self._monitor_ticks = max(
            1, int(round(self.monitor_period / self.solver.dt))
        )
        self._sample_ticks = max(
            1, int(round(self.sample_period / self.solver.dt))
        )
        # Zone partition for reduceat aggregation: rows sorted by zone
        # id (stable, so canonical machine order breaks ties), one
        # segment start per zone.
        self._zone_names = list(topology.zones)
        zone_ids = np.array(
            [
                self._zone_names.index(topology.positions[name].zone)
                for name in topology.machines
            ],
            dtype=np.intp,
        )
        self._zone_sort = np.argsort(zone_ids, kind="stable")
        sorted_ids = zone_ids[self._zone_sort]
        self._zone_starts = np.searchsorted(
            sorted_ids, np.arange(len(self._zone_names))
        )
        self._zone_counts = np.bincount(
            zone_ids, minlength=len(self._zone_names)
        ).astype(float)
        self.telemetry = _ensure_telemetry(telemetry)
        self.telemetry.gauge(
            "sim_machines", help="Machines in the simulated datacenter.",
        ).set(float(n))
        self.telemetry.gauge(
            "sim_zones", help="Cooling zones in the simulated datacenter.",
        ).set(float(len(self._zone_names)))

    # -- workload --------------------------------------------------------

    def offered_rates(self, t: float):
        """Per-machine offered request rates at simulated time ``t``.

        The vectorized form of :func:`repro.cluster.tracegen.
        diurnal_shape` with per-machine phase offsets and no jitter
        (jitter would need a per-machine RNG stream per tick; the phase
        spread already decorrelates the room).
        """
        duration = self.duration
        tt = (t - self.phases * duration) % duration
        peak_at = 0.6 * duration
        ascent = tt <= peak_at
        phase = np.where(
            ascent,
            math.pi * (tt / peak_at - 1.0),
            np.minimum(math.pi * (tt - peak_at) / (duration - peak_at), math.pi),
        )
        shape = 0.5 * (1.0 + np.cos(phase))
        shape = np.minimum(shape, self._plateau) / self._plateau
        return self._valley_rate + (self._peak_rate - self._valley_rate) * shape

    # -- stepping --------------------------------------------------------

    def step(self, ticks: int = 1) -> None:
        """Advance the datacenter ``ticks`` solver ticks."""
        solver = self.solver
        dt = solver.dt
        cpu_T = solver.node_column(table1.CPU)
        for _ in range(ticks):
            rates = self.offered_rates(solver.time)
            offered = float(rates.sum())
            if self.cloning is None:
                allocated, dropped = allocate_rates(
                    offered, self.weights, self._capacity
                )
            else:
                allocated, dropped, _, cloned = allocate_rates_cloned(
                    offered, self.weights, self._capacity, self.cloning
                )
                if cloned:
                    self.clone_ticks += 1
                else:
                    self.shed_ticks += 1
            self.offered_total += offered * dt
            self.dropped_total += dropped * dt
            solver.set_utilization(
                table1.CPU,
                np.minimum(allocated * self.mix.cpu_demand, 1.0),
            )
            solver.set_utilization(
                table1.DISK_PLATTERS,
                np.minimum(allocated * self.mix.disk_demand, 1.0),
            )
            solver.step()
            if self.policy != "none" and (
                solver.iterations % self._monitor_ticks == 0
            ):
                hot = cpu_T > self.cpu_high
                if hot.any():
                    self.throttle_events += int(hot.sum())
                    self.weights = np.where(
                        hot,
                        np.maximum(self.weights * THROTTLE_FACTOR, MIN_WEIGHT),
                        self.weights,
                    )
                cold = (~hot) & (cpu_T < self.cpu_low) & (self.weights < 1.0)
                if cold.any():
                    self.weights = np.where(
                        cold,
                        np.minimum(self.weights * RESTORE_FACTOR, 1.0),
                        self.weights,
                    )
            if self.telemetry.enabled and (
                solver.iterations % self._sample_ticks == 0
            ):
                self._sample()

    def run(self, duration: Optional[float] = None) -> Dict[str, object]:
        """Run for ``duration`` simulated seconds and return the summary."""
        if duration is None:
            duration = self.duration
        ticks = int(round(duration / self.solver.dt))
        self.step(ticks)
        if self.telemetry.enabled:
            self._sample()
        return self.summary()

    # -- observability ---------------------------------------------------

    def zone_cpu_stats(self) -> Dict[str, Tuple[float, float]]:
        """Per zone: (max, mean) CPU temperature right now."""
        cpu_T = self.solver.node_column(table1.CPU)
        by_zone = cpu_T[self._zone_sort]
        maxima = np.maximum.reduceat(by_zone, self._zone_starts)
        sums = np.add.reduceat(by_zone, self._zone_starts)
        means = sums / self._zone_counts
        return {
            zone: (float(maxima[i]), float(means[i]))
            for i, zone in enumerate(self._zone_names)
        }

    def _sample(self) -> None:
        self.telemetry.advance(self.solver.time)
        for zone, (peak, mean) in self.zone_cpu_stats().items():
            labels = {"zone": zone}
            self.telemetry.gauge(
                "scale_zone_cpu_max_celsius", labels,
                help="Hottest CPU temperature per cooling zone.",
            ).set(peak)
            self.telemetry.gauge(
                "scale_zone_cpu_mean_celsius", labels,
                help="Mean CPU temperature per cooling zone.",
            ).set(mean)
        throttled = int((self.weights < 1.0).sum())
        self.telemetry.gauge(
            "scale_throttled_machines",
            help="Machines currently running at reduced scheduling weight.",
        ).set(float(throttled))
        self.telemetry.gauge(
            "scale_offered_requests_total",
            help="Cumulative offered requests.",
        ).set(self.offered_total)
        self.telemetry.gauge(
            "scale_dropped_requests_total",
            help="Cumulative dropped requests.",
        ).set(self.dropped_total)

    def summary(self) -> Dict[str, object]:
        """Scalar outcome summary (the CLI's report)."""
        zone_stats = self.zone_cpu_stats()
        drop_fraction = (
            self.dropped_total / self.offered_total
            if self.offered_total > 0.0
            else 0.0
        )
        summary: Dict[str, object] = {
            "machines": self.solver.n,
            "zones": len(self._zone_names),
            "ticks": self.solver.iterations,
            "sim_time": self.solver.time,
            "offered_requests": self.offered_total,
            "dropped_requests": self.dropped_total,
            "drop_fraction": drop_fraction,
            "throttle_events": self.throttle_events,
            "throttled_machines": int((self.weights < 1.0).sum()),
            "zone_cpu_max": {z: s[0] for z, s in zone_stats.items()},
            "zone_cpu_mean": {z: s[1] for z, s in zone_stats.items()},
        }
        if self.cloning is not None:
            summary["clone_ticks"] = self.clone_ticks
            summary["shed_ticks"] = self.shed_ticks
            summary["clone_latency_scale"] = self.cloning.latency_scale
        return summary

    # -- checkpoint / restore --------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the whole datacenter as plain JSON-able data."""
        state: Dict[str, object] = {
            "version": CHECKPOINT_VERSION,
            "solver": self.solver.checkpoint(),
            "weights": self.weights.tolist(),
            "offered_total": self.offered_total,
            "dropped_total": self.dropped_total,
            "throttle_events": self.throttle_events,
        }
        if self.cloning is not None:
            # Gated so classic checkpoints keep their historical layout.
            state["clone_ticks"] = self.clone_ticks
            state["shed_ticks"] = self.shed_ticks
        return state

    def restore(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` onto this simulation."""
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise TopologyError(
                f"unsupported scale checkpoint version {version!r}"
            )
        self.solver.restore(data["solver"])
        weights = np.array(data["weights"], dtype=float)
        if weights.shape != self.weights.shape:
            raise TopologyError("checkpoint shape does not match this room")
        self.weights = weights
        self.offered_total = float(data["offered_total"])
        self.dropped_total = float(data["dropped_total"])
        self.throttle_events = int(data["throttle_events"])
        self.clone_ticks = int(data.get("clone_ticks", 0))
        self.shed_ticks = int(data.get("shed_ticks", 0))

    def __repr__(self) -> str:
        return (
            f"ScaleSimulation({self.solver.n} machines, "
            f"{len(self._zone_names)} zones, policy={self.policy!r})"
        )
