"""The sparse per-machine inlet coupling operator of a topology.

:class:`RecirculationOperator` turns a :class:`~repro.topology.model.
Topology` into the per-tick inlet computation

    ``inlet_i = (1 - sum_j w_ji) * supply(zone_i) + sum_j w_ji * exhaust_j``

generalizing the solver's scalar ``set_cluster_fraction`` weights into a
sparse coupling operator over the whole room.  It offers two bitwise
compatible evaluations:

* :meth:`inlet` — scalar, one machine at a time, reading a mapping of
  previous-tick exhausts.  This is what :class:`~repro.core.solver.
  Solver` calls from its inter-machine traversal (both the python and
  compiled engines go through the solver's scalar inlet dict).
* :meth:`inlets_array` — one sparse matvec over the whole machine axis
  (``np.add.at`` accumulation), used by the flattened
  :class:`~repro.topology.sim.FlatSolver`.

Both paths add the supply term first and then each incoming edge in
topology edge order, so they accumulate in the same floating-point
order; ``tests/topology/test_recirculation.py`` pins the bitwise
equality.

Fiddle edits are supported live: :meth:`set_supply` overrides a zone's
cold-aisle temperature (an AC failure), :meth:`set_weight` changes one
recirculation edge (a containment-curtain change).  Both invalidate the
compiled tables, which are rebuilt lazily.  All mutable state round
trips through :meth:`checkpoint` / :meth:`restore` as plain JSON data.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

try:  # NumPy is optional: the scalar path must work without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..errors import TopologyError
from .model import Topology, _SUM_TOLERANCE


class RecirculationOperator:
    """Live, editable inlet-mixing operator compiled from a topology."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.names: Tuple[str, ...] = topology.machines
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.names)
        }
        #: Live edge weights, editable through :meth:`set_weight`.
        self._weights: Dict[Tuple[str, str], float] = {
            (e.src, e.dst): e.weight for e in topology.recirculation
        }
        #: Zone supply-temperature overrides (fiddle ``cluster zone``).
        self._supply_overrides: Dict[str, float] = {}
        # Compiled tables, rebuilt lazily after an edit.
        self._dirty = True
        self._supply_frac: List[float] = []
        self._supply_temp: List[float] = []
        #: Per machine: incoming (src name, weight) terms in edge order.
        self._terms: List[List[Tuple[str, float]]] = []
        self._rows = None  # dst index per edge (NumPy path)
        self._cols = None  # src index per edge
        self._w = None  # weight per edge
        self._supply_arr = None
        self._frac_arr = None

    # -- edits -----------------------------------------------------------

    def set_supply(self, zone: str, value: float) -> None:
        """Override one zone's cold-aisle supply temperature."""
        if zone not in self.topology.zones:
            raise TopologyError(f"unknown zone {zone!r}")
        self._supply_overrides[zone] = float(value)
        self._dirty = True

    def set_weight(self, src: str, dst: str, value: float) -> None:
        """Change one recirculation edge's weight.

        The edge must exist in the topology; the new per-destination
        weight sum must stay convex (<= 1).
        """
        if (src, dst) not in self._weights:
            raise TopologyError(
                f"no recirculation edge {src!r}->{dst!r} in the topology"
            )
        if value < 0.0:
            raise TopologyError("recirculation weights must be >= 0")
        total = value + sum(
            w for (s, d), w in self._weights.items()
            if d == dst and (s, d) != (src, dst)
        )
        if total > 1.0 + _SUM_TOLERANCE:
            raise TopologyError(
                f"incoming weights of {dst!r} would sum to {total:.4f} > 1"
            )
        self._weights[(src, dst)] = float(value)
        self._dirty = True

    def supply_temperature(self, zone: str) -> float:
        """Current (possibly overridden) supply temperature of a zone."""
        if zone not in self.topology.zones:
            raise TopologyError(f"unknown zone {zone!r}")
        return self._supply_overrides.get(
            zone, self.topology.zones[zone].supply_temperature
        )

    def weight(self, src: str, dst: str) -> float:
        """Current weight of one recirculation edge."""
        try:
            return self._weights[(src, dst)]
        except KeyError:
            raise TopologyError(
                f"no recirculation edge {src!r}->{dst!r} in the topology"
            ) from None

    # -- compilation -----------------------------------------------------

    def _compile(self) -> None:
        topo = self.topology
        n = len(self.names)
        terms: List[List[Tuple[str, float]]] = [[] for _ in range(n)]
        incoming = [0.0] * n
        rows: List[int] = []
        cols: List[int] = []
        weights: List[float] = []
        for edge in topo.recirculation:
            w = self._weights[(edge.src, edge.dst)]
            dst_i = self.index[edge.dst]
            terms[dst_i].append((edge.src, w))
            incoming[dst_i] += w
            rows.append(dst_i)
            cols.append(self.index[edge.src])
            weights.append(w)
        self._terms = terms
        self._supply_frac = [1.0 - total for total in incoming]
        self._supply_temp = [
            self.supply_temperature(topo.positions[name].zone)
            for name in self.names
        ]
        if np is not None:
            self._rows = np.array(rows, dtype=np.intp)
            self._cols = np.array(cols, dtype=np.intp)
            self._w = np.array(weights, dtype=float)
            self._supply_arr = np.array(self._supply_temp, dtype=float)
            self._frac_arr = np.array(self._supply_frac, dtype=float)
        self._dirty = False

    # -- evaluation ------------------------------------------------------

    def inlet(self, machine: str, prev_exhaust: Mapping[str, float]) -> float:
        """Scalar inlet temperature of one machine for this tick."""
        if self._dirty:
            self._compile()
        i = self.index[machine]
        total = self._supply_frac[i] * self._supply_temp[i]
        for src, w in self._terms[i]:
            total += w * prev_exhaust[src]
        return total

    def inlets_array(self, prev_exhaust):
        """Per-machine inlet temperatures as one sparse matvec.

        ``prev_exhaust`` is the previous-tick exhaust array in canonical
        machine order.  ``np.add.at`` applies the edge contributions
        unbuffered in edge order, matching :meth:`inlet`'s scalar
        accumulation bitwise.
        """
        if np is None:
            raise TopologyError(
                "the vectorized recirculation path requires NumPy"
            )
        if self._dirty:
            self._compile()
        out = self._frac_arr * self._supply_arr
        if len(self._rows):
            np.add.at(out, self._rows, self._w * prev_exhaust[self._cols])
        return out

    # -- checkpoint / restore --------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """All mutable operator state as plain JSON-able data."""
        return {
            "supply_overrides": dict(self._supply_overrides),
            "weights": {
                f"{src}|{dst}": w for (src, dst), w in self._weights.items()
            },
        }

    def restore(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` (same topology required)."""
        overrides = {
            str(zone): float(v)
            for zone, v in data["supply_overrides"].items()
        }
        for zone in overrides:
            if zone not in self.topology.zones:
                raise TopologyError(f"unknown zone {zone!r} in checkpoint")
        weights: Dict[Tuple[str, str], float] = {}
        for key, w in data["weights"].items():
            src, dst = key.split("|")
            if (src, dst) not in self._weights:
                raise TopologyError(
                    f"unknown recirculation edge {src!r}->{dst!r} "
                    "in checkpoint"
                )
            weights[(src, dst)] = float(w)
        if set(weights) != set(self._weights):
            raise TopologyError("checkpoint weight set does not match topology")
        self._supply_overrides = overrides
        self._weights = weights
        self._dirty = True

    def __repr__(self) -> str:
        return (
            f"RecirculationOperator({len(self.names)} machines, "
            f"{len(self._weights)} edges)"
        )
