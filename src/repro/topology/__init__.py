"""Datacenter-scale spatial topology: zones, racks, recirculation.

The paper's validation runs couple machines with a single scalar
recirculation fraction (:meth:`repro.core.solver.Solver.
set_cluster_fraction`).  This package generalizes that to a room: a
:class:`Topology` places every machine at a (zone, rack, slot) grid
position, a sparse :class:`RecirculationEdge` set mixes each machine's
inlet from its zone's cold-aisle supply and neighboring machines'
exhausts, and :class:`FlatSolver` solves the whole room as one
machines×nodes array per tick so 1k-10k machines stay interactive.
"""

from .model import (
    Position,
    RecirculationEdge,
    Topology,
    Zone,
    grid_topology,
    load_topology,
)
from .recirculation import RecirculationOperator
from .sim import FlatSolver, ScaleSimulation, inlet_events_from_script

__all__ = [
    "Position",
    "RecirculationEdge",
    "Topology",
    "Zone",
    "grid_topology",
    "load_topology",
    "RecirculationOperator",
    "FlatSolver",
    "ScaleSimulation",
    "inlet_events_from_script",
]
