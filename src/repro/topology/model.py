"""Datacenter spatial topology: racks, zones, and machine positions.

The paper's cluster experiments treat the machine room as a flat list of
machines fed by one air conditioner; recirculation appears only as a
scalar inlet-mixing fraction (``recirculating_cluster``).  This module
models the *room*: machines sit at grid positions (zone, rack, slot),
zones have their own cold-aisle supply temperature, and an explicit
inter-machine recirculation edge list says which machines re-ingest
which neighbours' exhaust air (hot-aisle coupling).  "Spatiotemporal
Modeling of Node Temperatures in Supercomputers" (see PAPERS.md) shows
node temperatures are strongly spatially correlated across a room —
exactly the structure these edges encode.

A :class:`Topology` is *convex by construction*: each machine's inlet is

    ``(1 - sum(w_in)) * supply(zone) + sum(w_e * exhaust(src_e))``

so the incoming recirculation weights of every machine must sum to at
most 1, the remainder being the cold-aisle supply fraction.  Unlike the
perfect-mixing cluster graph there is no flow-weight normalization step,
which keeps the scalar (per-machine) and vectorized (sparse-matvec)
evaluations of :mod:`repro.topology.recirculation` in the same
floating-point accumulation order.

Topologies serialize to plain JSON (``to_dict`` / ``from_dict`` /
:func:`load_topology`) so they can ride inside a
:class:`~repro.parallel.spec.RunSpec`, a checkpoint, or a ``--topology``
CLI file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import TopologyError

#: Incoming recirculation weights may sum to at most this (tolerance for
#: builders that split a budget across float shares).
_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Zone:
    """One cooling zone: a named cold-aisle supply."""

    name: str
    supply_temperature: float


@dataclass(frozen=True)
class Position:
    """Grid coordinates of one machine: zone name, rack, slot-in-rack."""

    zone: str
    rack: int
    slot: int


@dataclass(frozen=True)
class RecirculationEdge:
    """``weight`` of ``src``'s exhaust entering ``dst``'s inlet mix."""

    src: str
    dst: str
    weight: float


class Topology:
    """The machine-room model: zones, machine positions, recirculation.

    ``machines`` fixes the canonical machine order (the row order of the
    flattened solver arrays); every machine must have a
    :class:`Position` in a known zone.  ``recirculation`` edges are kept
    in the given order — the order is part of the model, because it
    fixes the floating-point accumulation order of the inlet mix.
    """

    def __init__(
        self,
        machines: Sequence[str],
        zones: Sequence[Zone],
        positions: Mapping[str, Position],
        recirculation: Sequence[RecirculationEdge] = (),
    ) -> None:
        self.machines: Tuple[str, ...] = tuple(machines)
        if not self.machines:
            raise TopologyError("a topology needs at least one machine")
        if len(set(self.machines)) != len(self.machines):
            raise TopologyError("duplicate machine names in topology")
        self.zones: Dict[str, Zone] = {}
        for zone in zones:
            if zone.name in self.zones:
                raise TopologyError(f"duplicate zone {zone.name!r}")
            self.zones[zone.name] = zone
        if not self.zones:
            raise TopologyError("a topology needs at least one zone")
        self.positions: Dict[str, Position] = dict(positions)
        missing = set(self.machines) - set(self.positions)
        extra = set(self.positions) - set(self.machines)
        if missing or extra:
            raise TopologyError(
                "positions do not match machines "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        for name, pos in self.positions.items():
            if pos.zone not in self.zones:
                raise TopologyError(
                    f"machine {name!r} placed in unknown zone {pos.zone!r}"
                )
        taken: Dict[Tuple[str, int, int], str] = {}
        for name in self.machines:
            pos = self.positions[name]
            key = (pos.zone, pos.rack, pos.slot)
            if key in taken:
                raise TopologyError(
                    f"machines {taken[key]!r} and {name!r} share grid "
                    f"position {key}"
                )
            taken[key] = name
        self.recirculation: Tuple[RecirculationEdge, ...] = tuple(recirculation)
        known = set(self.machines)
        incoming: Dict[str, float] = {name: 0.0 for name in self.machines}
        seen_pairs = set()
        for edge in self.recirculation:
            if edge.src not in known or edge.dst not in known:
                raise TopologyError(
                    f"recirculation edge {edge.src!r}->{edge.dst!r} names "
                    "an unknown machine"
                )
            if edge.src == edge.dst:
                raise TopologyError(
                    f"machine {edge.src!r} cannot recirculate into itself"
                )
            if (edge.src, edge.dst) in seen_pairs:
                raise TopologyError(
                    f"duplicate recirculation edge {edge.src!r}->{edge.dst!r}"
                )
            seen_pairs.add((edge.src, edge.dst))
            if edge.weight < 0.0:
                raise TopologyError("recirculation weights must be >= 0")
            incoming[edge.dst] += edge.weight
        for name, total in incoming.items():
            if total > 1.0 + _SUM_TOLERANCE:
                raise TopologyError(
                    f"incoming recirculation weights of {name!r} sum to "
                    f"{total:.4f}, must be <= 1 (the remainder is the "
                    "cold-aisle supply fraction)"
                )

    # -- queries ---------------------------------------------------------

    def zone_of(self, machine: str) -> str:
        """Zone name of one machine."""
        try:
            return self.positions[machine].zone
        except KeyError:
            raise TopologyError(f"unknown machine {machine!r}") from None

    def supply_temperature(self, machine: str) -> float:
        """Cold-aisle supply temperature feeding one machine."""
        return self.zones[self.zone_of(machine)].supply_temperature

    def zone_members(self) -> Dict[str, List[str]]:
        """Machines per zone, in canonical machine order."""
        members: Dict[str, List[str]] = {name: [] for name in self.zones}
        for machine in self.machines:
            members[self.positions[machine].zone].append(machine)
        return members

    def __len__(self) -> int:
        return len(self.machines)

    def __repr__(self) -> str:
        return (
            f"Topology({len(self.machines)} machines, "
            f"{len(self.zones)} zones, "
            f"{len(self.recirculation)} recirculation edges)"
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able form; machine key order is the solve order."""
        return {
            "zones": {
                zone.name: {"supply_temperature": zone.supply_temperature}
                for zone in self.zones.values()
            },
            "machines": {
                name: {
                    "zone": self.positions[name].zone,
                    "rack": self.positions[name].rack,
                    "slot": self.positions[name].slot,
                }
                for name in self.machines
            },
            "recirculation": [
                [edge.src, edge.dst, edge.weight]
                for edge in self.recirculation
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Topology":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        unknown = sorted(set(data) - {"zones", "machines", "recirculation"})
        if unknown:
            raise TopologyError(f"unknown topology key(s): {unknown}")
        try:
            zones = [
                Zone(name, float(spec["supply_temperature"]))
                for name, spec in data["zones"].items()
            ]
            machines = list(data["machines"])
            positions = {
                name: Position(
                    zone=str(spec["zone"]),
                    rack=int(spec["rack"]),
                    slot=int(spec["slot"]),
                )
                for name, spec in data["machines"].items()
            }
            recirculation = [
                RecirculationEdge(str(src), str(dst), float(weight))
                for src, dst, weight in data.get("recirculation", [])
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise TopologyError(f"malformed topology data: {exc}") from exc
        return cls(machines, zones, positions, recirculation)

    def to_json(self) -> str:
        """Canonical JSON text (machine order preserved)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Topology":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopologyError(f"invalid topology JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise TopologyError("topology JSON must be an object")
        return cls.from_dict(data)


def load_topology(path: str) -> Topology:
    """Read a :class:`Topology` from a JSON file (CLI ``--topology``)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise TopologyError(f"cannot read topology file {path!r}: {exc}") from exc
    return Topology.from_json(text)


def grid_topology(
    machines: int,
    zones: int = 2,
    machines_per_rack: int = 20,
    supply_temperature: float = 21.6,
    zone_supplies: Optional[Mapping[str, float]] = None,
    intra_rack: float = 0.08,
    cross_rack: float = 0.04,
) -> Topology:
    """A regular machine-room grid with hot-aisle coupling.

    Machines ``machine1..machineN`` fill racks of ``machines_per_rack``
    slots; racks are dealt round-robin across ``zones`` zones.  Each
    machine re-ingests ``intra_rack`` of the exhaust of the machine one
    slot below it in the same rack (heat rising inside the rack) and
    ``cross_rack`` of the exhaust of the same slot in the previous rack
    of its zone (the shared hot aisle between adjacent racks).  Both
    couplings are deterministic functions of the grid, so equal
    arguments build byte-identical topologies.
    """
    if machines <= 0:
        raise TopologyError("machines must be positive")
    if zones <= 0 or machines_per_rack <= 0:
        raise TopologyError("zones and machines_per_rack must be positive")
    if intra_rack < 0.0 or cross_rack < 0.0 or intra_rack + cross_rack > 1.0:
        raise TopologyError(
            "coupling weights must be >= 0 and sum to at most 1"
        )
    zone_names = [f"zone{z}" for z in range(zones)]
    zone_list = [
        Zone(
            name,
            float(
                zone_supplies.get(name, supply_temperature)
                if zone_supplies is not None
                else supply_temperature
            ),
        )
        for name in zone_names
    ]
    names = [f"machine{i}" for i in range(1, machines + 1)]
    positions: Dict[str, Position] = {}
    edges: List[RecirculationEdge] = []
    per_rack = machines_per_rack
    for i, name in enumerate(names):
        rack_global = i // per_rack
        slot = i % per_rack
        zone = zone_names[rack_global % zones]
        rack_in_zone = rack_global // zones
        positions[name] = Position(zone=zone, rack=rack_in_zone, slot=slot)
        if intra_rack > 0.0 and slot > 0:
            edges.append(RecirculationEdge(names[i - 1], name, intra_rack))
        prev_rack_start = (rack_global - zones) * per_rack
        if cross_rack > 0.0 and prev_rack_start >= 0:
            edges.append(
                RecirculationEdge(names[prev_rack_start + slot], name, cross_rack)
            )
    return Topology(names, zone_list, positions, edges)
