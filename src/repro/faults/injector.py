"""Runtime fault injection: hooks, the lossy channel, and the watchdog.

The :class:`FaultInjector` is the single runtime authority on "what is
broken right now".  It is driven by the simulation clock
(:meth:`FaultInjector.advance_to`) and consulted from hook points wired
through the stack:

* :class:`~repro.sensors.server.SensorService` passes every reading
  through :meth:`filter_sensor`;
* the tempd -> admd datagram path runs through a :class:`LossyChannel`,
  which asks :meth:`datagram_fate` about each message;
* :class:`~repro.cluster.simulation.ClusterSimulation` checks
  :meth:`daemon_up` / :meth:`monitord_active` before ticking daemons;
* :class:`DaemonWatchdog` restarts daemons the injector reports crashed.

Everything stochastic draws from one seeded RNG, so replaying the same
fault schedule with the same seed reproduces a run bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import FaultError, SensorError
from ..telemetry import ensure as _ensure_telemetry
from .model import FaultKind, FaultSpec
from .schedule import FaultSchedule, ScheduledFault

#: Seconds a reordered datagram is held back, letting later ones overtake.
REORDER_HOLD = 2.5


@dataclass
class ActiveFault:
    """One fault currently in force."""

    spec: FaultSpec
    start: float
    #: Absolute end time, or None for open-ended faults.
    end: Optional[float]
    #: Per-fault scratch state (e.g. the frozen stuck-at value).
    state: Dict[str, float] = field(default_factory=dict)


class FaultInjector:
    """Seeded, clock-driven fault state machine."""

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        seed: int = 0,
        telemetry=None,
    ) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        self._pending: List[ScheduledFault] = sorted(
            schedule or [], key=lambda f: f.start
        )
        self._next = 0
        self._active: List[ActiveFault] = []
        self.now = 0.0
        #: Audit log of (time, event) entries.  Bit-identical replay
        #: tests compare this list verbatim, so it stays authoritative;
        #: telemetry events mirror it when a facade is attached.
        self.log: List[Tuple[float, str]] = []
        #: Telemetry facade mirroring the audit log; the simulation
        #: harness rebinds this when it owns an enabled facade.
        self.telemetry = _ensure_telemetry(telemetry)
        #: Counters for summaries and tests.
        self.sensor_faulted_reads = 0
        self.sensor_dropped_reads = 0

    def _note(self, time: float, text: str) -> None:
        """Append one audit-log entry, mirrored as a telemetry event."""
        self.log.append((time, text))
        if self.telemetry.enabled:
            kind = text.split(" ", 1)[0]
            self.telemetry.counter(
                "fault_log_entries_total", {"kind": kind},
                help="Fault-injector audit-log entries, by kind.",
            ).inc()
            self.telemetry.event("fault_" + kind, "faults", detail=text)

    # -- lifecycle ---------------------------------------------------------

    def schedule(self, start: float, spec: FaultSpec) -> None:
        """Add one fault to the pending schedule."""
        self._pending.append(ScheduledFault(start=start, spec=spec))
        self._pending.sort(key=lambda f: f.start)
        if self._next > 0:
            # Keep unfired entries ahead of the cursor consistent.
            fired = self._pending[: self._next]
            if any(f.start > start for f in fired):
                raise FaultError(
                    "cannot schedule a fault in the already-elapsed past"
                )

    def inject(self, spec: FaultSpec, now: Optional[float] = None) -> ActiveFault:
        """Activate a fault immediately (script statements land here)."""
        if now is None:
            now = self.now
        end = now + spec.duration if spec.duration is not None else None
        active = ActiveFault(spec=spec, start=now, end=end)
        self._active.append(active)
        self._note(now, f"inject {spec.describe()}")
        return active

    def advance_to(self, now: float) -> None:
        """Move the clock: fire due scheduled faults, expire finished ones."""
        self.now = now
        while self._next < len(self._pending) and (
            self._pending[self._next].start <= now
        ):
            entry = self._pending[self._next]
            self.inject(entry.spec, now=entry.start)
            self._next += 1
        if self._active:
            expired = [
                f for f in self._active if f.end is not None and f.end <= now
            ]
            for fault in expired:
                self._active.remove(fault)
                self._note(now, f"expire {fault.spec.describe()}")

    def clear(self, kind: Optional[FaultKind] = None) -> int:
        """Deactivate faults (all, or all of one kind); returns the count."""
        victims = [
            f for f in self._active if kind is None or f.spec.kind is kind
        ]
        for fault in victims:
            self._active.remove(fault)
            self._note(self.now, f"clear {fault.spec.describe()}")
        return len(victims)

    @property
    def active(self) -> List[ActiveFault]:
        """Faults currently in force (snapshot)."""
        return list(self._active)

    def _matching(self, *kinds: FaultKind) -> List[ActiveFault]:
        if not self._active:  # hot path: most ticks have no faults at all
            return []
        return [f for f in self._active if f.spec.kind in kinds]

    # -- sensor hook -------------------------------------------------------

    def filter_sensor(self, machine: str, component: str, value: float) -> float:
        """Apply active sensor faults to one reading.

        Raises :class:`~repro.errors.SensorError` while a dropout fault
        covers the sensor.
        """
        for fault in self._active:
            spec = fault.spec
            if not spec.is_sensor:
                continue
            if spec.machine != machine or spec.target.lower() != component.lower():
                continue
            self.sensor_faulted_reads += 1
            if spec.kind is FaultKind.SENSOR_DROPOUT:
                self.sensor_dropped_reads += 1
                raise SensorError(
                    f"injected dropout: sensor {component!r} on "
                    f"{machine!r} is not responding"
                )
            if spec.kind is FaultKind.SENSOR_STUCK:
                if "value" not in fault.state:
                    fault.state["value"] = (
                        spec.value if spec.value is not None else value
                    )
                value = fault.state["value"]
            elif spec.kind is FaultKind.SENSOR_SPIKE:
                value = value + spec.value
            elif spec.kind is FaultKind.SENSOR_NOISE:
                value = value + self._rng.gauss(0.0, spec.value)
        return value

    # -- network hook ------------------------------------------------------

    def datagram_fate(self) -> Tuple[bool, bool, float]:
        """Decide one datagram's fate: (dropped, duplicated, delay).

        Loss wins over everything; duplication and delay compose.  The
        delay combines fixed ``NET_DELAY`` faults with a probabilistic
        ``NET_REORDER`` hold-back.
        """
        dropped = False
        duplicated = False
        delay = 0.0
        for fault in self._matching(FaultKind.NET_LOSS):
            if self._rng.random() < fault.spec.value:
                dropped = True
        # Keep the RNG stream position independent of outcomes: every
        # active probabilistic fault consumes exactly one draw per
        # datagram, so fates stay reproducible under composition.
        for fault in self._matching(FaultKind.NET_DUP):
            if self._rng.random() < fault.spec.value:
                duplicated = True
        for fault in self._matching(FaultKind.NET_REORDER):
            if self._rng.random() < fault.spec.value:
                delay += REORDER_HOLD
        for fault in self._matching(FaultKind.NET_DELAY):
            delay += fault.spec.value
        return dropped, duplicated, delay

    # -- daemon hooks ------------------------------------------------------

    def daemon_up(self, machine: str, daemon: str) -> bool:
        """False while a crash fault covers the daemon."""
        for fault in self._matching(FaultKind.DAEMON_CRASH):
            if fault.spec.machine == machine and fault.spec.target == daemon:
                return False
        return True

    def crashed_daemons(self) -> List[Tuple[str, str, float]]:
        """All crashed daemons as (machine, daemon, down-since) tuples."""
        return [
            (f.spec.machine, f.spec.target, f.start)
            for f in self._matching(FaultKind.DAEMON_CRASH)
        ]

    def restart_daemon(
        self, machine: str, daemon: str, now: Optional[float] = None
    ) -> bool:
        """Clear the crash fault covering a daemon (watchdog action).

        ``now`` stamps the audit-log entry; the watchdog passes its own
        clock, which may be one tick ahead of the injector's.
        """
        for fault in self._matching(FaultKind.DAEMON_CRASH):
            if fault.spec.machine == machine and fault.spec.target == daemon:
                self._active.remove(fault)
                self._note(
                    self.now if now is None else now,
                    f"restart {machine}/{daemon}",
                )
                return True
        return False

    @property
    def any_active(self) -> bool:
        """True while any injected fault is live (hot-path pre-check)."""
        return bool(self._active)

    def monitord_active(self, machine: str) -> bool:
        """False while monitord is stalled or crashed on a machine."""
        if not self._active:
            return True
        if not self.daemon_up(machine, "monitord"):
            return False
        for fault in self._matching(FaultKind.MONITORD_STALL):
            if fault.spec.machine == machine:
                return False
        return True

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the injector as plain JSON-able data.

        Fault specs round-trip through the ``fault`` statement grammar
        (:func:`~repro.faults.schedule.format_fault_command`), and the
        RNG state through ``random.Random.getstate()``, so a restored
        injector continues the exact same stochastic stream.
        """
        from .schedule import format_fault_command

        version, internal, gauss_next = self._rng.getstate()
        return {
            "seed": self.seed,
            "rng_state": [version, list(internal), gauss_next],
            "now": self.now,
            "next": self._next,
            "pending": [
                {"start": f.start, "command": format_fault_command(f.spec)}
                for f in self._pending
            ],
            "active": [
                {
                    "command": format_fault_command(f.spec),
                    "start": f.start,
                    "end": f.end,
                    "state": dict(f.state),
                }
                for f in self._active
            ],
            "log": [[t, text] for t, text in self.log],
            "sensor_faulted_reads": self.sensor_faulted_reads,
            "sensor_dropped_reads": self.sensor_dropped_reads,
        }

    def restore(self, data: Dict[str, object]) -> None:
        """Restore a :meth:`checkpoint` onto this injector."""
        from .schedule import parse_fault_command

        version, internal, gauss_next = data["rng_state"]
        self._rng.setstate((int(version), tuple(internal), gauss_next))
        self.seed = int(data["seed"])
        self.now = float(data["now"])
        self._next = int(data["next"])
        self._pending = [
            ScheduledFault(
                start=float(entry["start"]),
                spec=parse_fault_command(entry["command"]),
            )
            for entry in data["pending"]
        ]
        self._active = [
            ActiveFault(
                spec=parse_fault_command(entry["command"]),
                start=float(entry["start"]),
                end=None if entry["end"] is None else float(entry["end"]),
                state={k: float(v) for k, v in entry["state"].items()},
            )
            for entry in data["active"]
        ]
        self.log = [(float(t), str(text)) for t, text in data["log"]]
        self.sensor_faulted_reads = int(data["sensor_faulted_reads"])
        self.sensor_dropped_reads = int(data["sensor_dropped_reads"])


class LossyChannel:
    """The tempd -> admd datagram path with injectable misbehaviour.

    Wraps a ``deliver`` callable (typically ``Admd.deliver``).  Sends are
    stamped with the injector's clock; :meth:`flush` delivers everything
    due, in (due-time, send-order) order, so delayed datagrams really are
    overtaken by later ones.

    ``clock`` and ``latency`` serve the event-kernel's real-latency
    mode: with a clock attached, sends are stamped at ``clock.now``
    (the kernel's dispatch time, which can sit between solver ticks)
    instead of the injector's tick-grid clock, and every datagram pays
    ``latency`` seconds of base network transit on top of any injected
    delay.  :meth:`next_due` then tells the harness when to schedule
    the next delivery event.
    """

    def __init__(
        self,
        deliver: Callable[[object], None],
        injector: FaultInjector,
        clock=None,
        latency: float = 0.0,
    ) -> None:
        if latency < 0.0:
            raise FaultError("channel latency must be non-negative")
        self._deliver = deliver
        self._injector = injector
        self._clock = clock
        self.latency = latency
        self._pending: List[Tuple[float, int, object]] = []
        self._seq = 0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def _count(self, fate: str, amount: int = 1) -> None:
        """Mirror one int counter into the injector's telemetry facade."""
        telemetry = self._injector.telemetry
        if telemetry.enabled:
            telemetry.counter(
                "freon_datagrams_total", {"fate": fate},
                help="tempd -> admd datagrams through the lossy channel, by fate.",
            ).inc(amount)

    def __call__(self, message: object) -> None:
        """Send one message through the faulty network."""
        now = self._injector.now
        if self._clock is not None:
            now = max(now, self._clock.now)
        self.sent += 1
        self._count("sent")
        dropped, duplicated, delay = self._injector.datagram_fate()
        if dropped:
            self.dropped += 1
            self._count("dropped")
            self._injector._note(now, "datagram dropped")
            return
        if delay > 0.0:
            self.delayed += 1
            self._count("delayed")
        copies = 2 if duplicated else 1
        if duplicated:
            self.duplicated += 1
            self._count("duplicated")
        for _ in range(copies):
            self._pending.append((now + delay + self.latency, self._seq, message))
            self._seq += 1

    def flush(self, now: float) -> int:
        """Deliver every message due at or before ``now``; returns count."""
        if not self._pending:
            return 0
        due = [entry for entry in self._pending if entry[0] <= now]
        if not due:
            return 0
        self._pending = [entry for entry in self._pending if entry[0] > now]
        for _, _, message in sorted(due, key=lambda e: (e[0], e[1])):
            self._deliver(message)
            self.delivered += 1
        self._count("delivered", len(due))
        return len(due)

    @property
    def in_flight(self) -> int:
        """Messages queued but not yet delivered."""
        return len(self._pending)

    def next_due(self) -> Optional[float]:
        """Due time of the earliest in-flight message, or ``None``."""
        if not self._pending:
            return None
        return min(entry[0] for entry in self._pending)

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(
        self, encode: Callable[[object], object] = lambda m: m
    ) -> Dict[str, object]:
        """Snapshot counters and in-flight messages.

        ``encode`` converts each queued message to JSON-able data (the
        cluster harness passes ``dataclasses.asdict`` for
        :class:`~repro.daemons.tempd.TempdMessage`).
        """
        return {
            "pending": [
                [due, seq, encode(message)]
                for due, seq, message in self._pending
            ],
            "seq": self._seq,
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }

    def restore(
        self,
        data: Dict[str, object],
        decode: Callable[[object], object] = lambda m: m,
    ) -> None:
        """Restore a :meth:`checkpoint`; ``decode`` inverts ``encode``."""
        self._pending = [
            (float(due), int(seq), decode(message))
            for due, seq, message in data["pending"]
        ]
        self._seq = int(data["seq"])
        self.sent = int(data["sent"])
        self.delivered = int(data["delivered"])
        self.dropped = int(data["dropped"])
        self.duplicated = int(data["duplicated"])
        self.delayed = int(data["delayed"])


@dataclass(frozen=True)
class RestartEvent:
    """One watchdog-initiated daemon restart."""

    time: float
    machine: str
    daemon: str


class DaemonWatchdog:
    """Detects crashed daemons and restarts them after a delay.

    ``restart`` is the harness hook that actually rebuilds the daemon
    (e.g. giving a restarted tempd a fresh controller bank); the
    watchdog first clears the injector's crash fault, then calls it.
    """

    def __init__(
        self,
        injector: FaultInjector,
        restart: Callable[[str, str], None],
        check_period: float = 5.0,
        restart_delay: float = 10.0,
    ) -> None:
        if check_period <= 0.0 or restart_delay < 0.0:
            raise FaultError("watchdog periods must be positive")
        self._injector = injector
        self._restart = restart
        self.check_period = check_period
        self.restart_delay = restart_delay
        self._elapsed = 0.0
        self.events: List[RestartEvent] = []

    def tick(self, dt: float, now: float) -> List[RestartEvent]:
        """Advance the watchdog clock; restart overdue daemons."""
        self._elapsed += dt
        if self._elapsed + 1e-9 < self.check_period:
            return []
        self._elapsed = 0.0
        return self.check(now)

    def check(self, now: float) -> List[RestartEvent]:
        """One watchdog pass (the event-kernel entry point)."""
        fired: List[RestartEvent] = []
        for machine, daemon, since in self._injector.crashed_daemons():
            if now - since + 1e-9 < self.restart_delay:
                continue
            self._injector.restart_daemon(machine, daemon, now=now)
            self._restart(machine, daemon)
            event = RestartEvent(time=now, machine=machine, daemon=daemon)
            self.events.append(event)
            fired.append(event)
            telemetry = self._injector.telemetry
            if telemetry.enabled:
                telemetry.counter(
                    "watchdog_restarts_total", {"daemon": daemon},
                    help="Daemon restarts performed by the watchdog.",
                ).inc()
                telemetry.event(
                    "watchdog_restart", "watchdog",
                    machine=machine, daemon=daemon, down_for=now - since,
                )
        return fired

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the watchdog clock and restart history."""
        return {
            "elapsed": self._elapsed,
            "events": [
                {"time": e.time, "machine": e.machine, "daemon": e.daemon}
                for e in self.events
            ],
        }

    def restore(self, data: Dict[str, object]) -> None:
        """Restore a :meth:`checkpoint` onto this watchdog."""
        self._elapsed = float(data["elapsed"])
        self.events = [
            RestartEvent(
                time=float(e["time"]),
                machine=str(e["machine"]),
                daemon=str(e["daemon"]),
            )
            for e in data["events"]
        ]
