"""Deterministic fault schedules and the ``fault`` script statement.

Fault injection composes with thermal emergencies in one Figure 4-style
fiddle script: alongside ``sleep`` and ``fiddle`` lines, scripts may now
contain ``fault`` statements::

    #!/bin/bash
    sleep 480
    fiddle machine1 temperature inlet 38.6
    fault net loss 0.05
    sleep 120
    fault machine2 sensor stuck disk 45 for 600
    fault machine1 daemon crash tempd
    fault machine3 monitord stall for 30

Grammar (shell-style tokens, like fiddle commands)::

    fault <machine> sensor stuck   <component> [<value>] [for <seconds>]
    fault <machine> sensor dropout <component>           [for <seconds>]
    fault <machine> sensor spike   <component> <delta>   [for <seconds>]
    fault <machine> sensor noise   <component> <std>     [for <seconds>]
    fault net loss    <probability>                      [for <seconds>]
    fault net dup     <probability>                      [for <seconds>]
    fault net reorder <probability>                      [for <seconds>]
    fault net delay   <seconds>                          [for <seconds>]
    fault <machine> daemon crash <tempd|monitord>        [for <seconds>]
    fault <machine> monitord stall                       [for <seconds>]

:func:`parse_fault_command` turns one such line into a
:class:`~repro.faults.model.FaultSpec`; :func:`format_fault_command`
writes it back out (parse/format round-trip exactly).  A
:class:`FaultSchedule` pairs specs with absolute simulation-clock start
times and replays deterministically — the schedule itself contains no
randomness; all stochastic behaviour lives in the injector's seeded RNG.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import FaultError
from .model import DAEMON_NAMES, FaultKind, FaultSpec

#: sensor sub-verbs and whether their value token is required.
_SENSOR_VERBS = {
    "stuck": (FaultKind.SENSOR_STUCK, "optional"),
    "dropout": (FaultKind.SENSOR_DROPOUT, "forbidden"),
    "spike": (FaultKind.SENSOR_SPIKE, "required"),
    "noise": (FaultKind.SENSOR_NOISE, "required"),
}

_NET_VERBS = {
    "loss": FaultKind.NET_LOSS,
    "dup": FaultKind.NET_DUP,
    "reorder": FaultKind.NET_REORDER,
    "delay": FaultKind.NET_DELAY,
}


def _number(token: str, line: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise FaultError(
            f"expected a number, got {token!r} in {line!r}"
        ) from None


def _split_duration(rest: List[str], line: str) -> Tuple[List[str], Optional[float]]:
    """Strip a trailing ``for <seconds>`` clause."""
    if "for" not in rest:
        return rest, None
    index = rest.index("for")
    tail = rest[index + 1:]
    if len(tail) != 1:
        raise FaultError(f"'for' takes exactly one duration in {line!r}")
    duration = _number(tail[0], line)
    return rest[:index], duration


def parse_fault_command(line: str) -> FaultSpec:
    """Parse one ``fault`` statement into a :class:`FaultSpec`."""
    tokens = shlex.split(line, comments=True)
    if not tokens:
        raise FaultError("empty fault command")
    if tokens[0] == "fault":
        tokens = tokens[1:]
    if len(tokens) < 2:
        raise FaultError(f"short fault command: {line!r}")
    rest, duration = _split_duration(tokens, line)
    if len(rest) < 2:
        raise FaultError(f"short fault command: {line!r}")
    target = rest[0]

    if target == "net":
        verb = rest[1]
        if verb not in _NET_VERBS:
            raise FaultError(
                f"unknown network fault {verb!r}; pick from "
                f"{sorted(_NET_VERBS)} in {line!r}"
            )
        if len(rest) != 3:
            raise FaultError(f"'fault net {verb}' takes one value: {line!r}")
        return FaultSpec(
            kind=_NET_VERBS[verb],
            value=_number(rest[2], line),
            duration=duration,
        )

    machine, verb = rest[0], rest[1]
    if verb == "sensor":
        if len(rest) < 4:
            raise FaultError(f"short sensor fault: {line!r}")
        sub, component, args = rest[2], rest[3], rest[4:]
        if sub not in _SENSOR_VERBS:
            raise FaultError(
                f"unknown sensor fault {sub!r}; pick from "
                f"{sorted(_SENSOR_VERBS)} in {line!r}"
            )
        kind, value_mode = _SENSOR_VERBS[sub]
        value: Optional[float] = None
        if value_mode == "forbidden":
            if args:
                raise FaultError(f"'sensor {sub}' takes no value: {line!r}")
        elif value_mode == "required":
            if len(args) != 1:
                raise FaultError(f"'sensor {sub}' needs one value: {line!r}")
            value = _number(args[0], line)
        else:  # optional (stuck)
            if len(args) > 1:
                raise FaultError(f"'sensor {sub}' takes at most one value: {line!r}")
            if args:
                value = _number(args[0], line)
        return FaultSpec(
            kind=kind, machine=machine, target=component,
            value=value, duration=duration,
        )

    if verb == "daemon":
        if len(rest) != 4 or rest[2] != "crash":
            raise FaultError(
                f"daemon faults are 'fault <machine> daemon crash <name>': {line!r}"
            )
        return FaultSpec(
            kind=FaultKind.DAEMON_CRASH,
            machine=machine,
            target=rest[3],
            duration=duration,
        )

    if verb == "monitord":
        if len(rest) != 3 or rest[2] != "stall":
            raise FaultError(
                f"monitord faults are 'fault <machine> monitord stall': {line!r}"
            )
        return FaultSpec(
            kind=FaultKind.MONITORD_STALL,
            machine=machine,
            target="monitord",
            duration=duration,
        )

    raise FaultError(
        f"unknown fault verb {verb!r}; expected 'sensor', 'daemon', "
        f"'monitord', or target 'net' in {line!r}"
    )


def format_fault_command(spec: FaultSpec) -> str:
    """Write a spec back as a ``fault`` statement (parse round-trips)."""
    parts: List[str]
    if spec.is_network:
        parts = ["fault", "net", spec.kind.value, repr(float(spec.value))]
    elif spec.is_sensor:
        parts = ["fault", shlex.quote(spec.machine), "sensor",
                 spec.kind.value, shlex.quote(spec.target)]
        if spec.value is not None:
            parts.append(repr(float(spec.value)))
    elif spec.kind is FaultKind.DAEMON_CRASH:
        parts = ["fault", shlex.quote(spec.machine), "daemon", "crash",
                 spec.target]
    else:  # MONITORD_STALL
        parts = ["fault", shlex.quote(spec.machine), "monitord", "stall"]
    if spec.duration is not None:
        # repr() keeps the parse/format round-trip exact.
        parts.extend(["for", repr(float(spec.duration))])
    return " ".join(parts)


def is_fault_command(line: str) -> bool:
    """True when a script line is a ``fault`` statement."""
    stripped = line.lstrip()
    return stripped.startswith("fault ") or stripped == "fault"


@dataclass(frozen=True)
class ScheduledFault:
    """One fault with an absolute simulation-clock start time."""

    start: float
    spec: FaultSpec

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise FaultError("fault start time must be non-negative")


class FaultSchedule:
    """An ordered, deterministic plan of faults on the simulation clock.

    Built either programmatically (:meth:`at`) or from script text
    (:meth:`from_script`, which accepts a full fiddle script and keeps
    only the fault statements).  The schedule is immutable once handed
    to an injector; replaying the same schedule with the same injector
    seed reproduces the run bit-for-bit.
    """

    def __init__(self, faults: Sequence[ScheduledFault] = ()) -> None:
        self._faults: List[ScheduledFault] = sorted(
            faults, key=lambda f: f.start
        )

    def at(self, start: float, spec: FaultSpec) -> "FaultSchedule":
        """Add one fault; returns self for chaining."""
        self._faults.append(ScheduledFault(start=start, spec=spec))
        self._faults.sort(key=lambda f: f.start)
        return self

    @classmethod
    def from_script(cls, text: str) -> "FaultSchedule":
        """Extract the fault statements of a fiddle script as a schedule."""
        from ..fiddle.script import parse_script

        schedule = cls()
        for command in parse_script(text):
            if is_fault_command(command.command):
                schedule.at(command.time, parse_fault_command(command.command))
        return schedule

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self):
        return iter(self._faults)

    def to_script(self) -> str:
        """Render the schedule as a standalone fiddle script."""
        lines = ["#!/bin/bash"]
        clock = 0.0
        for fault in self._faults:
            if fault.start > clock:
                lines.append(f"sleep {fault.start - clock!r}")
                clock = fault.start
            lines.append(format_fault_command(fault.spec))
        return "\n".join(lines) + "\n"
