"""The typed catalogue of injectable faults.

Mercury's pitch (paper sections 2.4 and 5) is that emulation lets you
create "thermal emergencies" on demand; this module extends the idea to
the *infrastructure that observes the temperatures*.  Every failure mode
the reproduction can inject is a :class:`FaultSpec` value:

**Sensor faults** (per machine + component)
    * ``SENSOR_STUCK``   — readings freeze at a value (given, or the
      first value seen after activation);
    * ``SENSOR_DROPOUT`` — reads fail with :class:`~repro.errors.SensorError`;
    * ``SENSOR_SPIKE``   — a constant offset is added to every reading;
    * ``SENSOR_NOISE``   — extra zero-mean Gaussian noise (seeded).

**Network faults** (the tempd -> admd datagram path)
    * ``NET_LOSS``    — each datagram dropped with probability *value*;
    * ``NET_DUP``     — each datagram duplicated with probability *value*;
    * ``NET_REORDER`` — each datagram held back one delivery slot with
      probability *value*, letting later datagrams overtake it;
    * ``NET_DELAY``   — every datagram delayed by *value* seconds.

**Daemon faults** (per machine + daemon name)
    * ``DAEMON_CRASH``   — the daemon stops ticking; it stays down until
      its duration elapses or a watchdog restarts it;
    * ``MONITORD_STALL`` — monitord keeps running but stops sampling, so
      the solver sees stale utilizations.

Specs are plain data: :mod:`repro.faults.schedule` parses them from
``fault`` script statements and :mod:`repro.faults.injector` gives them
runtime behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import FaultError


class FaultKind(enum.Enum):
    """Every injectable failure mode."""

    SENSOR_STUCK = "stuck"
    SENSOR_DROPOUT = "dropout"
    SENSOR_SPIKE = "spike"
    SENSOR_NOISE = "noise"
    NET_LOSS = "loss"
    NET_DUP = "dup"
    NET_REORDER = "reorder"
    NET_DELAY = "delay"
    DAEMON_CRASH = "crash"
    MONITORD_STALL = "stall"


#: Kinds targeting one sensor (machine + component).
SENSOR_KINDS = frozenset(
    {
        FaultKind.SENSOR_STUCK,
        FaultKind.SENSOR_DROPOUT,
        FaultKind.SENSOR_SPIKE,
        FaultKind.SENSOR_NOISE,
    }
)

#: Kinds targeting the datagram path (no machine).
NET_KINDS = frozenset(
    {
        FaultKind.NET_LOSS,
        FaultKind.NET_DUP,
        FaultKind.NET_REORDER,
        FaultKind.NET_DELAY,
    }
)

#: Kinds targeting a daemon process (machine + daemon name).
DAEMON_KINDS = frozenset({FaultKind.DAEMON_CRASH, FaultKind.MONITORD_STALL})

#: Kinds whose ``value`` is a probability in [0, 1].
_RATE_KINDS = frozenset(
    {FaultKind.NET_LOSS, FaultKind.NET_DUP, FaultKind.NET_REORDER}
)

#: Daemons a crash fault may name.
DAEMON_NAMES = ("tempd", "monitord")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, fully described.

    ``machine`` and ``target`` identify what breaks (``target`` is a
    sensor component or a daemon name; both are None for network
    faults).  ``value`` parameterizes the fault (stuck value, spike
    delta, noise std, loss/dup/reorder probability, delay seconds);
    ``duration`` limits it (None = until cleared or end of run).
    """

    kind: FaultKind
    machine: Optional[str] = None
    target: Optional[str] = None
    value: Optional[float] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind in NET_KINDS:
            if self.machine is not None or self.target is not None:
                raise FaultError(
                    f"{self.kind.value} faults target the network, not a machine"
                )
            if self.value is None:
                raise FaultError(f"{self.kind.value} faults need a value")
        elif self.kind in SENSOR_KINDS:
            if not self.machine or not self.target:
                raise FaultError(
                    f"{self.kind.value} faults need a machine and a component"
                )
            if self.kind in (FaultKind.SENSOR_SPIKE, FaultKind.SENSOR_NOISE):
                if self.value is None:
                    raise FaultError(f"{self.kind.value} faults need a value")
        else:  # daemon kinds
            if not self.machine or not self.target:
                raise FaultError(
                    f"{self.kind.value} faults need a machine and a daemon name"
                )
            if self.target not in DAEMON_NAMES:
                raise FaultError(
                    f"unknown daemon {self.target!r}; pick from {DAEMON_NAMES}"
                )
            if self.kind is FaultKind.MONITORD_STALL and self.target != "monitord":
                raise FaultError("stall faults only apply to monitord")
        if self.kind in _RATE_KINDS and not 0.0 <= float(self.value) <= 1.0:
            raise FaultError(
                f"{self.kind.value} probability must be in [0, 1], "
                f"got {self.value}"
            )
        if self.kind is FaultKind.NET_DELAY and float(self.value) < 0.0:
            raise FaultError("delay must be non-negative")
        if self.kind is FaultKind.SENSOR_NOISE and float(self.value) < 0.0:
            raise FaultError("noise std must be non-negative")
        if self.duration is not None and self.duration <= 0.0:
            raise FaultError("fault duration must be positive")

    @property
    def is_sensor(self) -> bool:
        return self.kind in SENSOR_KINDS

    @property
    def is_network(self) -> bool:
        return self.kind in NET_KINDS

    @property
    def is_daemon(self) -> bool:
        return self.kind in DAEMON_KINDS

    def describe(self) -> str:
        """Human-readable one-liner for logs and summaries."""
        where = (
            "network"
            if self.is_network
            else f"{self.machine}/{self.target}"
        )
        parts = [f"{self.kind.value} @ {where}"]
        if self.value is not None:
            parts.append(f"value={self.value:g}")
        if self.duration is not None:
            parts.append(f"for {self.duration:g}s")
        return " ".join(parts)
