"""repro.faults: deterministic fault injection and resilience.

The paper uses Mercury to create *thermal* emergencies on demand; this
package extends the idea to the infrastructure that observes them —
sensors that stick or drop out, datagrams that vanish or arrive twice,
daemons that crash mid-experiment — plus the resilience pieces (shared
retry backoff, a daemon watchdog) that let Freon survive all of it.

Layout:

* :mod:`~repro.faults.model` — the typed fault catalogue
  (:class:`FaultSpec` / :class:`FaultKind`);
* :mod:`~repro.faults.schedule` — seeded, deterministic fault schedules
  and the ``fault`` statement extending the fiddle-script grammar;
* :mod:`~repro.faults.injector` — the runtime: clock-driven activation,
  sensor/datagram/daemon hooks, :class:`LossyChannel`,
  :class:`DaemonWatchdog`;
* :mod:`~repro.faults.backoff` — the shared UDP retry/backoff policy.
"""

from .backoff import BackoffPolicy, DEFAULT_BACKOFF
from .injector import (
    ActiveFault,
    DaemonWatchdog,
    FaultInjector,
    LossyChannel,
    RestartEvent,
)
from .model import FaultKind, FaultSpec
from .schedule import (
    FaultSchedule,
    ScheduledFault,
    format_fault_command,
    is_fault_command,
    parse_fault_command,
)

__all__ = [
    "ActiveFault",
    "BackoffPolicy",
    "DEFAULT_BACKOFF",
    "DaemonWatchdog",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "LossyChannel",
    "RestartEvent",
    "ScheduledFault",
    "format_fault_command",
    "is_fault_command",
    "parse_fault_command",
]
