"""repro.faults: deterministic fault injection and resilience.

The paper uses Mercury to create *thermal* emergencies on demand; this
package extends the idea to the infrastructure that observes them —
sensors that stick or drop out, datagrams that vanish or arrive twice,
daemons that crash mid-experiment — plus the resilience pieces (shared
retry backoff, a daemon watchdog) that let Freon survive all of it.

Layout:

* :mod:`~repro.faults.model` — the typed fault catalogue
  (:class:`FaultSpec` / :class:`FaultKind`);
* :mod:`~repro.faults.schedule` — seeded, deterministic fault schedules
  and the ``fault`` statement extending the fiddle-script grammar;
* :mod:`~repro.faults.injector` — the runtime: clock-driven activation,
  sensor/datagram/daemon hooks, :class:`LossyChannel`,
  :class:`DaemonWatchdog`;
* :mod:`~repro.faults.backoff` — the shared UDP retry/backoff policy.

:func:`derive_seed` turns one base seed plus any hashable coordinates
(run id, shard index, policy name, ...) into an independent child seed,
so a parallel sweep gives every run its own reproducible RNG stream.
"""

import hashlib as _hashlib

from .backoff import BackoffPolicy, DEFAULT_BACKOFF
from .injector import (
    ActiveFault,
    DaemonWatchdog,
    FaultInjector,
    LossyChannel,
    RestartEvent,
)
from .model import FaultKind, FaultSpec
from .schedule import (
    FaultSchedule,
    ScheduledFault,
    format_fault_command,
    is_fault_command,
    parse_fault_command,
)

def derive_seed(base: int, *components: object) -> int:
    """Derive an independent child seed from ``base`` and coordinates.

    Hash-based (SHA-256), so nearby bases or coordinates produce
    unrelated streams — unlike ``base + index``, where two shards of
    adjacent sweeps could silently share a seed.  Deterministic across
    processes and Python versions (no reliance on ``hash()``); the same
    ``(base, *components)`` always yields the same 63-bit seed.

    >>> derive_seed(0, "policy=freon", 3) == derive_seed(0, "policy=freon", 3)
    True
    >>> derive_seed(0, "a") != derive_seed(1, "a") != derive_seed(0, "b")
    True
    """
    payload = repr((int(base),) + tuple(str(c) for c in components))
    digest = _hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


__all__ = [
    "ActiveFault",
    "BackoffPolicy",
    "DEFAULT_BACKOFF",
    "DaemonWatchdog",
    "derive_seed",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "LossyChannel",
    "RestartEvent",
    "ScheduledFault",
    "format_fault_command",
    "is_fault_command",
    "parse_fault_command",
]
