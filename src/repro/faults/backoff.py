"""Shared retry/backoff policy for every UDP client in the suite.

The paper's daemons all speak fire-and-forget UDP; the only reliable
round-trip is the sensor library's query/reply.  Before this module each
client hard-coded its own timeout and retry count.  Now a single
:class:`BackoffPolicy` value describes the retry schedule — a bounded
exponential backoff — and every transport (the sensor client library,
the tempd sender, the daemon listeners) derives its timing from the one
source of truth here.

Keeping this in :mod:`repro.faults` is deliberate: retries are the
*resilience* half of fault injection, and chaos experiments tune both
sides from the same place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BackoffPolicy:
    """A bounded exponential-backoff retry schedule.

    ``attempts`` tries are made; attempt *i* (0-based) waits up to
    ``min(base_timeout * multiplier**i, max_timeout)`` seconds for a
    reply before the next attempt.
    """

    attempts: int = 3
    base_timeout: float = 0.5
    multiplier: float = 2.0
    max_timeout: float = 4.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_timeout <= 0.0 or self.max_timeout <= 0.0:
            raise ValueError("timeouts must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def timeout(self, attempt: int) -> float:
        """Receive timeout for the given 0-based attempt."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.base_timeout * self.multiplier ** attempt,
                   self.max_timeout)

    def timeouts(self) -> Iterator[float]:
        """The full schedule, one timeout per attempt."""
        for attempt in range(self.attempts):
            yield self.timeout(attempt)

    def total_budget(self) -> float:
        """Worst-case seconds a caller can block before giving up."""
        return sum(self.timeouts())


#: The policy every UDP client uses unless told otherwise.
DEFAULT_BACKOFF = BackoffPolicy()

#: How long daemon threads (UDP listeners/servers) get to shut down.
DAEMON_JOIN_TIMEOUT = 5.0

#: serve_forever poll interval for all background UDP servers.
SERVER_POLL_INTERVAL = 0.05
