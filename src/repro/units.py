"""Unit conversions and physical constants used throughout the suite.

The paper quotes quantities in mixed units (fan speed in cubic feet per
minute, temperatures in Celsius, masses in kilograms).  Internally the
package works in SI — kilograms, Joules, Watts, seconds, cubic metres —
and degrees Celsius for temperatures (all the physics here involves
temperature *differences*, for which Celsius and Kelvin coincide).
"""

from __future__ import annotations

#: Density of air at roughly 25-35 Celsius and 1 atm, kg/m^3.
AIR_DENSITY = 1.16

#: Specific heat capacity of air at constant pressure, J/(kg K).
AIR_SPECIFIC_HEAT = 1005.0

#: Specific heat capacity of aluminium, J/(kg K).  Table 1 uses this value
#: for the disk platters, disk shell, CPU-plus-heat-sink, and power supply.
ALUMINUM_SPECIFIC_HEAT = 896.0

#: Specific heat capacity of FR4 circuit-board laminate, J/(kg K).
#: Table 1 uses this value for the motherboard.
FR4_SPECIFIC_HEAT = 1245.0

#: Cubic feet per minute -> cubic metres per second.
_CFM_TO_M3S = 0.3048**3 / 60.0

#: Absolute zero in Celsius; used to validate temperature inputs.
ABSOLUTE_ZERO_C = -273.15


def cfm_to_m3s(cfm: float) -> float:
    """Convert a volumetric flow from cubic feet/minute to cubic metres/second."""
    return cfm * _CFM_TO_M3S


def m3s_to_cfm(m3s: float) -> float:
    """Convert a volumetric flow from cubic metres/second to cubic feet/minute."""
    return m3s / _CFM_TO_M3S


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return celsius - ABSOLUTE_ZERO_C


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return kelvin + ABSOLUTE_ZERO_C


def watt_hours(joules: float) -> float:
    """Convert an energy from Joules to Watt-hours."""
    return joules / 3600.0


def air_mass_flow(volumetric_flow_m3s: float) -> float:
    """Mass flow (kg/s) of an air stream given its volumetric flow (m^3/s)."""
    return AIR_DENSITY * volumetric_flow_m3s


def air_heat_capacity_rate(volumetric_flow_m3s: float) -> float:
    """Heat-capacity rate (W/K) of an air stream: rho * V * c_p.

    This is the power required to raise the temperature of the stream by
    one Kelvin, the quantity engineering texts write as ``m_dot * c_p``.
    """
    return air_mass_flow(volumetric_flow_m3s) * AIR_SPECIFIC_HEAT
