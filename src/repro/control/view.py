"""Machine-state views: the seam between policies and simulation stacks.

A :class:`MachineStateView` gives a management policy everything it may
observe or actuate about a room full of machines — component
temperatures (through the fault-injectable sensor path), LVS scheduling
weights, concurrency caps, power state, DVFS — as NumPy arrays indexed
by canonical machine order, regardless of which simulation stack sits
beneath:

* :class:`ClusterStateView` adapts a per-machine
  :class:`~repro.cluster.simulation.ClusterSimulation`: temperature
  reads go through its :class:`~repro.sensors.server.SensorService`
  (alias resolution + injected sensor faults, exactly what the real
  tempd daemons read), weights/caps through its
  :class:`~repro.cluster.lvs.LoadBalancer`, power through its
  ``request_on``/``request_off`` drain semantics.
* :class:`FlatStateView` adapts a :class:`~repro.topology.sim.
  ScaleSimulation`: temperature reads are column copies off the
  flattened :class:`~repro.topology.sim.FlatSolver` array (with the
  same per-machine fault filtering applied to faulted rows), weights
  and caps are the simulation's vectorized allocation inputs, power
  cuts a machine's power-scale row.

Both views present the *same* contract, so a policy written once (see
:mod:`repro.control.policies`) runs unchanged on either stack; the
parity harness in :mod:`repro.control.parity` proves the decisions
match.  Failed sensor reads surface as ``NaN`` (per machine,
atomically: if any component's read fails the whole machine's read
fails, like tempd's one-shot reader) rather than exceptions, so
vectorized policies can mask instead of branch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Tuple

try:  # NumPy is required for the array views; imports stay gated
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..errors import ControlError, SensorError

#: Power-state codes a view reports (a compact int array, not an enum,
#: so vectorized policies can compare whole columns at once).
POWER_OFF = 0
POWER_BOOTING = 1
POWER_ACTIVE = 2
POWER_DRAINING = 3


def _require_numpy() -> None:
    if np is None:
        raise ControlError("machine-state views require NumPy")


class MachineStateView(Protocol):
    """What a management policy may observe and actuate.

    All array-valued methods use the view's canonical machine order
    (``machines``); actuators take a row index in that order.
    """

    #: Canonical machine names, fixing the row order of every array.
    machines: Tuple[str, ...]

    def read_temperatures(
        self, components: Sequence[str], mask: Optional["np.ndarray"] = None
    ) -> Dict[str, "np.ndarray"]:
        """Component temperatures via the (fault-injectable) sensor path.

        Returns one array per component class (e.g. ``"cpu"``,
        ``"disk"``).  A machine whose read failed (injected dropout)
        reports ``NaN`` in *every* class: the read is atomic per
        machine, like tempd's.  A boolean ``mask`` restricts which
        machines are read at all (masked-out rows are ``NaN`` and
        consume no fault RNG — a daemon that is down never reads).
        """

    def read_utilizations(
        self, components: Sequence[str]
    ) -> Dict[str, "np.ndarray"]:
        """Current component utilizations (Freon-EC's STATUS payload)."""

    def weights(self) -> "np.ndarray":
        """Current scheduling weights (a copy; actuate via set_weight)."""

    def set_weight(self, index: int, weight: float) -> None:
        """Set one machine's LVS scheduling weight."""

    def set_connection_cap(self, index: int, cap: Optional[float]) -> None:
        """Cap (or with ``None`` uncap) one machine's concurrency."""

    def connections(self) -> "np.ndarray":
        """Concurrent-connection counts, as LVS statistics report them."""

    def power_states(self) -> "np.ndarray":
        """Per-machine POWER_* codes (int array)."""

    def power_state(self, index: int) -> int:
        """One machine's POWER_* code (cheaper than a full column)."""

    def set_power(self, index: int, on: bool) -> None:
        """Request a machine on (boot) or off (drain/cut)."""

    def region_of(self, index: int) -> str:
        """Physical region of one machine (Freon-EC's region map)."""

    def daemons_up(self) -> "np.ndarray":
        """Per-machine bool: is the monitoring daemon alive?"""

    def has_network_faults(self) -> bool:
        """Whether any network fault is active (fate draws consume RNG)."""

    def datagram_fate(self) -> Tuple[bool, bool, float]:
        """One policy datagram's (dropped, duplicated, delay) fate."""

    def set_dvfs(self, index: int, frequency: float, power: float) -> None:
        """Apply a DVFS operating point to one machine's CPU."""


class ClusterStateView:
    """Scalar backend: a view over a live :class:`ClusterSimulation`.

    Reads go through the simulation's sensor service and balancer — the
    identical code paths the native daemons use — so a unified policy
    driven against this view reproduces the daemon stack's decisions
    exactly (see ``tests/control/test_cluster_view.py``).  Obtain one
    via :meth:`ClusterSimulation.state_view`.
    """

    def __init__(self, simulation) -> None:
        _require_numpy()
        self._sim = simulation
        self.machines: Tuple[str, ...] = tuple(simulation.machines)
        self._regions = {
            name: simulation.topology.positions[name].zone
            for name in self.machines
        } if simulation.topology is not None else {}

    def read_temperatures(self, components, mask=None):
        sim = self._sim
        out = {c: np.full(len(self.machines), np.nan) for c in components}
        for i, name in enumerate(self.machines):
            if mask is not None and not mask[i]:
                continue
            try:
                # Sequential reads, aborted at the first failure: the
                # native tempd reader builds its dict the same way, so
                # fault-RNG consumption matches read for read.
                values = [
                    sim.service.read_temperature(name, c) for c in components
                ]
            except SensorError:
                for c in components:
                    out[c][i] = np.nan
            else:
                for c, value in zip(components, values):
                    out[c][i] = value
        return out

    def read_utilizations(self, components):
        sim = self._sim
        out = {c: np.zeros(len(self.machines)) for c in components}
        for i, name in enumerate(self.machines):
            load = sim.webservers[name].load
            for c in components:
                out[c][i] = getattr(load, f"{c}_utilization")
        return out

    def weights(self):
        servers = self._sim.balancer.server_map
        return np.array([servers[name].weight for name in self.machines])

    def set_weight(self, index, weight):
        self._sim.balancer.set_weight(self.machines[index], weight)

    def set_connection_cap(self, index, cap):
        self._sim.balancer.set_connection_limit(self.machines[index], cap)

    def connections(self):
        stats = self._sim.balancer.connection_stats()
        return np.array([stats[name] for name in self.machines])

    def power_states(self):
        from ..cluster.webserver import PowerState

        codes = {
            PowerState.OFF: POWER_OFF,
            PowerState.BOOTING: POWER_BOOTING,
            PowerState.ACTIVE: POWER_ACTIVE,
            PowerState.DRAINING: POWER_DRAINING,
        }
        ws = self._sim.webservers
        return np.array(
            [codes[ws[name].state] for name in self.machines], dtype=np.int64
        )

    def power_state(self, index):
        from ..cluster.webserver import PowerState

        state = self._sim.webservers[self.machines[index]].state
        return {
            PowerState.OFF: POWER_OFF,
            PowerState.BOOTING: POWER_BOOTING,
            PowerState.ACTIVE: POWER_ACTIVE,
            PowerState.DRAINING: POWER_DRAINING,
        }[state]

    def set_power(self, index, on):
        name = self.machines[index]
        if on:
            self._sim.request_on(name)
        else:
            self._sim.request_off(name)

    def region_of(self, index):
        name = self.machines[index]
        return self._regions.get(name, f"region{index % 2}")

    def daemons_up(self):
        injector = self._sim.injector
        if not injector.any_active:
            return np.ones(len(self.machines), dtype=bool)
        return np.array(
            [injector.daemon_up(name, "tempd") for name in self.machines],
            dtype=bool,
        )

    def has_network_faults(self):
        injector = self._sim.injector
        return injector.any_active and any(
            f.spec.is_network for f in injector.active
        )

    def datagram_fate(self):
        injector = self._sim.injector
        if not injector.any_active:
            return (False, False, 0.0)
        return injector.datagram_fate()

    def set_dvfs(self, index, frequency, power):
        from ..config import table1

        name = self.machines[index]
        self._sim.webservers[name].set_speed_factor(frequency)
        self._sim.solver.machine(name).set_power_scale(table1.CPU, power)


class FlatStateView:
    """Vectorized backend: a view over a :class:`ScaleSimulation`.

    Temperature reads are column copies off the flattened solver; rows
    covered by an active sensor fault are re-filtered through the same
    :meth:`~repro.faults.injector.FaultInjector.filter_sensor` hook the
    scalar sensor service uses (identical stuck/spike/noise/dropout
    semantics, identical RNG stream consumption).  Actuators write the
    simulation's vectorized allocation inputs directly.
    """

    #: Component class -> solver node, mirroring table1.sensor_map().
    _NODES: Dict[str, str] = {}

    def __init__(self, simulation) -> None:
        _require_numpy()
        from ..config import table1

        if not FlatStateView._NODES:
            FlatStateView._NODES = {
                "cpu": table1.CPU, "disk": table1.DISK_PLATTERS,
            }
        self._sim = simulation
        self.machines: Tuple[str, ...] = tuple(
            simulation.topology.machines
        )
        positions = simulation.topology.positions
        self._regions = [
            positions[name].zone for name in self.machines
        ]

    def _node(self, component: str) -> str:
        try:
            return self._NODES[component]
        except KeyError:
            raise ControlError(
                f"unknown component class {component!r}"
            ) from None

    def read_temperatures(self, components, mask=None):
        sim = self._sim
        out = {
            c: np.array(sim.solver.node_column(self._node(c)), copy=True)
            for c in components
        }
        if mask is not None:
            for c in components:
                out[c][~mask] = np.nan
        injector = sim.injector
        if injector is None or not injector.any_active:
            return out
        # Only rows under an active sensor fault take the scalar filter
        # path; everything else keeps the raw column value (the filter
        # is identity for unfaulted reads and consumes no RNG).
        faulted = {
            f.spec.machine
            for f in injector.active
            if f.spec.is_sensor
        }
        index = sim.solver.operator.index
        for name in sorted(faulted, key=lambda m: index.get(m, -1)):
            row = index.get(name)
            if row is None or (mask is not None and not mask[row]):
                continue
            try:
                values = [
                    injector.filter_sensor(name, c, float(out[c][row]))
                    for c in components
                ]
            except SensorError:
                for c in components:
                    out[c][row] = np.nan
            else:
                for c, value in zip(components, values):
                    out[c][row] = value
        return out

    def read_utilizations(self, components):
        sim = self._sim
        return {
            c: np.array(
                sim.solver.group.util[:, sim.solver.plan.comp_index[
                    self._node(c)
                ]],
                copy=True,
            )
            for c in components
        }

    def weights(self):
        return self._sim.weights.copy()

    def set_weight(self, index, weight):
        from ..cluster import lvs

        # Same floor the scalar balancer applies in set_weight.
        self._sim.weights[index] = max(weight, lvs.MIN_WEIGHT)

    def set_connection_cap(self, index, cap):
        self._sim.set_connection_cap(index, cap)

    def connections(self):
        return self._sim.connections()

    def power_states(self):
        return self._sim.power.copy()

    def power_state(self, index):
        return int(self._sim.power[index])

    def set_power(self, index, on):
        self._sim.set_power(index, on)

    def region_of(self, index):
        return self._regions[index]

    def daemons_up(self):
        injector = self._sim.injector
        n = len(self.machines)
        if injector is None or not injector.any_active:
            return np.ones(n, dtype=bool)
        index = self._sim.solver.operator.index
        up = np.ones(n, dtype=bool)
        for machine, daemon, _ in injector.crashed_daemons():
            if daemon == "tempd" and machine in index:
                up[index[machine]] = False
        return up

    def has_network_faults(self):
        injector = self._sim.injector
        return (
            injector is not None
            and injector.any_active
            and any(f.spec.is_network for f in injector.active)
        )

    def datagram_fate(self):
        injector = self._sim.injector
        if injector is None or not injector.any_active:
            return (False, False, 0.0)
        return injector.datagram_fate()

    def set_dvfs(self, index, frequency, power):
        raise ControlError(
            "the flattened stack has no per-machine DVFS model"
        )
