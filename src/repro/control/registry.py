"""The management-policy registry: one name space over both stacks.

Every thermal-management policy the repo implements — base Freon,
Freon-EC, the traditional red-line shutdown, red-line emergency control,
local DVFS — is registered here exactly once, with the set of simulation
stacks it can run on:

* ``"cluster"`` — the per-machine :class:`~repro.cluster.simulation.
  ClusterSimulation` (real daemons, event kernel, the paper's section 5
  experiments).  Cluster-native policies keep their daemon
  implementations (tempd/admd/...); the registry only names them so the
  two stacks validate against one list.
* ``"scale"`` — the flattened :class:`~repro.topology.sim.
  ScaleSimulation` (1k-10k machines on one NumPy array).  Scale-capable
  policies provide a ``factory`` building a :class:`~repro.control.
  policies.ControlPolicy` that acts through a :class:`~repro.control.
  view.MachineStateView`; the same policy object runs unchanged on a
  scalar or a vectorized view (see ``tests/control``).

Look-ups go through :func:`get`; an unknown name raises
:class:`~repro.errors.ControlError` listing every name valid for the
requested stack, so embedding layers can surface actionable errors
(``ScaleSimulation`` re-wraps it as a ``TopologyError``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ControlError

#: The two simulation stacks a policy may support.
STACKS = ("cluster", "scale")


@dataclass(frozen=True)
class PolicySpec:
    """One registered management policy.

    ``factory`` builds the stack-agnostic :class:`~repro.control.
    policies.ControlPolicy` (``factory(**kwargs)``); it is ``None`` for
    policies that only exist as cluster-native daemons (their name is
    still registered so both stacks share one validation list).
    """

    name: str
    description: str
    stacks: Tuple[str, ...]
    factory: Optional[Callable[..., object]] = None

    def __post_init__(self) -> None:
        for stack in self.stacks:
            if stack not in STACKS:
                raise ControlError(
                    f"unknown stack {stack!r}; pick from {STACKS}"
                )


#: Insertion-ordered registry; the order defines the canonical POLICIES
#: tuples exposed by each stack (and is covered by tests, so keep the
#: historical cluster order: none, freon, freon-ec, traditional,
#: local-dvfs).
_REGISTRY: Dict[str, PolicySpec] = {}


def register(spec: PolicySpec) -> PolicySpec:
    """Add one policy to the registry (idempotent re-registration)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ControlError(f"policy {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def names(stack: Optional[str] = None) -> Tuple[str, ...]:
    """Registered policy names, optionally limited to one stack."""
    if stack is None:
        return tuple(_REGISTRY)
    if stack not in STACKS:
        raise ControlError(f"unknown stack {stack!r}; pick from {STACKS}")
    return tuple(
        name for name, spec in _REGISTRY.items() if stack in spec.stacks
    )


def get(name: str, stack: Optional[str] = None) -> PolicySpec:
    """Look a policy up by name, checking stack support.

    Raises :class:`~repro.errors.ControlError` naming every policy
    valid for ``stack`` when the look-up fails — embeddings re-wrap it
    in their own error type but keep the message.
    """
    available = names(stack)
    spec = _REGISTRY.get(name)
    if spec is None or (stack is not None and stack not in spec.stacks):
        where = f" on the {stack!r} stack" if stack is not None else ""
        raise ControlError(
            f"unknown policy {name!r}{where}; pick from {available}"
        )
    return spec


def build(name: str, stack: str, **kwargs) -> object:
    """Instantiate a policy's stack-agnostic implementation.

    ``None`` when the policy is registered for the stack but has no
    view-driven factory (e.g. ``"none"`` — and cluster-native daemons
    looked up for validation only).
    """
    spec = get(name, stack)
    if spec.factory is None:
        return None
    return spec.factory(**kwargs)
