"""Scalar-vs-vectorized policy parity: the refactor's proof harness.

The unified policies in :mod:`repro.control.policies` claim to be
stack-independent: the same code actuating a scalar per-machine room
and a flattened NumPy room must make the same decisions and leave the
rooms at the same temperatures.  This module makes that claim testable:

* :class:`ScalarRoomSolver` re-exposes the per-machine python-engine
  :class:`~repro.core.solver.Solver` behind :class:`~repro.topology.
  sim.FlatSolver`'s exact surface (column reads, vectorized utilization
  feeds, inlet overrides, per-row power factors), so the whole
  :class:`~repro.topology.sim.ScaleSimulation` harness — allocation,
  boots, faults, the policy loop — runs unchanged on top of it.
* :class:`ScalarScaleSimulation` is that substitution: a
  ``ScaleSimulation`` whose physics is the dict-loop reference solver.
* :func:`compare_stacks` runs the same single-zone room + policy on
  both and reports the worst temperature disagreement and whether the
  decision logs (adjustments, releases, redlines, EC events) match.
* :func:`replay_cluster_machine` records one ``ClusterSimulation``
  machine's per-tick solver inputs (inlet temperature and component
  utilizations) so a 1-machine flat room can replay them — the Fig. 12
  parity test drives the vectorized EC policy over such a replay and
  checks the trajectory against the pinned golden.

Tolerances are inherited from the scale equivalence gate
(``benchmarks/test_scale.py``): the flattened solve and the reference
solve agree within 1e-9 Celsius, so parity asserts the same bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..errors import TopologyError

#: Maximum cross-stack temperature disagreement (Celsius), matching the
#: flattened-vs-reference equivalence gate.
PARITY_TOLERANCE = 1e-9


class _UtilMirror:
    """The slice of ``FlatSolver.group`` the views read: a live
    machines×components utilization array."""

    def __init__(self, n: int, n_comps: int) -> None:
        self.util = np.zeros((n, n_comps))


class ScalarRoomSolver:
    """:class:`FlatSolver`'s surface over the per-machine reference solver.

    Holds one :class:`~repro.core.solver.Solver` (python engine, the
    dict-loop reference implementation) over the same topology and
    mirrors the flattened solver's API so :class:`ScaleSimulation` and
    :class:`~repro.control.view.FlatStateView` drive it unmodified.
    Building one is O(machines) python objects per tick — keep parity
    rooms small (tens of machines), that is what the 1e-9 gate runs at.
    """

    def __init__(
        self,
        topology,
        layout=None,
        dt: float = 1.0,
        initial_temperature: Optional[float] = None,
    ) -> None:
        from ..config.layouts import validation_machine
        from ..core.compiled import compile_layout
        from ..core.solver import Solver
        from ..topology.recirculation import RecirculationOperator

        if np is None:
            raise TopologyError("the scalar parity room requires NumPy")
        if layout is not None:
            raise TopologyError(
                "the scalar parity room builds its own per-machine layouts"
            )
        self.topology = topology
        self.dt = float(dt)
        self.n = len(topology.machines)
        self._names: Tuple[str, ...] = tuple(topology.machines)
        self.layout = validation_machine("template")
        #: Node/component naming shared with the flattened stack.
        self.plan = compile_layout(self.layout)
        self.operator = RecirculationOperator(topology)
        self._solver = Solver(
            [validation_machine(name) for name in self._names],
            topology=topology,
            dt=dt,
            initial_temperature=initial_temperature,
            record=False,
            engine="python",
        )
        self.group = _UtilMirror(self.n, self.plan.n_comps)
        self._base_power = {
            name: {
                comp: model.factor
                for comp, model in state.power_models.items()
            }
            for name, state in self._solver.machines.items()
        }

    # -- FlatSolver surface ----------------------------------------------

    @property
    def time(self) -> float:
        return self._solver.time

    @property
    def iterations(self) -> int:
        return self._solver.iterations

    def node_column(self, node: str):
        if node not in self.plan.node_index:
            raise TopologyError(f"unknown node {node!r}")
        machines = self._solver.machines
        return np.array(
            [machines[name].temperatures[node] for name in self._names]
        )

    def set_utilization(self, component: str, values) -> None:
        try:
            col = self.plan.comp_index[component]
        except KeyError:
            raise TopologyError(f"unknown component {component!r}") from None
        vals = np.broadcast_to(
            np.asarray(values, dtype=float), (self.n,)
        )
        self.group.util[:, col] = vals
        machines = self._solver.machines
        for i, name in enumerate(self._names):
            machines[name].set_utilization(component, float(vals[i]))

    def set_inlet_override(self, machine: str, value: Optional[float]) -> None:
        try:
            state = self._solver.machines[machine]
        except KeyError:
            raise TopologyError(f"unknown machine {machine!r}") from None
        state.inlet_override = None if value is None else float(value)

    def set_power_factor(self, row: int, scale: float) -> None:
        name = self._names[row]
        state = self._solver.machines[name]
        for comp, base in self._base_power[name].items():
            state.set_power_scale(comp, base * float(scale))

    def step(self, ticks: int = 1) -> None:
        self._solver.step(ticks)

    def checkpoint(self) -> Dict[str, object]:
        state = self._solver.checkpoint()
        state["util_mirror"] = self.group.util.tolist()
        return state

    def restore(self, data) -> None:
        self.group.util[:] = np.array(data["util_mirror"], dtype=float)
        self._solver.restore(
            {k: v for k, v in data.items() if k != "util_mirror"}
        )

    def __repr__(self) -> str:
        return (
            f"ScalarRoomSolver({self.n} machines, t={self.time:.0f}s)"
        )


from ..topology.sim import ScaleSimulation  # noqa: E402  (after np gate)


class ScalarScaleSimulation(ScaleSimulation):
    """A :class:`ScaleSimulation` whose physics is the reference solver.

    Everything above the solver — workload, allocation, boots, faults,
    the registry policy loop — is the vectorized harness verbatim; only
    the thermal solve runs machine by machine through
    :class:`ScalarRoomSolver`.
    """

    def _make_solver(self, topology, layout, dt):
        return ScalarRoomSolver(topology, layout=layout, dt=dt)


def _decision_log(simulation) -> Dict[str, List]:
    """A policy's decision trail, normalized to plain tuples."""
    policy = simulation.controller
    log: Dict[str, List] = {}
    if policy is None:
        return log
    for field in ("adjustments", "releases", "redlined"):
        if hasattr(policy, field):
            log[field] = [tuple(entry) for entry in getattr(policy, field)]
    if hasattr(policy, "events"):
        log["events"] = [
            tuple(
                event if isinstance(event, tuple)
                else (event.time, event.action, event.machine, event.reason)
            )
            for event in policy.events
        ]
    if hasattr(policy, "shutdowns"):
        log["shutdowns"] = [
            (s.time, s.machine, s.component, s.temperature)
            for s in policy.shutdowns
        ]
    return log


def _decisions_match(
    flat: Dict[str, List], scalar: Dict[str, List], tolerance: float
) -> bool:
    """Same decision sequences; float payloads within ``tolerance``."""
    if flat.keys() != scalar.keys():
        return False
    for key in flat:
        a, b = flat[key], scalar[key]
        if len(a) != len(b):
            return False
        for x, y in zip(a, b):
            if len(x) != len(y):
                return False
            for u, v in zip(x, y):
                if isinstance(u, float) and isinstance(v, float):
                    if abs(u - v) > tolerance:
                        return False
                elif u != v:
                    return False
    return True


def compare_stacks(
    policy: str = "freon",
    machines: int = 12,
    duration: float = 600.0,
    supply: float = 44.0,
    monitor_period: float = 60.0,
    tolerance: float = PARITY_TOLERANCE,
    **kwargs,
) -> Dict[str, object]:
    """Run one matched single-zone room on both stacks and compare.

    Returns a report with the worst per-node end-state temperature
    disagreement (``max_temp_delta``), whether the decision logs match
    (``decisions_match``), and both summaries.  The hot single-zone
    supply default makes Freon-class policies actually act, so the
    comparison exercises the full observe → decide → actuate loop, not
    just the quiescent solve.
    """
    from ..topology.model import grid_topology

    def build(factory):
        topology = grid_topology(
            machines, zones=1, zone_supplies={"zone0": supply}
        )
        return factory(
            topology,
            duration=duration,
            policy=policy,
            monitor_period=monitor_period,
            **kwargs,
        )

    flat = build(ScaleSimulation)
    scalar = build(ScalarScaleSimulation)
    flat_summary = flat.run()
    scalar_summary = scalar.run()
    worst = 0.0
    for node in flat.solver.plan.node_names:
        delta = np.abs(
            flat.solver.node_column(node) - scalar.solver.node_column(node)
        ).max()
        worst = max(worst, float(delta))
    flat_log = _decision_log(flat)
    scalar_log = _decision_log(scalar)
    return {
        "policy": policy,
        "machines": machines,
        "ticks": flat.solver.iterations,
        "max_temp_delta": worst,
        "max_weight_delta": float(
            np.abs(flat.weights - scalar.weights).max()
        ),
        "decisions_match": _decisions_match(flat_log, scalar_log, tolerance),
        "decision_counts": {k: len(v) for k, v in flat_log.items()},
        "flat": flat_summary,
        "scalar": scalar_summary,
    }


def replay_cluster_machine(
    machine: str = "machine1",
    policy: str = "freon-ec",
    duration: float = 120.0,
    engine: str = "python",
) -> Dict[str, List[float]]:
    """Record one cluster machine's per-tick solver inputs.

    Runs a :class:`~repro.cluster.simulation.ClusterSimulation` (the
    Fig. 11/12 configuration: emergency fiddle script, diurnal trace)
    tick by tick and records, for ``machine``, the inlet temperature
    the solver mixed for each tick and the component utilizations it
    heated with — everything a 1-machine flat room needs to replay the
    machine's exact thermal trajectory.
    """
    from ..cluster.simulation import ClusterSimulation, emergency_script
    from ..config import table1

    sim = ClusterSimulation(
        policy=policy, fiddle_script=emergency_script(), engine=engine
    )
    state = sim.solver.machines[machine]
    ticks = int(round(duration / sim.dt))
    inlets: List[float] = []
    cpu: List[float] = []
    disk: List[float] = []
    cpu_T: List[float] = []
    for _ in range(ticks):
        # The traversal is a pure function of (_prev_exhaust, overrides),
        # so sampling it before the tick reads exactly the inlet the
        # tick is about to mix.
        inlets.append(sim.solver._inter_machine_traversal()[machine])
        sim.step()
        cpu.append(state.utilizations[table1.CPU])
        disk.append(state.utilizations[table1.DISK_PLATTERS])
        cpu_T.append(state.temperatures[table1.CPU])
    return {
        "dt": sim.dt,
        "inlet": inlets,
        "cpu_util": cpu,
        "disk_util": disk,
        "cpu_temperature": cpu_T,
    }
