"""Stack-agnostic management policies driving a :class:`MachineStateView`.

Each policy here is the paper's daemon logic (tempd + admd, Freon-EC's
Figure 10 loop, the traditional red-line shutdown) re-expressed once
against the :class:`~repro.control.view.MachineStateView` seam, so the
identical object manages a 4-machine :class:`ClusterSimulation` (through
the scalar view) or a 10k-machine :class:`ScaleSimulation` (through the
vectorized view).  ``tests/control`` holds the proof: on the cluster
stack the unified :class:`FreonPolicy`/:class:`FreonECPolicy` reproduce
the native daemons' decision sequences exactly, and the scalar-vs-flat
parity harness shows both views yield the same decisions and
temperatures within 1e-9 °C.

Structure of one :meth:`FreonPolicy.wake`:

1. **tempd phase (vectorized)** — read every awake machine's component
   temperatures through the view (one array per component class; ``NaN``
   marks a failed read), run the PD-controller arithmetic on whole
   columns, and derive per-machine message masks (REDLINE / ADJUST /
   RELEASE / STATUS) with the exact tempd state machine: last-known-good
   staleness holds, the conservative fallback, derivative resets on
   release, restriction clearing on reboot.
2. **admd phase (sequential)** — deliver the messages machine-by-machine
   in canonical order (the daemons' registration order), applying the
   paper's weight/cap/power actuations through the view.  Each datagram
   takes one :meth:`~MachineStateView.datagram_fate` draw when network
   faults are active, so chaos scenarios perturb the unified policy the
   same way they perturb the native daemons.

The sums inside the share-reduction and utilization-averaging arithmetic
deliberately run as Python left-folds in canonical machine order — not
``np.sum`` — so results are bit-identical to the scalar daemons'
``sum()`` over their dicts.

Registration happens at the bottom of this module; importing
:mod:`repro.control` populates the registry.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

try:  # NumPy is required for the unified policies; imports stay gated
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from ..config import table1
from ..errors import ControlError
from ..freon.ec import EcEvent
from ..freon.policy import FreonConfig, weight_for_share_reduction
from ..freon.regions import RegionMap
from ..freon.traditional import Shutdown
from .registry import PolicySpec, register
from .view import POWER_ACTIVE, POWER_OFF, MachineStateView


def _ordered_sum(values) -> float:
    """Left-fold sum in iteration order, matching builtin ``sum()``.

    The scalar daemons total weights/utilizations with ``sum()`` over
    insertion-ordered dicts; reproducing their float results exactly
    requires the same association order, which ``np.sum`` does not
    guarantee.
    """
    total = 0.0
    for value in values:
        total += float(value)
    return total


class ControlPolicy:
    """Base class: the surface a simulation harness drives.

    ``sample`` runs on the stats-period grid (admd's LVS polling),
    ``wake`` on the monitor-period grid (tempd wake + admd delivery +
    any periodic evaluation).  ``checkpoint``/``restore`` round-trip all
    decision-relevant state through plain JSON so host simulations
    resume bit-exactly.
    """

    name = "base"

    def sample(self, view: MachineStateView, now: float) -> None:
        """Record periodic statistics (no actuation)."""

    def wake(self, view: MachineStateView, now: float) -> None:
        """One monitor-period pass: observe, decide, actuate."""

    def checkpoint(self) -> Dict[str, object]:
        """Decision-relevant state as plain JSON-able data."""
        return {}

    def restore(self, data: Dict[str, object]) -> None:
        """Restore a :meth:`checkpoint`."""


class FreonPolicy(ControlPolicy):
    """Base Freon (section 4.1), unified: tempd + admd in one wake.

    State lives in per-machine arrays mirroring each tempd's fields
    (``restricted``, the PD controllers' last temperatures, the last
    ADJUST output, the last-good read time) plus admd's rolling
    connection-sample window.
    """

    name = "freon"
    #: Subclasses flip this to generate STATUS messages (Freon-EC mode).
    _ec_mode = False

    def __init__(self, config: Optional[FreonConfig] = None) -> None:
        if np is None:
            raise ControlError("unified policies require NumPy")
        self.config = config or FreonConfig()
        #: Component classes, in the config's (dict) order — the same
        #: order tempd's reader dict iterates.
        self.classes: Tuple[str, ...] = tuple(self.config.thresholds)
        self._n: Optional[int] = None
        #: Decision records, mirroring admd's lists.
        self.adjustments: List[Tuple[float, str, float]] = []
        self.releases: List[Tuple[float, str]] = []
        self.redlined: List[Tuple[float, str]] = []
        #: Count of ADJUST actuations (the scale stack's summary metric).
        self.throttle_events = 0

    # -- lazy sizing -------------------------------------------------------

    def _ensure(self, view: MachineStateView) -> None:
        n = len(view.machines)
        if self._n == n:
            return
        if self._n is not None:
            raise ControlError(
                f"policy sized for {self._n} machines, view has {n}"
            )
        self._n = n
        self.restricted = np.zeros(n, dtype=bool)
        #: NaN = no derivative state (a fresh/reset PDController).
        self._last_T = {c: np.full(n, np.nan) for c in self.classes}
        #: NaN = no prior ADJUST output (tempd's ``_last_output=None``).
        self._last_output = np.full(n, np.nan)
        #: NaN = never had a good read (tempd's ``_last_good=None``).
        self._last_good = np.full(n, np.nan)
        #: Machines seen active last wake: a False->True edge is a
        #: finished (re)boot, which clears the restriction flag exactly
        #: like the cluster's boot-finish hook clears tempd.restricted.
        self._was_active = np.ones(n, dtype=bool)
        #: admd's rolling (time, connections-array) sample window.
        self._windows: Deque[Tuple[float, "np.ndarray"]] = deque()

    # -- admd statistics ---------------------------------------------------

    def sample(self, view: MachineStateView, now: float) -> None:
        self._ensure(view)
        self._windows.append((now, view.connections()))
        horizon = now - self.config.monitor_period
        while self._windows and self._windows[0][0] < horizon:
            self._windows.popleft()

    def _average_connections(self, view: MachineStateView) -> "np.ndarray":
        """Mean connections over the window (admd.average_connections)."""
        if not self._windows:
            return view.connections()
        total = None
        for _, connections in self._windows:
            # Left-fold, matching the scalar per-machine builtin sum().
            total = connections.copy() if total is None else total + connections
        return total / len(self._windows)

    # -- the wake: tempd phase (vectorized) --------------------------------

    def wake(self, view: MachineStateView, now: float) -> None:
        self._ensure(view)
        config = self.config
        n = self._n
        power = view.power_states()
        active = power == POWER_ACTIVE
        newly_active = active & ~self._was_active
        if newly_active.any():
            self.restricted[newly_active] = False
        self._was_active = active
        awake = active & view.daemons_up()
        if not awake.any():
            return
        temps = view.read_temperatures(self.classes, mask=awake)
        failed = np.zeros(n, dtype=bool)
        for c in self.classes:
            failed |= np.isnan(temps[c])
        failed &= awake
        ok = awake & ~failed

        outputs = np.zeros(n)
        hot_any = np.zeros(n, dtype=bool)
        red_any = np.zeros(n, dtype=bool)
        cool_all = ok.copy()
        for c in self.classes:
            T = temps[c]
            thresholds = config.thresholds[c]
            last_T = self._last_T[c]
            # First observation: the derivative term contributes nothing.
            prev = np.where(np.isnan(last_T), T, last_T)
            out_c = np.maximum(
                config.kp * (T - thresholds.high) + config.kd * (T - prev),
                0.0,
            )
            hot_c = ok & (T > thresholds.high)
            outputs[hot_c] = np.maximum(outputs[hot_c], out_c[hot_c])
            hot_any |= hot_c
            red_any |= ok & (T >= thresholds.red)
            cool_all &= T < thresholds.low
            # update()/observe() both record the current temperature.
            last_T[ok] = T[ok]
        self._last_good[ok] = now

        release = ok & cool_all & self.restricted
        adjust = hot_any
        # Failed-read resilience path (tempd._wake_without_readings).
        fresh = (
            failed
            & ~np.isnan(self._last_good)
            & (now - self._last_good <= config.sensor_staleness_limit + 1e-9)
        )
        stale_hold = fresh & self.restricted & ~np.isnan(self._last_output)
        conservative = failed & ~fresh

        message_output = outputs.copy()
        message_output[stale_hold] = self._last_output[stale_hold]
        message_output[conservative] = config.conservative_output

        # tempd-side state transitions.
        self.restricted[adjust] = True
        self._last_output[adjust] = outputs[adjust]
        self.restricted[release] = False
        for c in self.classes:
            self._last_T[c][release] = np.nan  # controllers.reset()
        self.restricted[conservative] = True
        self._last_output[conservative] = config.conservative_output

        send_adjust = adjust | stale_hold | conservative
        self._deliver_all(
            view, now, ok, red_any, send_adjust, release, message_output
        )
        self._after_delivery(view, now)

    def _after_delivery(self, view: MachineStateView, now: float) -> None:
        """Hook for periodic evaluation after delivery (Freon-EC)."""

    # -- the wake: admd phase (sequential delivery) -------------------------

    def _deliver_all(
        self, view, now, ok, red_any, send_adjust, release, message_output
    ) -> None:
        rows = red_any | send_adjust | release
        if self._ec_mode:
            rows = rows | ok  # STATUS from every successful read
            utilizations = view.read_utilizations(self.classes)
        else:
            utilizations = None
        if not rows.any():
            return
        lossy = view.has_network_faults()
        self._avg_cache: Optional["np.ndarray"] = None
        for i in np.flatnonzero(rows):
            i = int(i)
            # Per-machine message order is tempd's: REDLINE first, then
            # ADJUST or RELEASE, then STATUS.
            if red_any[i]:
                self._post(view, lossy, self._deliver_redline, now, i)
            if send_adjust[i]:
                self._post(
                    view, lossy, self._deliver_adjust, now, i,
                    float(message_output[i]),
                )
            elif release[i]:
                self._post(view, lossy, self._deliver_release, now, i)
            if self._ec_mode and ok[i]:
                self._post(
                    view, lossy, self._deliver_status, now, i, utilizations,
                )

    def _post(self, view, lossy, handler, now, i, *args) -> None:
        """Deliver one datagram, applying its network fate like the
        native LossyChannel: one fate draw per send, dropped messages
        vanish, duplicated messages are handled twice back-to-back."""
        copies = 1
        if lossy:
            dropped, duplicated, _delay = view.datagram_fate()
            if dropped:
                return
            if duplicated:
                copies = 2
        for _ in range(copies):
            handler(view, now, i, *args)

    def _active_weights(self, view: MachineStateView) -> Dict[str, float]:
        """Weights of currently active machines, in canonical order —
        admd's "accounting for the weights of all servers" dict."""
        power = view.power_states()
        weights = view.weights()
        return {
            view.machines[int(j)]: float(weights[int(j)])
            for j in np.flatnonzero(power == POWER_ACTIVE)
        }

    def _deliver_adjust(self, view, now, i, output) -> None:
        if view.power_state(i) != POWER_ACTIVE:
            return  # drained/booting machines take no load to shift
        machine = view.machines[i]
        weights = self._active_weights(view)
        new_weight = weight_for_share_reduction(weights, machine, output)
        view.set_weight(i, new_weight)
        if self._avg_cache is None:
            self._avg_cache = self._average_connections(view)
        view.set_connection_cap(i, float(self._avg_cache[i]))
        self.adjustments.append((now, machine, output))
        self.throttle_events += 1

    def _deliver_release(self, view, now, i) -> None:
        view.set_weight(i, self.config.base_weight)
        view.set_connection_cap(i, None)
        self.releases.append((now, view.machines[i]))

    def _deliver_redline(self, view, now, i) -> None:
        self.redlined.append((now, view.machines[i]))
        view.set_power(i, False)

    def _deliver_status(self, view, now, i, utilizations) -> None:
        """Base Freon ignores STATUS; Freon-EC overrides this."""

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        if self._n is None:
            return {"sized": False}
        return {
            "sized": True,
            "restricted": self.restricted.tolist(),
            "last_T": {c: a.tolist() for c, a in self._last_T.items()},
            "last_output": self._last_output.tolist(),
            "last_good": self._last_good.tolist(),
            "was_active": self._was_active.tolist(),
            "windows": [
                [t, connections.tolist()] for t, connections in self._windows
            ],
            "throttle_events": self.throttle_events,
        }

    def restore(self, data: Dict[str, object]) -> None:
        if not data.get("sized"):
            return
        restricted = np.array(data["restricted"], dtype=bool)
        self._n = len(restricted)
        self.restricted = restricted
        self._last_T = {
            c: np.array(data["last_T"][c], dtype=float) for c in self.classes
        }
        self._last_output = np.array(data["last_output"], dtype=float)
        self._last_good = np.array(data["last_good"], dtype=float)
        self._was_active = np.array(data["was_active"], dtype=bool)
        self._windows = deque(
            (float(t), np.array(connections, dtype=float))
            for t, connections in data["windows"]
        )
        self.throttle_events = int(data["throttle_events"])


class FreonECPolicy(FreonPolicy):
    """Freon-EC (section 4.2, Figure 10), unified.

    Inherits the full tempd/admd wake and adds the energy-conservation
    loop: STATUS bookkeeping, per-region emergency counting, hot-server
    replacement, and the periodic grow/shrink evaluation — the same
    arithmetic as :class:`~repro.freon.ec.AdmdEC`, actuated through the
    view's power switch.
    """

    name = "freon-ec"
    _ec_mode = True

    def __init__(
        self,
        config: Optional[FreonConfig] = None,
        util_high: float = table1.EC_UTIL_HIGH,
        util_low: float = table1.EC_UTIL_LOW,
        min_active: int = 1,
    ) -> None:
        super().__init__(config)
        self.util_high = util_high
        self.util_low = util_low
        self.min_active = min_active
        self._regions: Optional[RegionMap] = None
        self._row: Dict[str, int] = {}
        #: Machines currently known hot (sticky across power-off, like
        #: AdmdEC._hot: only a RELEASE clears the flag).
        self._hot: Dict[str, bool] = {}
        self._previous_average: Optional[Dict[str, float]] = None
        self.events: List[EcEvent] = []
        #: rr cursor restored before the region map is (re)built lazily.
        self._pending_rr: Optional[int] = None

    def _ensure(self, view: MachineStateView) -> None:
        fresh = self._n != len(view.machines)
        super()._ensure(view)
        if fresh:
            n = self._n
            #: Latest STATUS payload per machine, one column per class.
            self._util_store = {c: np.zeros(n) for c in self.classes}
            self._util_known = np.zeros(n, dtype=bool)

    def _ensure_regions(self, view: MachineStateView) -> None:
        if self._regions is not None:
            return
        assignment = {
            name: view.region_of(i) for i, name in enumerate(view.machines)
        }
        self._regions = RegionMap(assignment)
        self._row = {name: i for i, name in enumerate(view.machines)}
        # Region emergency counts are derivable from the sticky hot set
        # (one note per newly-hot machine, one clear per release).
        for name, hot in self._hot.items():
            if hot:
                self._regions.note_emergency(name)
        if self._pending_rr is not None:
            self._regions.rr_index = self._pending_rr
            self._pending_rr = None

    def wake(self, view: MachineStateView, now: float) -> None:
        self._ensure(view)
        self._ensure_regions(view)
        super().wake(view, now)

    def _after_delivery(self, view: MachineStateView, now: float) -> None:
        self.evaluate(view, now)

    # -- message handling overrides (AdmdEC) --------------------------------

    def _deliver_status(self, view, now, i, utilizations) -> None:
        for c in self.classes:
            self._util_store[c][i] = utilizations[c][i]
        self._util_known[i] = True

    def _deliver_adjust(self, view, now, i, output) -> None:
        machine = view.machines[i]
        newly_hot = not self._hot.get(machine, False)
        self._hot[machine] = True
        if newly_hot:
            self._regions.note_emergency(machine)
            self._respond_to_emergency(view, now, i, output)
        elif view.power_state(i) == POWER_ACTIVE:
            # Ongoing emergency on a server we decided to keep: base policy.
            super()._deliver_adjust(view, now, i, output)

    def _deliver_release(self, view, now, i) -> None:
        machine = view.machines[i]
        if self._hot.get(machine, False):
            self._hot[machine] = False
            self._regions.clear_emergency(machine)
        super()._deliver_release(view, now, i)

    def _respond_to_emergency(self, view, now, i, output) -> None:
        """Figure 10's hot-component branch."""
        needed = self._servers_needed(view)
        if needed >= self._n:
            # All servers in the cluster need to be active.
            FreonPolicy._deliver_adjust(self, view, now, i, output)
            return
        active = np.flatnonzero(view.power_states() == POWER_ACTIVE)
        if needed >= len(active):
            # Cannot remove a server without replacing it first.
            replacement = self._pick_off_server(view)
            if replacement is None:
                FreonPolicy._deliver_adjust(self, view, now, i, output)
                return
            view.set_power(replacement, True)
            self._log(now, "on", view.machines[replacement],
                      "replace hot server")
        view.set_power(i, False)
        self._log(now, "off", view.machines[i], "hot server replaced/retired")

    # -- periodic reconfiguration -------------------------------------------

    def evaluate(self, view: MachineStateView, now: float) -> None:
        """One Figure 10 grow/shrink pass; runs after every delivery."""
        average = self._average_utilizations(view)
        projected = self._project(average)
        self._previous_average = average

        # Grow when projected demand exceeds the high threshold.
        if projected and max(projected.values()) > self.util_high:
            candidate = self._pick_off_server(view)
            if candidate is not None:
                view.set_power(candidate, True)
                self._log(now, "on", view.machines[candidate],
                          f"projected util {max(projected.values()):.2f} > "
                          f"{self.util_high:.2f}")

        # Shrink while the remaining servers would stay under U_l.
        while True:
            active = np.flatnonzero(view.power_states() == POWER_ACTIVE)
            if len(active) <= self.min_active:
                break
            if not self._can_remove(average, len(active)):
                break
            victim = self._pick_removal_victim(view, active)
            if victim is None:
                break
            view.set_power(victim, False)
            self._log(now, "off", view.machines[victim], "energy conservation")
            scale = len(active) / max(len(active) - 1, 1)
            average = {c: u * scale for c, u in average.items()}

    # -- arithmetic helpers --------------------------------------------------

    def _average_utilizations(self, view) -> Dict[str, float]:
        """Per-component utilization averaged across active servers."""
        active = np.flatnonzero(view.power_states() == POWER_ACTIVE)
        if len(active) == 0:
            return {}
        known = active[self._util_known[active]]
        if len(known) == 0:
            return {}
        return {
            c: _ordered_sum(self._util_store[c][known]) / len(active)
            for c in self.classes
        }

    def _project(self, average: Dict[str, float]) -> Dict[str, float]:
        """Two-interval linear projection when load is increasing."""
        if self._previous_average is None:
            return dict(average)
        projected: Dict[str, float] = {}
        for component, value in average.items():
            previous = self._previous_average.get(component, value)
            delta = value - previous
            projected[component] = (
                value + 2.0 * delta if delta > 0.0 else value
            )
        return projected

    def _servers_needed(self, view) -> int:
        """How many servers current demand requires at U_h per server."""
        average = self._average_utilizations(view)
        active = int((view.power_states() == POWER_ACTIVE).sum())
        if not average or active == 0:
            return self.min_active
        demand = max(average.values()) * active
        return max(self.min_active, math.ceil(demand / self.util_high - 1e-9))

    def _can_remove(self, average: Dict[str, float], active_count: int) -> bool:
        """Would one removal keep every component average below U_l?"""
        if not average:
            return True
        scale = active_count / max(active_count - 1, 1)
        return all(u * scale < self.util_low for u in average.values())

    def _pick_off_server(self, view) -> Optional[int]:
        """Round-robin region pick of a powered-off server (row index)."""
        power = view.power_states()
        off = {
            view.machines[int(j)] for j in np.flatnonzero(power == POWER_OFF)
        }
        if not off:
            return None
        regions = self._regions
        region = regions.pick_region(
            lambda r: any(s in off for s in regions.servers_in(r))
        )
        if region is None:
            return None
        for server in regions.servers_in(region):
            if server in off:
                return self._row[server]
        return None

    def _pick_removal_victim(self, view, active) -> Optional[int]:
        """Lowest-capacity active server: restricted (low-weight) first."""
        if len(active) == 0:
            return None
        weights = view.weights()
        return int(min(
            active,
            key=lambda j: (float(weights[int(j)]), view.machines[int(j)]),
        ))

    def _log(self, time: float, action: str, machine: str, reason: str) -> None:
        self.events.append(
            EcEvent(time=time, action=action, machine=machine, reason=reason)
        )

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        state = super().checkpoint()
        if not state.get("sized"):
            return state
        state["ec"] = {
            "hot": dict(self._hot),
            "util_store": {
                c: a.tolist() for c, a in self._util_store.items()
            },
            "util_known": self._util_known.tolist(),
            "previous_average": self._previous_average,
            "rr_index": (
                self._regions.rr_index if self._regions is not None
                else (self._pending_rr or 0)
            ),
        }
        return state

    def restore(self, data: Dict[str, object]) -> None:
        super().restore(data)
        if not data.get("sized"):
            return
        ec = data["ec"]
        self._hot = {str(k): bool(v) for k, v in ec["hot"].items()}
        self._util_store = {
            c: np.array(ec["util_store"][c], dtype=float)
            for c in self.classes
        }
        self._util_known = np.array(ec["util_known"], dtype=bool)
        previous = ec["previous_average"]
        self._previous_average = (
            None if previous is None
            else {str(k): float(v) for k, v in previous.items()}
        )
        self._regions = None  # rebuilt (with emergencies) on next wake
        self._pending_rr = int(ec["rr_index"])


class TraditionalControlPolicy(ControlPolicy):
    """The traditional comparison point: shut red-lined servers down.

    Unified form of :class:`~repro.freon.traditional.TraditionalPolicy`:
    machines stay dead for the rest of the run.  Failed (``NaN``) reads
    are skipped — a blind traditional controller takes no action, which
    is exactly its weakness under sensor faults.
    """

    name = "traditional"

    def __init__(self, config: Optional[FreonConfig] = None) -> None:
        if np is None:
            raise ControlError("unified policies require NumPy")
        self.config = config or FreonConfig()
        self.classes: Tuple[str, ...] = tuple(self.config.thresholds)
        self.shutdowns: List[Shutdown] = []
        self._dead: set = set()

    def wake(self, view: MachineStateView, now: float) -> None:
        n = len(view.machines)
        live = view.power_states() != POWER_OFF
        if self._dead:
            for name in self._dead:
                live[view.machines.index(name)] = False
        if not live.any():
            return
        temps = view.read_temperatures(self.classes, mask=live)
        fired = np.zeros(n, dtype=bool)
        for c in self.classes:
            fired |= live & (temps[c] >= self.config.red(c))
        for i in np.flatnonzero(fired):
            i = int(i)
            machine = view.machines[i]
            # Attribute the shutdown to the first red class in reader
            # (dict) order, like the scalar policy's first-match break.
            for c in self.classes:
                temperature = float(temps[c][i])
                if not math.isnan(temperature) and (
                    temperature >= self.config.red(c)
                ):
                    view.set_power(i, False)
                    self._dead.add(machine)
                    self.shutdowns.append(Shutdown(
                        time=now, machine=machine, component=c,
                        temperature=temperature,
                    ))
                    break

    def checkpoint(self) -> Dict[str, object]:
        return {"dead": sorted(self._dead)}

    def restore(self, data: Dict[str, object]) -> None:
        self._dead = set(data["dead"])


class EmergencyPolicy(ControlPolicy):
    """Red-line guard with recovery: cut power at T_r, reboot once cool.

    The paper's red-line semantics ("modern CPUs and disks turn
    themselves off when these temperatures are reached") as a standalone
    policy: any component at/above its red line powers the machine off;
    a machine this policy turned off reboots once every component has
    cooled below its low threshold.  Unlike the traditional policy the
    fleet self-heals, so it is usable as a safety net at datacenter
    scale.
    """

    name = "emergency"

    def __init__(self, config: Optional[FreonConfig] = None) -> None:
        if np is None:
            raise ControlError("unified policies require NumPy")
        self.config = config or FreonConfig()
        self.classes: Tuple[str, ...] = tuple(self.config.thresholds)
        #: Rows this policy powered off (candidates for recovery).
        self._down: set = set()
        self.events: List[Tuple[float, str, str]] = []

    def wake(self, view: MachineStateView, now: float) -> None:
        n = len(view.machines)
        temps = view.read_temperatures(self.classes)
        power = view.power_states()
        red = np.zeros(n, dtype=bool)
        cool = np.ones(n, dtype=bool)
        for c in self.classes:
            red |= temps[c] >= self.config.red(c)
            cool &= temps[c] < self.config.low(c)
        for i in np.flatnonzero((power == POWER_ACTIVE) & red):
            i = int(i)
            view.set_power(i, False)
            self._down.add(i)
            self.events.append((now, "off", view.machines[i]))
        for i in sorted(self._down):
            if power[i] == POWER_OFF and cool[i]:
                view.set_power(i, True)
                self._down.discard(i)
                self.events.append((now, "on", view.machines[i]))

    def checkpoint(self) -> Dict[str, object]:
        return {"down": sorted(self._down)}

    def restore(self, data: Dict[str, object]) -> None:
        self._down = {int(i) for i in data["down"]}


# -- registrations -----------------------------------------------------------
# Insertion order is canonical: the cluster slice must keep the
# historical POLICIES order (none, freon, freon-ec, traditional,
# local-dvfs); scale-only policies register after it.

register(PolicySpec(
    name="none",
    description="no thermal management (baseline)",
    stacks=("cluster", "scale"),
))
register(PolicySpec(
    name="freon",
    description="Freon weight/cap throttling (section 4.1)",
    stacks=("cluster", "scale"),
    factory=FreonPolicy,
))
register(PolicySpec(
    name="freon-ec",
    description="Freon-EC energy + thermal management (section 4.2)",
    stacks=("cluster", "scale"),
    factory=FreonECPolicy,
))
register(PolicySpec(
    name="traditional",
    description="traditional red-line shutdown (section 5.1)",
    stacks=("cluster", "scale"),
    factory=TraditionalControlPolicy,
))
register(PolicySpec(
    name="local-dvfs",
    description="per-CPU DVFS with no cluster coordination (section 4.3)",
    stacks=("cluster",),
))
register(PolicySpec(
    name="emergency",
    description="red-line power-off with cool-down recovery",
    stacks=("scale",),
    factory=EmergencyPolicy,
))
