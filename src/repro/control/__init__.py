"""repro.control: one management layer over both simulation stacks.

The control plane separates *what a policy decides* from *which
simulator it runs on* — Mercury/Freon's own separation of management
from emulation, applied to this repo's two stacks:

* :mod:`repro.control.view` — the :class:`MachineStateView` protocol
  (observe temperatures/utilizations/weights/power, actuate
  weights/caps/power/DVFS) with a scalar backend over
  :class:`~repro.cluster.simulation.ClusterSimulation` and a vectorized
  backend over :class:`~repro.topology.sim.ScaleSimulation`.
* :mod:`repro.control.policies` — Freon, Freon-EC, traditional
  shutdown, and emergency control rewritten once against the view.
* :mod:`repro.control.registry` — the policy name registry both stacks
  validate against and build from.
* :mod:`repro.control.parity` — the scalar-vs-vectorized equivalence
  harness proving both backends produce the same decisions and
  temperatures.

Importing this package registers the built-in policies.
"""

from .registry import PolicySpec, STACKS, build, get, names, register
from .view import (
    POWER_ACTIVE,
    POWER_BOOTING,
    POWER_DRAINING,
    POWER_OFF,
    ClusterStateView,
    FlatStateView,
    MachineStateView,
)
from .policies import (
    ControlPolicy,
    EmergencyPolicy,
    FreonECPolicy,
    FreonPolicy,
    TraditionalControlPolicy,
)

__all__ = [
    "PolicySpec",
    "STACKS",
    "build",
    "get",
    "names",
    "register",
    "POWER_ACTIVE",
    "POWER_BOOTING",
    "POWER_DRAINING",
    "POWER_OFF",
    "ClusterStateView",
    "FlatStateView",
    "MachineStateView",
    "ControlPolicy",
    "EmergencyPolicy",
    "FreonECPolicy",
    "FreonPolicy",
    "TraditionalControlPolicy",
]
