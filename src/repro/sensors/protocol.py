"""Wire formats for Mercury's UDP plumbing.

Two message families flow between the pieces of the suite (Figure 2):

* **utilization updates** — monitord -> solver, "128-byte UDP messages"
  carrying up to four (component, utilization) pairs for one machine;
* **sensor queries** — the sensor library -> solver and back, carrying a
  (machine, component) request and a (status, temperature) response.

All messages are fixed-size, network-byte-order structs so a reader can
``recv`` exactly one datagram and decode it without framing logic.
Strings are UTF-8, NUL-padded, and silently truncated to their field
width on encode (field widths fit every name Table 1 uses).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import SensorError

#: Protocol magic numbers (distinct per message type).
UPDATE_MAGIC = b"MUPD"
QUERY_MAGIC = b"MQRY"
REPLY_MAGIC = b"MRPL"

PROTOCOL_VERSION = 1

#: monitord update: magic, version, machine, count, 4 x (name, utilization)
#: 4 + 1 + 24 + 1 + 4 * (20 + 4) = 126, padded to exactly 128 bytes.
_UPDATE_STRUCT = struct.Struct("!4sB24sB" + "20sf" * 4 + "2x")
UPDATE_SIZE = _UPDATE_STRUCT.size
MAX_UPDATE_COMPONENTS = 4

#: sensor query: magic, version, request id, machine, component.
_QUERY_STRUCT = struct.Struct("!4sBI24s24s")
QUERY_SIZE = _QUERY_STRUCT.size

#: sensor reply: magic, version, request id, status, temperature.
_REPLY_STRUCT = struct.Struct("!4sBIBf")
REPLY_SIZE = _REPLY_STRUCT.size

#: Reply status codes.
STATUS_OK = 0
STATUS_UNKNOWN_SENSOR = 1
STATUS_ERROR = 2


def _pack_name(name: str, width: int) -> bytes:
    raw = name.encode("utf-8")[:width]
    return raw.ljust(width, b"\0")


def _unpack_name(raw: bytes) -> str:
    return raw.rstrip(b"\0").decode("utf-8", errors="replace")


@dataclass(frozen=True)
class UtilizationUpdate:
    """One monitord -> solver datagram."""

    machine: str
    utilizations: Dict[str, float] = field(default_factory=dict)

    def encode(self) -> bytes:
        """Serialize to the fixed 128-byte wire format."""
        items: List[Tuple[str, float]] = sorted(self.utilizations.items())
        if len(items) > MAX_UPDATE_COMPONENTS:
            raise SensorError(
                f"update carries {len(items)} components; max is "
                f"{MAX_UPDATE_COMPONENTS} per datagram"
            )
        fields: List[object] = [
            UPDATE_MAGIC,
            PROTOCOL_VERSION,
            _pack_name(self.machine, 24),
            len(items),
        ]
        for name, value in items:
            if not 0.0 <= value <= 1.0:
                raise SensorError(f"utilization of {name!r} out of range: {value}")
            fields.append(_pack_name(name, 20))
            fields.append(value)
        for _ in range(MAX_UPDATE_COMPONENTS - len(items)):
            fields.append(b"")
            fields.append(0.0)
        return _UPDATE_STRUCT.pack(*fields)

    @classmethod
    def decode(cls, data: bytes) -> "UtilizationUpdate":
        """Parse a datagram; raises SensorError on malformed input."""
        if len(data) != UPDATE_SIZE:
            raise SensorError(
                f"bad update size: {len(data)} (expected {UPDATE_SIZE})"
            )
        unpacked = _UPDATE_STRUCT.unpack(data)
        magic, version, machine_raw, count = unpacked[:4]
        if magic != UPDATE_MAGIC:
            raise SensorError(f"bad update magic: {magic!r}")
        if version != PROTOCOL_VERSION:
            raise SensorError(f"unsupported protocol version: {version}")
        if count > MAX_UPDATE_COMPONENTS:
            raise SensorError(f"bad component count: {count}")
        utilizations: Dict[str, float] = {}
        for i in range(count):
            name = _unpack_name(unpacked[4 + 2 * i])
            value = float(unpacked[5 + 2 * i])
            utilizations[name] = value
        return cls(machine=_unpack_name(machine_raw), utilizations=utilizations)


@dataclass(frozen=True)
class SensorQuery:
    """One sensor-library -> solver request."""

    request_id: int
    machine: str
    component: str

    def encode(self) -> bytes:
        """Serialize to the fixed wire format."""
        return _QUERY_STRUCT.pack(
            QUERY_MAGIC,
            PROTOCOL_VERSION,
            self.request_id & 0xFFFFFFFF,
            _pack_name(self.machine, 24),
            _pack_name(self.component, 24),
        )

    @classmethod
    def decode(cls, data: bytes) -> "SensorQuery":
        """Parse a request datagram."""
        if len(data) != QUERY_SIZE:
            raise SensorError(f"bad query size: {len(data)} (expected {QUERY_SIZE})")
        magic, version, request_id, machine_raw, component_raw = _QUERY_STRUCT.unpack(
            data
        )
        if magic != QUERY_MAGIC:
            raise SensorError(f"bad query magic: {magic!r}")
        if version != PROTOCOL_VERSION:
            raise SensorError(f"unsupported protocol version: {version}")
        return cls(
            request_id=request_id,
            machine=_unpack_name(machine_raw),
            component=_unpack_name(component_raw),
        )


@dataclass(frozen=True)
class SensorReply:
    """One solver -> sensor-library response."""

    request_id: int
    status: int
    temperature: float

    def encode(self) -> bytes:
        """Serialize to the fixed wire format."""
        return _REPLY_STRUCT.pack(
            REPLY_MAGIC,
            PROTOCOL_VERSION,
            self.request_id & 0xFFFFFFFF,
            self.status,
            self.temperature,
        )

    @classmethod
    def decode(cls, data: bytes) -> "SensorReply":
        """Parse a response datagram."""
        if len(data) != REPLY_SIZE:
            raise SensorError(f"bad reply size: {len(data)} (expected {REPLY_SIZE})")
        magic, version, request_id, status, temperature = _REPLY_STRUCT.unpack(data)
        if magic != REPLY_MAGIC:
            raise SensorError(f"bad reply magic: {magic!r}")
        if version != PROTOCOL_VERSION:
            raise SensorError(f"unsupported protocol version: {version}")
        return cls(request_id=request_id, status=status, temperature=temperature)
