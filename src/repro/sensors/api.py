"""The sensor client library: opensensor / readsensor / closesensor.

Figure 3 of the paper:

.. code-block:: c

    int sd;
    float temp;
    sd = opensensor("solvermachine", 8367, "disk");
    temp = readsensor(sd);
    closesensor(sd);

"With this interface, the programmer can treat Mercury as a regular,
local sensor device."  This module keeps the same three calls and
semantics: :func:`opensensor` returns a small integer descriptor,
:func:`readsensor` performs one round-trip to the solver, and
:func:`closesensor` releases the descriptor.

Two transports are supported through the ``host`` argument:

* a ``(host, port)`` UDP endpoint — the real wire path, with a
  per-descriptor socket and the shared
  :class:`~repro.faults.backoff.BackoffPolicy` retry schedule;
* a :class:`~repro.sensors.server.SensorService` instance — the
  in-process path used by the simulation harness, where "network" calls
  become method calls (latency still counts one OS-free round-trip).

An object-oriented :class:`SensorConnection` wrapper is provided for
callers that prefer context managers over the C-style calls.
"""

from __future__ import annotations

import itertools
import math
import socket
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..errors import SensorClosedError, SensorError
from ..faults.backoff import DEFAULT_BACKOFF, BackoffPolicy
from ..telemetry import NULL_TELEMETRY
from . import protocol
from .server import SensorService

#: Default machine queried when the caller does not name one (single-node
#: setups, like the Figure 3 example).
DEFAULT_MACHINE = "machine1"

#: Telemetry used by descriptors opened without an explicit facade.
_default_telemetry = NULL_TELEMETRY

_HostType = Union[str, SensorService]


def set_default_telemetry(telemetry) -> None:
    """Set the telemetry facade newly opened descriptors default to.

    Pass ``None`` to restore the shared no-op facade.  Existing
    descriptors keep the facade they were opened with.
    """
    global _default_telemetry
    _default_telemetry = NULL_TELEMETRY if telemetry is None else telemetry


@dataclass
class _Descriptor:
    service: Optional[SensorService]
    sock: Optional[socket.socket]
    address: Optional[Tuple[str, int]]
    machine: str
    component: str
    request_ids: "itertools.count[int]"
    policy: BackoffPolicy = DEFAULT_BACKOFF
    telemetry: object = NULL_TELEMETRY


_table_lock = threading.Lock()
_descriptors: Dict[int, _Descriptor] = {}
_next_sd = itertools.count(3)  # mimic fd numbering above stdio


def opensensor(
    host: _HostType,
    port: int,
    component: str,
    machine: str = DEFAULT_MACHINE,
    policy: Optional[BackoffPolicy] = None,
    telemetry=None,
) -> int:
    """Open a sensor on the solver at ``host``/``port``.

    ``host`` may be a hostname/IP (UDP transport) or a
    :class:`SensorService` (in-process transport; ``port`` is ignored).
    ``policy`` overrides the shared UDP retry/backoff schedule;
    ``telemetry`` overrides the module default set by
    :func:`set_default_telemetry`.
    Returns a descriptor for :func:`readsensor`/:func:`closesensor`.
    """
    if policy is None:
        policy = DEFAULT_BACKOFF
    if telemetry is None:
        telemetry = _default_telemetry
    if isinstance(host, SensorService):
        descriptor = _Descriptor(
            service=host,
            sock=None,
            address=None,
            machine=machine,
            component=component,
            request_ids=itertools.count(1),
            policy=policy,
            telemetry=telemetry,
        )
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(policy.base_timeout)
        descriptor = _Descriptor(
            service=None,
            sock=sock,
            address=(host, port),
            machine=machine,
            component=component,
            request_ids=itertools.count(1),
            policy=policy,
            telemetry=telemetry,
        )
    with _table_lock:
        sd = next(_next_sd)
        _descriptors[sd] = descriptor
    return sd


def readsensor(sd: int) -> float:
    """One temperature reading from an open sensor descriptor."""
    descriptor = _lookup(sd)
    if descriptor.service is not None:
        return descriptor.service.read_temperature(
            descriptor.machine, descriptor.component
        )
    return _udp_read(descriptor)


def closesensor(sd: int) -> None:
    """Close a sensor descriptor; further reads raise SensorClosedError."""
    with _table_lock:
        descriptor = _descriptors.pop(sd, None)
    if descriptor is None:
        raise SensorClosedError(f"sensor descriptor {sd} is not open")
    if descriptor.sock is not None:
        descriptor.sock.close()


def open_sensor_count() -> int:
    """Number of currently open descriptors (useful for leak tests)."""
    with _table_lock:
        return len(_descriptors)


def _lookup(sd: int) -> _Descriptor:
    with _table_lock:
        descriptor = _descriptors.get(sd)
    if descriptor is None:
        raise SensorClosedError(f"sensor descriptor {sd} is not open")
    return descriptor


def _udp_read(descriptor: _Descriptor) -> float:
    assert descriptor.sock is not None and descriptor.address is not None
    policy = descriptor.policy
    telemetry = descriptor.telemetry
    labels = (
        {"machine": descriptor.machine, "component": descriptor.component}
        if telemetry.enabled
        else None
    )
    last_error: Optional[Exception] = None
    for timeout in policy.timeouts():
        descriptor.sock.settimeout(timeout)
        request_id = next(descriptor.request_ids)
        query = protocol.SensorQuery(
            request_id=request_id,
            machine=descriptor.machine,
            component=descriptor.component,
        )
        if telemetry.enabled:
            telemetry.counter(
                "sensor_udp_attempts_total", labels,
                help="UDP sensor query attempts (including retries).",
            ).inc()
            if last_error is not None:
                telemetry.counter(
                    "sensor_udp_retries_total", labels,
                    help="UDP sensor query retries after a timeout.",
                ).inc()
        try:
            descriptor.sock.sendto(query.encode(), descriptor.address)
            while True:
                data, _addr = descriptor.sock.recvfrom(2048)
                reply = protocol.SensorReply.decode(data)
                if reply.request_id != request_id:
                    continue  # stale reply from a timed-out attempt
                if reply.status == protocol.STATUS_UNKNOWN_SENSOR:
                    raise SensorError(
                        f"solver knows no sensor {descriptor.component!r} on "
                        f"machine {descriptor.machine!r}"
                    )
                if reply.status != protocol.STATUS_OK or math.isnan(
                    reply.temperature
                ):
                    raise SensorError("solver reported an error for this sensor")
                return reply.temperature
        except socket.timeout as exc:
            last_error = exc
            if telemetry.enabled:
                telemetry.counter(
                    "sensor_udp_timeouts_total", labels,
                    help="UDP sensor attempts that timed out.",
                ).inc()
                telemetry.counter(
                    "sensor_udp_backoff_seconds_total", labels,
                    help="Seconds spent waiting on timed-out UDP attempts.",
                ).inc(timeout)
            continue
    if telemetry.enabled:
        telemetry.counter(
            "sensor_udp_failures_total", labels,
            help="UDP sensor reads that exhausted every retry.",
        ).inc()
        telemetry.event(
            "sensor_read_failed",
            "sensors",
            machine=descriptor.machine,
            component=descriptor.component,
            attempts=policy.attempts,
        )
    raise SensorError(
        f"no reply from solver at {descriptor.address} after "
        f"{policy.attempts} attempts"
    ) from last_error


class SensorConnection:
    """Context-managed, object-style wrapper over the three calls.

    >>> with SensorConnection(service, component="disk") as sensor:
    ...     temp = sensor.read()
    """

    def __init__(
        self,
        host: _HostType,
        port: int = 0,
        component: str = "cpu",
        machine: str = DEFAULT_MACHINE,
        policy: Optional[BackoffPolicy] = None,
        telemetry=None,
    ) -> None:
        self._sd = opensensor(
            host, port, component, machine, policy=policy, telemetry=telemetry
        )
        self._open = True

    def read(self) -> float:
        """One temperature reading."""
        if not self._open:
            raise SensorClosedError("connection already closed")
        return readsensor(self._sd)

    def close(self) -> None:
        """Release the descriptor (idempotent)."""
        if self._open:
            closesensor(self._sd)
            self._open = False

    def __enter__(self) -> "SensorConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
