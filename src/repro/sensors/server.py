"""The solver-side sensor service.

"The solver ... runs on a separate machine and receives component
utilizations from a trace file or from the monitoring daemons ...
applications or system software can query the solver for temperatures."

:class:`SensorService` wraps a :class:`~repro.core.solver.Solver` behind
a thread-safe facade with two faces:

* an **in-process** face (:meth:`handle_query`, :meth:`handle_update`)
  used by the simulation harness and most tests;
* a **UDP** face (:class:`UdpSensorServer`) binding a real socket on
  localhost, used by integration tests and the latency benchmark — the
  same datagrams a remote monitord/sensor-library would send.

Sensor names resolve through an alias table (``"cpu" -> "CPU"``,
``"disk" -> "Disk Platters"``, ...) so callers can use the short names of
the paper's Figure 3 example.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from ..core.solver import Solver
from ..errors import SensorError, UnknownSensorError
from ..faults.backoff import DAEMON_JOIN_TIMEOUT, SERVER_POLL_INTERVAL
from ..telemetry import ensure as _ensure_telemetry
from . import protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector


class SensorService:
    """Thread-safe query/update facade over a solver.

    When a :class:`~repro.faults.injector.FaultInjector` is attached,
    every reading served through :meth:`read_temperature` passes through
    its sensor hook (stuck-at / dropout / spike / extra noise);
    :meth:`true_temperature` bypasses faults for instrumentation that
    must observe the physical ground truth.
    """

    def __init__(
        self,
        solver: Solver,
        aliases: Optional[Mapping[str, str]] = None,
        injector: Optional["FaultInjector"] = None,
        telemetry=None,
    ) -> None:
        self._solver = solver
        self._aliases = dict(aliases or {})
        #: Memoized alias resolutions (the alias table is fixed at
        #: construction, so resolution is a pure function of the name).
        self._resolve_cache: Dict[str, str] = {}
        #: (machine, component) -> (temperatures dict, node name) for
        #: :meth:`true_temperature`.  MachineState.temperatures is
        #: mutated in place and never rebound, so caching the dict
        #: object itself is safe and skips the per-read name resolution.
        self._true_cache: Dict[Tuple[str, str], Tuple[Dict[str, float], str]] = {}
        #: machine -> (first, second, entry_a, entry_b) for
        #: :meth:`true_pair`; entries are shared with ``_true_cache``.
        self._pair_cache: Dict[
            str, Tuple[str, str, Tuple[Dict[str, float], str],
                       Tuple[Dict[str, float], str]]
        ] = {}
        self._lock = threading.RLock()
        self.injector = injector
        self.telemetry = _ensure_telemetry(telemetry)
        self._tel_queries = self.telemetry.counter(
            "sensor_queries_total", help="Sensor temperature queries served.",
        )
        self._tel_faulted = self.telemetry.counter(
            "sensor_faulted_reads_total",
            help="Sensor readings altered or dropped by injected faults.",
        )
        self._tel_updates = self.telemetry.counter(
            "sensor_utilization_updates_total",
            help="Monitord utilization updates applied to the solver.",
        )
        self._tel_errors = self.telemetry.counter(
            "sensor_errors_total", help="Malformed or unresolvable queries.",
        )
        #: Counters useful in tests and for ops visibility.
        self.queries_served = 0
        self.updates_applied = 0
        self.errors = 0

    @property
    def solver(self) -> Solver:
        """The wrapped solver (lock externally when stepping it)."""
        return self._solver

    @property
    def lock(self) -> threading.RLock:
        """Lock guarding the solver; hold it while stepping."""
        return self._lock

    def resolve(self, component: str) -> str:
        """Apply the sensor alias table."""
        try:
            return self._resolve_cache[component]
        except KeyError:
            resolved = self._aliases.get(
                component, self._aliases.get(component.lower(), component)
            )
            self._resolve_cache[component] = resolved
            return resolved

    # -- in-process face --------------------------------------------------

    def read_temperature(self, machine: str, component: str) -> float:
        """Resolve aliases and read a temperature from the solver.

        Subject to any active sensor faults; may raise
        :class:`~repro.errors.SensorError` during an injected dropout.
        """
        with self._lock:
            value = self._solver.temperature(machine, self.resolve(component))
            self.queries_served += 1
            self._tel_queries.inc()
            if self.injector is not None:
                try:
                    faulted = self.injector.filter_sensor(machine, component, value)
                except SensorError:
                    self._tel_faulted.inc()  # injected dropout
                    raise
                if faulted != value:
                    self._tel_faulted.inc()
                value = faulted
            return value

    def true_temperature(self, machine: str, component: str) -> float:
        """Read the ground-truth temperature, bypassing injected faults."""
        entry = self._true_cache.get((machine, component))
        if entry is None:
            with self._lock:
                state = self._solver.machine(machine)
                node = self._solver._resolve_node(
                    state, self.resolve(component)
                )
                self._true_cache[(machine, component)] = (
                    state.temperatures, node,
                )
                return state.temperatures[node]
        temperatures, node = entry
        with self._lock:
            return temperatures[node]

    def true_pair(
        self, machine: str, first: str = "cpu", second: str = "disk"
    ) -> Tuple[float, float]:
        """Two ground-truth readings in two cached dict lookups.

        The per-tick recorder reads every machine's CPU and disk
        temperature; this pairs the reads on the cheapest possible
        path.  Unlike the query face it takes no lock: the recorder
        runs on the thread that steps the solver, so no concurrent
        step can tear the pair (other threads only read).
        """
        pair = self._pair_cache.get(machine)
        if pair is None or pair[0] != first or pair[1] != second:
            values = (
                self.true_temperature(machine, first),
                self.true_temperature(machine, second),
            )
            entry_a = self._true_cache.get((machine, first))
            entry_b = self._true_cache.get((machine, second))
            if entry_a is not None and entry_b is not None:
                self._pair_cache[machine] = (first, second, entry_a, entry_b)
            return values
        entry_a = pair[2]
        entry_b = pair[3]
        return entry_a[0][entry_a[1]], entry_b[0][entry_b[1]]

    def apply_utilizations(self, machine: str, utilizations: Mapping[str, float]) -> None:
        """Apply a monitord update to the solver."""
        with self._lock:
            self._solver.set_utilizations(machine, dict(utilizations))
            self.updates_applied += 1
            self._tel_updates.inc()

    def step(self, ticks: int = 1) -> None:
        """Advance the solver under the service lock."""
        with self._lock:
            self._solver.step(ticks)

    # -- datagram face ----------------------------------------------------

    def handle_query(self, data: bytes) -> bytes:
        """Decode a query datagram and encode the reply."""
        try:
            query = protocol.SensorQuery.decode(data)
        except SensorError:
            self.errors += 1
            self._tel_errors.inc()
            raise
        try:
            temperature = self.read_temperature(query.machine, query.component)
            status = protocol.STATUS_OK
        except UnknownSensorError:
            self.errors += 1
            self._tel_errors.inc()
            temperature = float("nan")
            status = protocol.STATUS_UNKNOWN_SENSOR
        return protocol.SensorReply(
            request_id=query.request_id, status=status, temperature=temperature
        ).encode()

    def handle_update(self, data: bytes) -> None:
        """Decode and apply a monitord update datagram."""
        update = protocol.UtilizationUpdate.decode(data)
        self.apply_utilizations(update.machine, update.utilizations)


class _UdpHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        data, sock = self.request
        service: SensorService = self.server.service  # type: ignore[attr-defined]
        try:
            if len(data) == protocol.QUERY_SIZE:
                reply = service.handle_query(data)
                sock.sendto(reply, self.client_address)
            elif len(data) == protocol.UPDATE_SIZE:
                service.handle_update(data)
            # anything else: drop silently, like a real UDP service
        except SensorError:
            pass


class UdpSensorServer:
    """A localhost UDP endpoint serving sensor queries and updates.

    Runs a ``ThreadingUDPServer`` on a background thread.  Use as a
    context manager, or call :meth:`start`/:meth:`stop`.
    """

    def __init__(self, service: SensorService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self._server = socketserver.ThreadingUDPServer((host, port), _UdpHandler)
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) the server is bound to."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ephemeral ``port=0``)."""
        return self.address[1]

    def start(self) -> "UdpSensorServer":
        """Start serving on a daemon thread."""
        if self._closed:
            raise SensorError("server already stopped")
        if self._thread is not None:
            raise SensorError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": SERVER_POLL_INTERVAL},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down, join its thread, and release the socket.

        Idempotent and exception-safe: extra calls are no-ops, the
        socket is always closed even if the shutdown handshake raises,
        and a server that was never started still releases the socket
        it bound in ``__init__`` (so pool workers cannot leak it).
        """
        if self._closed:
            return
        self._closed = True
        thread, self._thread = self._thread, None
        try:
            if thread is not None:
                self._server.shutdown()
                thread.join(timeout=DAEMON_JOIN_TIMEOUT)
        finally:
            self._server.server_close()

    def __enter__(self) -> "UdpSensorServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
