"""Simulated physical temperature sensors.

The paper complains that "hardware sensors with low resolution and poor
precision make matters worse" and later quantifies its own instruments:
digital thermometers accurate to 1.5 Celsius, in-disk sensors to
3 Celsius, and a 500 microsecond average access time for the SCSI disk's
internal sensor.  This module models exactly those imperfections so the
validation experiments compare Mercury against realistically imperfect
"measurements":

* a fixed per-sensor **calibration bias** drawn once at construction
  (within the accuracy band);
* zero-mean Gaussian **read noise**;
* **quantization** to the sensor's resolution;
* an advertised **access latency** that integration tests and the
  latency benchmark can compare against Mercury's readsensor().
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class PhysicalSensor:
    """One imperfect temperature sensor attached to a true-value source.

    ``fault_hook`` is an optional transform applied to the finished
    reading — the attachment point for :mod:`repro.faults` (stuck-at,
    dropout, spikes) on the physical-sensor path.  It receives the
    quantized reading and returns the value actually reported; it may
    raise :class:`~repro.errors.SensorError` to model a dead sensor.
    """

    def __init__(
        self,
        source: Callable[[], float],
        resolution: float = 0.5,
        accuracy: float = 1.5,
        noise_std: float = 0.15,
        latency: float = 500e-6,
        seed: int = 0,
        fault_hook: Optional[Callable[[float], float]] = None,
    ) -> None:
        if resolution <= 0.0:
            raise ValueError("resolution must be positive")
        if accuracy < 0.0 or noise_std < 0.0 or latency < 0.0:
            raise ValueError("accuracy, noise and latency must be non-negative")
        self._source = source
        self.resolution = resolution
        self.accuracy = accuracy
        self.noise_std = noise_std
        self.latency = latency
        rng = random.Random(seed)
        # Bias is fixed for the sensor's lifetime; the accuracy spec bounds
        # it.  Using a third of the band keeps ~99.7% of sensors in spec.
        self._bias = rng.gauss(0.0, accuracy / 3.0) if accuracy > 0.0 else 0.0
        self._bias = max(-accuracy, min(accuracy, self._bias))
        self._rng = rng
        self.fault_hook = fault_hook

    @property
    def bias(self) -> float:
        """The sensor's fixed calibration offset (Celsius)."""
        return self._bias

    def set_fault_hook(
        self, hook: Optional[Callable[[float], float]]
    ) -> None:
        """Install (or clear, with None) the fault-injection transform."""
        self.fault_hook = hook

    def read(self) -> float:
        """One reading: true value + bias + noise, quantized to resolution.

        Any installed fault hook transforms (or rejects) the reading
        after quantization, exactly where a broken transducer would.
        """
        value = self._source() + self._bias + self._rng.gauss(0.0, self.noise_std)
        value = round(value / self.resolution) * self.resolution
        if self.fault_hook is not None:
            value = self.fault_hook(value)
        return value


@dataclass(frozen=True)
class SensorSpec:
    """Factory parameters for a class of sensor."""

    resolution: float
    accuracy: float
    noise_std: float
    latency: float

    def attach(self, source: Callable[[], float], seed: int = 0) -> PhysicalSensor:
        """Build a sensor of this class reading from ``source``."""
        return PhysicalSensor(
            source,
            resolution=self.resolution,
            accuracy=self.accuracy,
            noise_std=self.noise_std,
            latency=self.latency,
            seed=seed,
        )


#: The external digital thermometer placed on top of the CPU heat sink
#: (paper: accuracy 1.5 Celsius).
DIGITAL_THERMOMETER = SensorSpec(
    resolution=0.1, accuracy=1.5, noise_std=0.12, latency=200e-6
)

#: The SCSI disk's internal sensor (paper: accuracy 3 Celsius, ~500 us
#: average access time, coarse resolution).
IN_DISK_SENSOR = SensorSpec(
    resolution=1.0, accuracy=3.0, noise_std=0.25, latency=500e-6
)

#: A generic motherboard thermal sensor.
MOTHERBOARD_SENSOR = SensorSpec(
    resolution=0.5, accuracy=2.0, noise_std=0.2, latency=300e-6
)
