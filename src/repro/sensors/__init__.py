"""Sensor hardware models, wire protocol, service, and client library."""

from .api import SensorConnection, closesensor, opensensor, readsensor
from .hardware import (
    DIGITAL_THERMOMETER,
    IN_DISK_SENSOR,
    MOTHERBOARD_SENSOR,
    PhysicalSensor,
    SensorSpec,
)
from .server import SensorService, UdpSensorServer

__all__ = [
    "DIGITAL_THERMOMETER", "IN_DISK_SENSOR", "MOTHERBOARD_SENSOR",
    "PhysicalSensor", "SensorConnection", "SensorService", "SensorSpec",
    "UdpSensorServer", "closesensor", "opensensor", "readsensor",
]
