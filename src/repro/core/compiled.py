"""Compiled NumPy engine for the Mercury solver.

The reference engine in :mod:`repro.core.solver` walks Python dicts node
by node, which is easy to audit against the paper's equations but costs
a full interpreter round-trip per node per tick.  This module "compiles"
a :class:`~repro.core.graph.MachineLayout` into flat arrays once, then
runs the three traversals of section 2.2 as vectorized array operations,
batching every machine that shares a layout structure into one array op.

The lowering happens in two stages:

* :class:`MachinePlan` (built by :func:`compile_layout`) captures the
  *static* structure of a layout: node index maps, the topological
  air-flow order, the per-region mixing and stream-exchange schedules,
  the heat-edge classification (component-component / air-air), the
  flow-propagation schedule, and per-component power-evaluation specs.
  Machines with identical structure (same nodes, edges, thermal masses,
  and power tables) share one plan and are batched along the machine
  axis.
* :class:`CompiledEngine` owns the *live* per-machine arrays — node
  temperatures, heat-edge ``k`` values, air fractions, fan flows, power
  scale factors, utilizations — and keeps them in sync with each
  machine's :class:`~repro.core.state.MachineState` through the state's
  mutation listener.  Fiddle edits that change derived quantities (air
  fractions, fan speed) only mark the flow arrays dirty; they are
  recompiled lazily at the next tick.

Every arithmetic step mirrors the reference engine's expression order, so
the two engines agree within 1e-9 °C per tick (see ``tests/golden`` and
``tests/core/test_compiled_equivalence.py``).  After each tick the node
temperatures are written back into the per-machine state dicts, so sensor
reads, History recording, and the fiddle tool see exactly the same
surface as with the reference engine.

NumPy is optional at import time: constructing a solver with
``engine="compiled"`` raises :class:`~repro.errors.SolverError` when it
is unavailable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # gate the dependency: the package must import without NumPy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on minimal installs
    np = None

from .. import units
from ..errors import SolverError
from .graph import ClusterLayout, MachineLayout
from .power import ConstantPowerModel, LinearPowerModel, PowerModel, TablePowerModel
from .solver import DEFAULT_DT, Solver
from .state import MachineState


def have_numpy() -> bool:
    """True when the compiled engine can actually run."""
    return np is not None


def _power_signature(model: PowerModel) -> Tuple:
    """Hashable identity of a power model, for plan sharing.

    Affine models (the paper's linear and constant models) are described
    by value; table models by their breakpoints; anything else by object
    identity, which still allows batching machines built from one layout
    template.
    """
    if isinstance(model, LinearPowerModel):
        return ("affine", model.p_base, model.p_max)
    if isinstance(model, ConstantPowerModel):
        return ("affine", model.watts, model.watts)
    if isinstance(model, TablePowerModel):
        return ("table", tuple(model._utils), tuple(model._powers))
    return ("opaque", id(model))


def layout_signature(layout: MachineLayout) -> Tuple:
    """Structural signature deciding which machines share one plan."""
    return (
        tuple(
            (c.name, c.mass, c.specific_heat, _power_signature(c.power_model))
            for c in layout.components.values()
        ),
        tuple(layout.air_regions),
        tuple(e.key for e in layout.heat_edges),
        tuple((e.src, e.dst) for e in layout.air_edges),
        layout.inlet,
        layout.exhaust,
        tuple(layout.air_order),
    )


class MachinePlan:
    """The compiled (static) form of one machine layout.

    All schedules preserve the reference engine's iteration order —
    ``layout.air_edges`` order for mixing and flow propagation,
    ``layout.heat_edges`` order for exchanges and conduction — so the
    floating-point accumulation order matches the dict-loop engine.
    """

    def __init__(self, layout: MachineLayout) -> None:
        if np is None:
            raise SolverError(
                "the compiled engine requires NumPy; use engine='python'"
            )
        self.signature = layout_signature(layout)
        self.comp_names: Tuple[str, ...] = tuple(layout.components)
        self.air_names: Tuple[str, ...] = tuple(layout.air_regions)
        #: Node order of the temperature array: components, then air.
        self.node_names: Tuple[str, ...] = self.comp_names + self.air_names
        self.n_comps = len(self.comp_names)
        self.n_air = len(self.air_names)
        self.comp_index = {name: i for i, name in enumerate(self.comp_names)}
        air_index = {name: i for i, name in enumerate(self.air_names)}
        self.air_index = air_index
        self.node_index = {name: i for i, name in enumerate(self.node_names)}
        self.heat_keys = tuple(edge.key for edge in layout.heat_edges)
        self.heat_key_index = {key: i for i, key in enumerate(self.heat_keys)}
        self.air_edge_index = {
            (edge.src, edge.dst): i for i, edge in enumerate(layout.air_edges)
        }
        self.inlet_air = air_index[layout.inlet]
        self.exhaust_air = air_index[layout.exhaust]
        #: Air regions (air-local indices) in topological flow order.
        self.air_order: Tuple[int, ...] = tuple(
            air_index[name] for name in layout.air_order
        )

        #: Per-region perfect-mixing terms: (src air idx, air-edge idx).
        self.incoming: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        for name in layout.air_regions:
            terms = tuple(
                (air_index[edge.src], self.air_edge_index[(edge.src, edge.dst)])
                for edge in layout.air_edges
                if edge.dst == name
            )
            if terms:
                self.incoming[air_index[name]] = terms

        #: Flow propagation schedule: (src air, dst air, air-edge idx) in
        #: the exact nested order of ``MachineLayout.air_flow_rates``.
        edges_from: Dict[str, List] = {}
        for edge in layout.air_edges:
            edges_from.setdefault(edge.src, []).append(edge)
        self.flow_steps: Tuple[Tuple[int, int, int], ...] = tuple(
            (
                air_index[edge.src],
                air_index[edge.dst],
                self.air_edge_index[(edge.src, edge.dst)],
            )
            for region in layout.air_order
            for edge in edges_from.get(region, ())
        )

        #: Per-region stream-exchange schedule: (comp idx, heat-edge idx).
        air_heat: Dict[int, List[Tuple[int, int]]] = {}
        comp_comp: List[Tuple[int, int, int, float]] = []
        air_air: List[Tuple[int, int, int]] = []
        for edge_i, edge in enumerate(layout.heat_edges):
            a_is_comp = edge.a in layout.components
            b_is_comp = edge.b in layout.components
            if a_is_comp and b_is_comp:
                mc_a = layout.components[edge.a].heat_capacity
                mc_b = layout.components[edge.b].heat_capacity
                c_eff = 1.0 / (1.0 / mc_a + 1.0 / mc_b)
                comp_comp.append(
                    (self.comp_index[edge.a], self.comp_index[edge.b], edge_i, c_eff)
                )
            elif not a_is_comp and not b_is_comp:
                air_air.append((air_index[edge.a], air_index[edge.b], edge_i))
            else:
                for region, other in ((edge.a, edge.b), (edge.b, edge.a)):
                    if region in layout.air_regions and other in layout.components:
                        air_heat.setdefault(air_index[region], []).append(
                            (self.comp_index[other], edge_i)
                        )
        self.air_heat: Dict[int, Tuple[Tuple[int, int], ...]] = {
            region: tuple(pairs) for region, pairs in air_heat.items()
        }
        self.comp_comp: Tuple[Tuple[int, int, int, float], ...] = tuple(comp_comp)
        self.air_air: Tuple[Tuple[int, int, int], ...] = tuple(air_air)

        #: Per-component power evaluation: ("affine", base, span) computes
        #: the paper's Eq. 4 vectorized; ("model", inner) falls back to
        #: scalar calls for table/opaque models, preserving exactness.
        specs: List[Tuple] = []
        for component in layout.components.values():
            model = component.power_model
            if isinstance(model, LinearPowerModel):
                specs.append(("affine", model.p_base, model.p_max - model.p_base))
            elif isinstance(model, ConstantPowerModel):
                specs.append(("affine", model.watts, 0.0))
            else:
                specs.append(("model", model))
        self.power_specs: Tuple[Tuple, ...] = tuple(specs)

        #: Heat capacity m*c (J/K) per component, divisor of Eq. 5.
        self.mc = np.array(
            [c.heat_capacity for c in layout.components.values()], dtype=float
        )

    def __repr__(self) -> str:
        return (
            f"MachinePlan({self.n_comps} components, {self.n_air} air regions, "
            f"{len(self.heat_keys)} heat edges)"
        )


_PLAN_CACHE: Dict[Tuple, MachinePlan] = {}
_PLAN_CACHE_LIMIT = 256


def compile_layout(layout: MachineLayout) -> MachinePlan:
    """Lower a layout to its :class:`MachinePlan` (cached by structure).

    Plans whose signature names a power model by identity ("opaque") are
    never cached: a recycled ``id()`` could otherwise alias two different
    models under one signature.
    """
    signature = layout_signature(layout)
    if any(comp[3][0] == "opaque" for comp in signature[0]):
        return MachinePlan(layout)
    plan = _PLAN_CACHE.get(signature)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.clear()
        plan = MachinePlan(layout)
        _PLAN_CACHE[signature] = plan
    return plan


class _Group:
    """All machines sharing one plan, batched along axis 0."""

    def __init__(self, plan: MachinePlan, members: Sequence[Tuple[str, MachineState]]):
        self.plan = plan
        self.names: List[str] = [name for name, _ in members]
        self.states: List[MachineState] = [state for _, state in members]
        m = len(self.states)
        self.T = np.array(
            [[s.temperatures[n] for n in plan.node_names] for s in self.states],
            dtype=float,
        )
        self.k = np.array(
            [[s.k[key] for key in plan.heat_keys] for s in self.states], dtype=float
        )
        self.fractions = np.array(
            [
                [s.fractions[pair] for pair in plan.air_edge_index]
                for s in self.states
            ],
            dtype=float,
        )
        self.fan = np.array([s.fan_cfm for s in self.states], dtype=float)
        self.factor = np.array(
            [
                [s.power_models[c].factor for c in plan.comp_names]
                for s in self.states
            ],
            dtype=float,
        )
        self.util = np.array(
            [[s.utilizations[c] for c in plan.comp_names] for s in self.states],
            dtype=float,
        )
        self.flows = np.zeros((m, plan.n_air))
        self.cap = np.zeros((m, plan.n_air))
        #: Per air region: True when every machine has positive flow
        #: there, enabling the unmasked fast path.
        self.all_flowing = np.zeros(plan.n_air, dtype=bool)
        self.flows_dirty = True

    @classmethod
    def from_template(
        cls, plan: MachinePlan, template: MachineState, count: int
    ) -> "_Group":
        """Tile one template state into a ``count``-row group.

        The flattened datacenter solver (:mod:`repro.topology.sim`)
        builds its machines×nodes arrays this way: every row starts as a
        bitwise copy of the template's values, and no per-row
        :class:`~repro.core.state.MachineState` objects (or their dict
        write-backs) exist at all.  ``names``/``states`` are left empty
        on purpose — callers that tile own the row bookkeeping.
        """
        if count <= 0:
            raise SolverError("from_template needs a positive row count")
        g = cls(plan, [(template.layout.name, template)])
        g.names = []
        g.states = []
        g.T = np.repeat(g.T, count, axis=0)
        g.k = np.repeat(g.k, count, axis=0)
        g.fractions = np.repeat(g.fractions, count, axis=0)
        g.fan = np.repeat(g.fan, count)
        g.factor = np.repeat(g.factor, count, axis=0)
        g.util = np.repeat(g.util, count, axis=0)
        g.flows = np.zeros((count, plan.n_air))
        g.cap = np.zeros((count, plan.n_air))
        g.all_flowing = np.zeros(plan.n_air, dtype=bool)
        g.flows_dirty = True
        return g

    def rebuild_flows(self) -> None:
        """Recompile per-region flows and heat-capacity rates.

        Mirrors ``MachineLayout.air_flow_rates`` followed by
        ``units.air_heat_capacity_rate`` term for term.
        """
        plan = self.plan
        self.flows[:] = 0.0
        self.flows[:, plan.inlet_air] = units.cfm_to_m3s(self.fan)
        for src_air, dst_air, edge_i in plan.flow_steps:
            self.flows[:, dst_air] += self.flows[:, src_air] * self.fractions[:, edge_i]
        self.cap = (units.AIR_DENSITY * self.flows) * units.AIR_SPECIFIC_HEAT
        self.all_flowing = (self.cap > 0.0).all(axis=0)
        self.flows_dirty = False


def tick_group(g: _Group, inlet, dt: float) -> None:
    """Advance one batched group a single step of ``dt`` seconds.

    ``inlet`` is the per-row inlet temperature array.  The caller is
    responsible for rebuilding stale flow arrays first (see
    :meth:`_Group.rebuild_flows`); this function is pure array math.

    Every operation is elementwise along axis 0, so each row's result is
    a pure function of that row's values — stacking more rows (more
    machines, or more *runs* in the sweep batch engine) cannot perturb
    any existing row bitwise.  The only cross-row reads are the
    ``all_flowing`` / ``den.all()`` reductions, which merely select
    between two bit-equivalent code paths for the rows that flow.
    """
    plan = g.plan
    T = g.T
    n_comps = plan.n_comps
    start = T[:, :n_comps].copy()
    heat = np.zeros_like(start)
    flows = g.flows
    cap = g.cap

    # --- intra-machine air traversal (advection + stream exchange) ---
    for air_i in plan.air_order:
        col = n_comps + air_i
        if air_i == plan.inlet_air:
            t_air = inlet
        else:
            terms = plan.incoming.get(air_i)
            if not terms:
                t_air = T[:, col].copy()  # stagnant pocket
            else:
                num = None
                den = None
                for src_air, edge_i in terms:
                    w = flows[:, src_air] * g.fractions[:, edge_i]
                    contrib = T[:, n_comps + src_air] * w
                    num = contrib if num is None else num + contrib
                    den = w if den is None else den + w
                if den.all():
                    t_air = num / den
                else:
                    mixed = den > 0.0
                    t_air = np.where(
                        mixed, num / np.where(mixed, den, 1.0), T[:, col]
                    )
        attached = plan.air_heat.get(air_i)
        if attached:
            cr = cap[:, air_i]
            if g.all_flowing[air_i]:
                # Fast path: every machine flows here, no masking.
                cr_dt = cr * dt
                for comp_i, edge_i in attached:
                    body = start[:, comp_i]
                    t_out = body + (t_air - body) * np.exp(
                        -(g.k[:, edge_i] / cr)
                    )
                    heat[:, comp_i] -= cr_dt * (t_out - t_air)
                    t_air = t_out
            else:
                flowing = cr > 0.0
                cr_safe = np.where(flowing, cr, 1.0)
                for comp_i, edge_i in attached:
                    body = start[:, comp_i]
                    t_out = body + (t_air - body) * np.exp(
                        -(g.k[:, edge_i] / cr_safe)
                    )
                    q = cr * dt * (t_out - t_air)
                    t_air = np.where(flowing, t_out, t_air)
                    heat[:, comp_i] -= np.where(flowing, q, 0.0)
        T[:, col] = t_air

    # --- inter-component heat flow + air-air conduction ---
    for a_i, b_i, edge_i, c_eff in plan.comp_comp:
        q = (
            c_eff
            * (start[:, a_i] - start[:, b_i])
            * -np.expm1(-g.k[:, edge_i] * dt / c_eff)
        )
        heat[:, a_i] -= q
        heat[:, b_i] += q
    for a_air, b_air, edge_i in plan.air_air:
        mc_a = np.maximum(cap[:, a_air] * dt, 1e-9)
        mc_b = np.maximum(cap[:, b_air] * dt, 1e-9)
        c_eff = 1.0 / (1.0 / mc_a + 1.0 / mc_b)
        q = (
            c_eff
            * (T[:, n_comps + a_air] - T[:, n_comps + b_air])
            * -np.expm1(-g.k[:, edge_i] * dt / c_eff)
        )
        T[:, n_comps + a_air] -= q / mc_a
        T[:, n_comps + b_air] += q / mc_b

    # --- component self-heating and temperature update ---
    for comp_i, spec in enumerate(plan.power_specs):
        if spec[0] == "affine":
            power = spec[1] + g.util[:, comp_i] * spec[2]
        else:
            model = spec[1]
            power = np.array(
                [model.power(u) for u in g.util[:, comp_i].tolist()]
            )
        heat[:, comp_i] += power * g.factor[:, comp_i] * dt
    T[:, :n_comps] = start + heat / plan.mc


class CompiledEngine:
    """Vectorized tick engine driving a :class:`~repro.core.solver.Solver`.

    Owns one :class:`_Group` per distinct layout structure and registers
    itself as each machine state's mutation listener, so fiddle edits and
    utilization updates land directly in the arrays (and invalidate the
    derived flow arrays when needed) without per-tick polling.
    """

    #: The solver computes per-machine inlet temperatures and passes them
    #: to :meth:`tick`; an engine that derives inlets itself (the sweep
    #: batch engine) overrides this.
    provides_inlets = False
    #: Whether the solver should time this engine's ticks into the
    #: ``solver_tick_seconds`` histogram (a host metric excluded from
    #: sweep artifacts; batch members skip the measurement entirely).
    measure_host_latency = True

    def __init__(self, solver: Solver) -> None:
        if np is None:
            raise SolverError(
                "engine='compiled' requires NumPy; use engine='python'"
            )
        self._solver = solver
        by_signature: Dict[Tuple, List[Tuple[str, MachineState]]] = {}
        plans: Dict[Tuple, MachinePlan] = {}
        for name, state in solver.machines.items():
            plan = compile_layout(state.layout)
            by_signature.setdefault(plan.signature, []).append((name, state))
            plans[plan.signature] = plan
        self.groups: List[_Group] = [
            _Group(plans[sig], members) for sig, members in by_signature.items()
        ]
        for group in self.groups:
            for row, state in enumerate(group.states):
                state.listener = self._listener(group, row)

    # -- state synchronisation ------------------------------------------

    def _listener(self, group: _Group, row: int):
        plan = group.plan

        def on_change(field: str, key, value: float) -> None:
            if field == "temperature":
                group.T[row, plan.node_index[key]] = value
            elif field == "utilization":
                group.util[row, plan.comp_index[key]] = value
            elif field == "k":
                group.k[row, plan.heat_key_index[key]] = value
            elif field == "fraction":
                group.fractions[row, plan.air_edge_index[key]] = value
                group.flows_dirty = True
            elif field == "fan":
                group.fan[row] = value
                group.flows_dirty = True
            elif field == "power_scale":
                group.factor[row, plan.comp_index[key]] = value

        return on_change

    # -- stepping --------------------------------------------------------

    def tick(self, inlet_temps: Mapping[str, float]) -> None:
        """Advance every machine one step and write temperatures back."""
        for group in self.groups:
            inlet = np.array([inlet_temps[name] for name in group.names])
            self._tick_group(group, inlet)
            for row, state in enumerate(group.states):
                state.temperatures.update(
                    zip(group.plan.node_names, group.T[row].tolist())
                )

    def _tick_group(self, g: _Group, inlet) -> None:
        solver = self._solver
        if g.flows_dirty:
            g.rebuild_flows()
            if solver.telemetry.enabled:
                solver._tel_recompiles.inc()
                solver.telemetry.event(
                    "engine_recompile",
                    "solver",
                    machines=len(g.names),
                    reason="flows_dirty",
                )
        tick_group(g, inlet, solver.dt)


class CompiledSolver(Solver):
    """A :class:`~repro.core.solver.Solver` preset to the compiled engine."""

    def __init__(
        self,
        layouts: Sequence[MachineLayout],
        cluster: Optional[ClusterLayout] = None,
        dt: float = DEFAULT_DT,
        initial_temperature: Optional[float] = None,
        record: bool = True,
        telemetry=None,
    ) -> None:
        super().__init__(
            layouts,
            cluster=cluster,
            dt=dt,
            initial_temperature=initial_temperature,
            record=record,
            engine="compiled",
            telemetry=telemetry,
        )
