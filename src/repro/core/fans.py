"""Variable-speed fan modeling (paper section 7, future work).

"We are currently extending our models to consider clock throttling and
variable-speed fans.  Modeling throttling and variable-speed fans is
actually fairly simple, since these behaviors are well-defined and
essentially depend on temperature, which Mercury emulates accurately ...
these behaviors can be incorporated either internally (by modifying the
Mercury code) or externally (via fiddle)."

This module takes the *external* route the paper recommends: a
:class:`FanController` periodically reads a temperature from the solver
(exactly as firmware reads its thermal diode), maps it through a
:class:`FanCurve`, and applies the new fan speed through the same
mutation path fiddle uses.  Changing the fan speed re-scales every air
region's flow, which feeds back into the stream-exchange physics on the
next tick — faster fan, more cooling, lower temperature, slower fan.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import SolverError
from .solver import Solver


class FanCurve:
    """A monotone temperature -> fan-speed (ft^3/min) map.

    Real fan firmware interpolates between table points and clamps at the
    ends; so does this.  Points must be strictly increasing in both
    temperature and speed (a non-monotone curve would make the
    temperature/fan feedback loop multistable).
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("a fan curve needs at least two points")
        pts = sorted((float(t), float(s)) for t, s in points)
        for (t_a, s_a), (t_b, s_b) in zip(pts, pts[1:]):
            if t_b <= t_a:
                raise ValueError("fan-curve temperatures must be increasing")
            if s_b < s_a:
                raise ValueError("fan-curve speeds must be non-decreasing")
        if pts[0][1] <= 0.0:
            raise ValueError("fan speeds must be positive")
        self._temps = [t for t, _ in pts]
        self._speeds = [s for _, s in pts]

    def speed(self, temperature: float) -> float:
        """Fan speed (ft^3/min) commanded at the given temperature."""
        if temperature <= self._temps[0]:
            return self._speeds[0]
        if temperature >= self._temps[-1]:
            return self._speeds[-1]
        idx = bisect.bisect_right(self._temps, temperature)
        t_a, t_b = self._temps[idx - 1], self._temps[idx]
        s_a, s_b = self._speeds[idx - 1], self._speeds[idx]
        frac = (temperature - t_a) / (t_b - t_a)
        return s_a + frac * (s_b - s_a)

    @property
    def min_speed(self) -> float:
        """Speed at the bottom of the curve."""
        return self._speeds[0]

    @property
    def max_speed(self) -> float:
        """Speed at the top of the curve."""
        return self._speeds[-1]


#: A typical server fan curve around the Table 1 operating range: idles
#: at 60% of the nominal 38.6 cfm and ramps to 130% by 65 C.
DEFAULT_SERVER_CURVE = FanCurve(
    [(30.0, 23.0), (45.0, 38.6), (55.0, 44.0), (65.0, 50.0)]
)


@dataclass
class FanEvent:
    """One recorded fan-speed change."""

    time: float
    temperature: float
    cfm: float


class FanController:
    """Firmware-style closed-loop fan control over a solver machine.

    Reads ``sensor_node`` every ``period`` seconds of simulated time and
    applies the curve's speed with optional slew limiting (real fans ramp,
    they do not jump).  Drive it with :meth:`tick` from the simulation
    loop, interleaved with ``solver.step()``.
    """

    def __init__(
        self,
        solver: Solver,
        machine: str,
        sensor_node: str,
        curve: FanCurve = DEFAULT_SERVER_CURVE,
        period: float = 5.0,
        max_slew_cfm_per_s: float = 2.0,
    ) -> None:
        if period <= 0.0:
            raise SolverError("fan control period must be positive")
        self._solver = solver
        self.machine = machine
        self.sensor_node = sensor_node
        self.curve = curve
        self.period = period
        self.max_slew = max_slew_cfm_per_s
        self._elapsed = 0.0
        self.events: List[FanEvent] = []

    @property
    def current_cfm(self) -> float:
        """The fan speed currently applied to the machine."""
        return self._solver.machine(self.machine).fan_cfm

    def tick(self, dt: float) -> bool:
        """Advance the controller clock; adjust the fan when due.

        Returns True when a speed change was applied.
        """
        self._elapsed += dt
        if self._elapsed + 1e-9 < self.period:
            return False
        self._elapsed = 0.0
        return self.adjust()

    def adjust(self) -> bool:
        """One control step: read temperature, slew toward the curve."""
        temperature = self._solver.temperature(self.machine, self.sensor_node)
        target = self.curve.speed(temperature)
        current = self.current_cfm
        limit = self.max_slew * self.period
        new = min(max(target, current - limit), current + limit)
        if abs(new - current) < 1e-9:
            return False
        self._solver.machine(self.machine).set_fan_cfm(new)
        self.events.append(
            FanEvent(time=self._solver.time, temperature=temperature, cfm=new)
        )
        return True
