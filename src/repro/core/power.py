"""Component power models (paper equations 3-4 and section 2.3).

The heat a component produces equals the energy it consumes
(``Q_component = P(utilization) * time``, Eq. 3).  Mercury's default power
model is linear in utilization (Eq. 4); the paper notes this approximated
every component it studied, but explicitly allows swapping in "a more
sophisticated" formulation — notably the Pentium-4 performance-counter
model, where estimated energy is mapped back onto the ``[Pbase, Pmax]``
utilization range so the solver never changes.

All models implement :class:`PowerModel`: a single ``power(utilization)``
method returning average Watts over an interval.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple


class PowerModel(ABC):
    """Maps a component utilization in [0, 1] to average power in Watts."""

    @abstractmethod
    def power(self, utilization: float) -> float:
        """Average power (W) drawn at the given utilization."""

    @property
    @abstractmethod
    def idle_power(self) -> float:
        """Power (W) drawn when the component is idle (``Pbase``)."""

    @property
    @abstractmethod
    def max_power(self) -> float:
        """Power (W) drawn when the component is fully utilized (``Pmax``)."""

    def heat(self, utilization: float, dt: float) -> float:
        """Heat (J) produced over ``dt`` seconds at the given utilization (Eq. 3)."""
        return self.power(utilization) * dt

    def utilization_for_power(self, power: float) -> float:
        """Inverse map: the "low-level utilization" that yields ``power``.

        This is the translation monitord performs for the performance-
        counter mode: an estimated average power is linearly mapped into
        ``[0% = Pbase, 100% = Pmax]`` (clamped), so the solver can keep
        using its linear model unchanged.
        """
        span = self.max_power - self.idle_power
        if span <= 0.0:
            return 0.0
        return _clamp((power - self.idle_power) / span)


def _clamp(value: float, low: float = 0.0, high: float = 1.0) -> float:
    return max(low, min(high, value))


def _check_utilization(utilization: float) -> float:
    if not -1e-9 <= utilization <= 1.0 + 1e-9:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    return _clamp(utilization)


@dataclass(frozen=True)
class LinearPowerModel(PowerModel):
    """The paper's default model (Eq. 4).

    ``P(u) = Pbase + u * (Pmax - Pbase)``.
    """

    p_base: float
    p_max: float

    def __post_init__(self) -> None:
        if self.p_base < 0.0:
            raise ValueError("idle power must be non-negative")
        if self.p_max < self.p_base:
            raise ValueError("max power must be >= idle power")

    def power(self, utilization: float) -> float:
        utilization = _check_utilization(utilization)
        return self.p_base + utilization * (self.p_max - self.p_base)

    @property
    def idle_power(self) -> float:
        return self.p_base

    @property
    def max_power(self) -> float:
        return self.p_max


@dataclass(frozen=True)
class ConstantPowerModel(PowerModel):
    """A component whose draw does not vary with utilization.

    Table 1 models the power supply (40 W) and bare motherboard (4 W)
    this way: min power equals max power.
    """

    watts: float

    def __post_init__(self) -> None:
        if self.watts < 0.0:
            raise ValueError("power must be non-negative")

    def power(self, utilization: float) -> float:
        _check_utilization(utilization)
        return self.watts

    @property
    def idle_power(self) -> float:
        return self.watts

    @property
    def max_power(self) -> float:
        return self.watts


class TablePowerModel(PowerModel):
    """Piecewise-linear interpolation through measured (utilization, W) points.

    Useful for components whose draw is not linear in high-level
    utilization; the paper mentions such components motivate alternate
    formulations.  Points are interpolated linearly and must cover
    utilization 0 and 1.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two (utilization, power) points")
        pts = sorted((float(u), float(p)) for u, p in points)
        if abs(pts[0][0]) > 1e-9 or abs(pts[-1][0] - 1.0) > 1e-9:
            raise ValueError("points must span utilization 0.0 .. 1.0")
        for (u_a, _), (u_b, _) in zip(pts, pts[1:]):
            if u_b - u_a <= 0.0:
                raise ValueError("utilization points must be strictly increasing")
        self._utils = [u for u, _ in pts]
        self._powers = [p for _, p in pts]

    def power(self, utilization: float) -> float:
        utilization = _check_utilization(utilization)
        idx = bisect.bisect_right(self._utils, utilization)
        if idx >= len(self._utils):
            return self._powers[-1]
        if idx == 0:
            return self._powers[0]
        u_a, u_b = self._utils[idx - 1], self._utils[idx]
        p_a, p_b = self._powers[idx - 1], self._powers[idx]
        frac = (utilization - u_a) / (u_b - u_a)
        return p_a + frac * (p_b - p_a)

    @property
    def idle_power(self) -> float:
        return self._powers[0]

    @property
    def max_power(self) -> float:
        return max(self._powers)


class ScaledPowerModel(PowerModel):
    """Wraps another model, scaling its output by a runtime factor.

    This is the hook the fiddle tool uses to emulate CPU-driven thermal
    management (voltage/frequency scaling or clock throttling, section 7):
    scaling voltage/frequency changes the power drawn at a given
    utilization without changing the utilization itself.
    """

    def __init__(self, inner: PowerModel, factor: float = 1.0) -> None:
        self._inner = inner
        self.factor = factor

    @property
    def factor(self) -> float:
        """Current multiplicative power factor (1.0 = unscaled)."""
        return self._factor

    @factor.setter
    def factor(self, value: float) -> None:
        if value < 0.0:
            raise ValueError("power scale factor must be non-negative")
        self._factor = value

    @property
    def inner(self) -> PowerModel:
        """The wrapped power model."""
        return self._inner

    def power(self, utilization: float) -> float:
        return self._inner.power(utilization) * self._factor

    @property
    def idle_power(self) -> float:
        return self._inner.idle_power * self._factor

    @property
    def max_power(self) -> float:
        return self._inner.max_power * self._factor
