"""The simplified heat-transfer physics behind Mercury (paper section 2.1).

Mercury deliberately trades fidelity for simplicity: the physical world is
reduced to five equations — conservation of heat, Newton's law of cooling,
a utilization-linear power model, and the heat-capacity relation between
internal energy and temperature.  This module implements those equations
as small, well-tested functions that the solver composes.

Two numerically robust helpers extend the paper's explicit formulation:

* :func:`conduction_heat` clamps the explicitly integrated heat so a
  single step can never push two bodies past their equilibrium
  temperature (which the naive explicit form does when
  ``k * dt > m * c``).
* :func:`stream_exchange` solves Newton's law analytically for a flowing
  air stream passing a hot component (the standard steady-flow
  heat-exchanger "effectiveness" solution).  Air regions in a server have
  tiny thermal mass per solver tick, so the explicit form would be wildly
  unstable there; the analytic form is unconditionally stable and reduces
  to Newton's law for small exchange numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def newton_cooling_heat(k: float, t_hot: float, t_cold: float, dt: float) -> float:
    """Heat (J) transferred in time ``dt`` by Newton's law of cooling (Eq. 2).

    ``Q = k * (T1 - T2) * dt``.  Positive when ``t_hot > t_cold`` (heat
    flows from 1 to 2).  ``k`` (W/K) embodies the heat-transfer
    coefficient and the contact surface area.
    """
    return k * (t_hot - t_cold) * dt


def temperature_delta(heat: float, mass: float, specific_heat: float) -> float:
    """Temperature change (K) of an object absorbing ``heat`` Joules (Eq. 5).

    ``dT = dQ / (m * c)``; valid because Mercury assumes constant pressure
    and volume, making temperature proportional to internal energy.
    """
    if mass <= 0.0 or specific_heat <= 0.0:
        raise ValueError("mass and specific heat must be positive")
    return heat / (mass * specific_heat)


def conduction_heat(
    k: float,
    t_1: float,
    t_2: float,
    dt: float,
    mc_1: float,
    mc_2: float,
) -> float:
    """Heat (J) flowing from body 1 to body 2 over ``dt``, stability-clamped.

    The explicit Euler heat ``k (T1 - T2) dt`` is limited to the exact
    two-body exchange obtained by integrating Newton's law analytically,

    ``Q_exact = C_eff (T1 - T2) (1 - exp(-k dt / C_eff))``

    with ``C_eff = (1/mc1 + 1/mc2)^-1`` the series combination of the two
    heat capacities (J/K).  For the component-to-component edges Mercury
    models, ``k dt << C_eff`` and this is numerically identical to the
    paper's explicit form; the analytic clamp only matters for very small
    bodies or very long time steps, where it prevents the temperatures
    from overshooting past each other.
    """
    if mc_1 <= 0.0 or mc_2 <= 0.0:
        raise ValueError("heat capacities must be positive")
    if k < 0.0:
        raise ValueError("heat-transfer constant k must be non-negative")
    c_eff = 1.0 / (1.0 / mc_1 + 1.0 / mc_2)
    return c_eff * (t_1 - t_2) * -math.expm1(-k * dt / c_eff)


def stream_exchange(
    k: float,
    t_body: float,
    t_stream_in: float,
    capacity_rate: float,
    dt: float,
) -> "StreamExchange":
    """Exchange between a solid body and an air stream flowing past it.

    A stream with heat-capacity rate ``capacity_rate`` (W/K, i.e.
    ``rho * flow * c_p``) enters at ``t_stream_in`` and exchanges heat with
    a body at ``t_body`` through conductance ``k`` (W/K).  Integrating
    Newton's law along the stream gives the classic exponential approach:

    ``T_out = T_body + (T_in - T_body) * exp(-k / capacity_rate)``

    The heat removed from the body over ``dt`` is what the stream carried
    away: ``Q = capacity_rate * dt * (T_out - T_in)``.

    Returns a :class:`StreamExchange` with the outlet temperature and the
    heat (J) *gained by the stream* (equivalently, lost by the body).
    """
    if capacity_rate <= 0.0:
        # No flow: nothing is advected, no exchange happens through the
        # stream.  (A zero-flow air pocket should use conduction instead.)
        return StreamExchange(t_out=t_stream_in, heat_to_stream=0.0)
    if k < 0.0:
        raise ValueError("heat-transfer constant k must be non-negative")
    ntu = k / capacity_rate
    t_out = t_body + (t_stream_in - t_body) * math.exp(-ntu)
    heat = capacity_rate * dt * (t_out - t_stream_in)
    return StreamExchange(t_out=t_out, heat_to_stream=heat)


@dataclass(frozen=True)
class StreamExchange:
    """Result of a body/air-stream heat exchange (see :func:`stream_exchange`)."""

    #: Temperature (Celsius) of the stream after passing the body.
    t_out: float
    #: Heat (J) gained by the stream over the step; the body loses this much.
    heat_to_stream: float


def mix_streams(temperatures: "list[float]", weights: "list[float]") -> float:
    """Perfect-mixing temperature of several converging air streams.

    The paper's air-flow traversal "assumes a perfect mixing of the air"
    and computes "a weighted average of the incoming-edge air temperatures
    and fractions".  ``weights`` are the heat-capacity rates (or any
    proportional quantity, e.g. volumetric flows) of the incoming streams.
    """
    if len(temperatures) != len(weights):
        raise ValueError("temperatures and weights must have the same length")
    total = sum(weights)
    if total <= 0.0:
        raise ValueError("total mixing weight must be positive")
    return sum(t * w for t, w in zip(temperatures, weights)) / total
