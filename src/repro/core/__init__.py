"""Mercury's core: physics, graphs, the solver, traces, and calibration."""

from .fans import DEFAULT_SERVER_CURVE, FanController, FanCurve
from .graph import (
    AirEdge,
    AirRegion,
    ClusterAirEdge,
    ClusterLayout,
    Component,
    CoolingSource,
    HeatEdge,
    MachineLayout,
)
from .power import (
    ConstantPowerModel,
    LinearPowerModel,
    PowerModel,
    ScaledPowerModel,
    TablePowerModel,
)
from .compiled import CompiledSolver, MachinePlan, compile_layout, have_numpy
from .solver import DEFAULT_DT, ENGINES, Solver
from .state import History, MachineState, Sample
from .trace import TimedEvent, UtilizationTrace, run_offline

__all__ = [
    "AirEdge", "AirRegion", "ClusterAirEdge", "ClusterLayout", "CompiledSolver",
    "Component", "ConstantPowerModel", "CoolingSource", "DEFAULT_DT", "ENGINES",
    "HeatEdge", "History", "LinearPowerModel", "MachineLayout", "MachinePlan",
    "MachineState", "PowerModel", "Sample", "ScaledPowerModel", "Solver",
    "TablePowerModel", "TimedEvent", "UtilizationTrace", "compile_layout",
    "have_numpy", "run_offline",
    "DEFAULT_SERVER_CURVE", "FanController", "FanCurve",
]
