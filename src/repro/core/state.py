"""Thermal state vectors and time-series recording for the solver.

The solver keeps one :class:`MachineState` per machine: current node
temperatures plus *mutable copies* of every constant the fiddle tool is
allowed to change at run time (heat-transfer ``k`` values, air fractions,
fan speed, inlet-temperature override, power scale factors, component
utilizations).  The immutable :class:`~repro.core.graph.MachineLayout`
stays pristine, so a solver can always be reset to the as-described model.

:class:`History` accumulates per-tick samples and converts them to column
arrays for plotting, persistence, or comparison against measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import UnknownNodeError
from .graph import MachineLayout
from .power import PowerModel, ScaledPowerModel


class MachineState:
    """Mutable per-machine solver state (temperatures and live constants).

    A solver engine may attach a ``listener`` callable; every mutation made
    through the setter methods is then reported as
    ``listener(field, key, value)`` where ``field`` is one of
    ``"temperature" | "k" | "fraction" | "fan" | "power_scale" |
    "utilization"``.  The compiled engine uses this to keep its flat
    arrays in sync (and to invalidate derived arrays) without polling.
    """

    def __init__(self, layout: MachineLayout, initial_temperature: float) -> None:
        self.layout = layout
        #: Optional mutation observer: ``listener(field, key, value)``.
        self.listener: Optional[Callable[[str, object, float], None]] = None
        #: Current temperature (Celsius) of every component and air region.
        self.temperatures: Dict[str, float] = {
            name: initial_temperature for name in layout.node_names
        }
        #: Live heat-transfer constants, keyed by canonical edge pair.
        self.k: Dict[Tuple[str, str], float] = {
            edge.key: edge.k for edge in layout.heat_edges
        }
        #: Live air fractions, keyed by (src, dst).
        self.fractions: Dict[Tuple[str, str], float] = {
            (edge.src, edge.dst): edge.fraction for edge in layout.air_edges
        }
        self.fan_cfm: float = layout.fan_cfm
        #: When set, replaces the layout/cluster-provided inlet temperature.
        self.inlet_override: Optional[float] = None
        #: Current utilization of each component (monitored ones are fed by
        #: monitord or a trace; the rest stay at 0, which is correct for the
        #: constant-power components of Table 1).
        self.utilizations: Dict[str, float] = {
            name: 0.0 for name in layout.components
        }
        #: Power models wrapped so fiddle can scale them (throttling/DVFS).
        self.power_models: Dict[str, ScaledPowerModel] = {
            name: ScaledPowerModel(component.power_model)
            for name, component in layout.components.items()
        }
        self._flow_cache: Optional[Dict[str, float]] = None

    # -- temperature access -------------------------------------------

    def temperature(self, node: str) -> float:
        """Current temperature of the named node."""
        try:
            return self.temperatures[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def set_temperature(self, node: str, value: float) -> None:
        """Force the named node to a temperature (fiddle)."""
        if node not in self.temperatures:
            raise UnknownNodeError(node)
        self.temperatures[node] = value
        if self.listener is not None:
            self.listener("temperature", node, value)

    # -- constants ------------------------------------------------------

    def set_k(self, a: str, b: str, value: float) -> None:
        """Change the heat-transfer constant of the edge between ``a`` and ``b``."""
        key = (a, b) if a <= b else (b, a)
        if key not in self.k:
            raise UnknownNodeError(f"{a}--{b}")
        if value < 0.0:
            raise ValueError("k must be non-negative")
        self.k[key] = value
        if self.listener is not None:
            self.listener("k", key, value)

    def set_fraction(self, src: str, dst: str, value: float) -> None:
        """Change an air-flow fraction; the flow cache is invalidated."""
        if (src, dst) not in self.fractions:
            raise UnknownNodeError(f"{src}->{dst}")
        if not 0.0 <= value <= 1.0:
            raise ValueError("air fraction must be in [0, 1]")
        self.fractions[(src, dst)] = value
        self._flow_cache = None
        if self.listener is not None:
            self.listener("fraction", (src, dst), value)

    def set_fan_cfm(self, value: float) -> None:
        """Change the fan speed (ft^3/min); the flow cache is invalidated."""
        if value <= 0.0:
            raise ValueError("fan flow must be positive")
        self.fan_cfm = value
        self._flow_cache = None
        if self.listener is not None:
            self.listener("fan", None, value)

    def set_power_scale(self, component: str, factor: float) -> None:
        """Scale a component's power draw (emulates DVFS / clock throttling)."""
        try:
            self.power_models[component].factor = factor
        except KeyError:
            raise UnknownNodeError(component) from None
        if self.listener is not None:
            self.listener("power_scale", component, factor)

    def set_utilization(self, component: str, utilization: float) -> None:
        """Report a component utilization (normally done by monitord)."""
        if component not in self.utilizations:
            raise UnknownNodeError(component)
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        self.utilizations[component] = utilization
        if self.listener is not None:
            self.listener("utilization", component, utilization)

    # -- derived --------------------------------------------------------

    def flows(self) -> Dict[str, float]:
        """Volumetric flow (m^3/s) per air region under the live constants."""
        if self._flow_cache is None:
            self._flow_cache = self.layout.air_flow_rates(
                fan_cfm=self.fan_cfm, fractions=self.fractions
            )
        return self._flow_cache

    def edge_k(self, a: str, b: str) -> float:
        """Live heat-transfer constant for the edge between ``a`` and ``b``."""
        key = (a, b) if a <= b else (b, a)
        return self.k[key]

    def power(self, component: str) -> float:
        """Current power draw (W) of the named component."""
        return self.power_models[component].power(self.utilizations[component])


@dataclass
class Sample:
    """One recorded solver tick for one machine."""

    time: float
    temperatures: Dict[str, float]
    utilizations: Dict[str, float]
    powers: Dict[str, float]


class History:
    """Per-machine time series of solver samples.

    The solver appends a :class:`Sample` per machine per recorded tick.
    ``series`` extracts aligned columns, which is what the validation
    experiments and the benchmark harness consume.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[Sample]] = {}

    def append(self, machine: str, sample: Sample) -> None:
        """Record one tick's sample for a machine."""
        self._samples.setdefault(machine, []).append(sample)

    def machines(self) -> List[str]:
        """Machines with at least one recorded sample."""
        return sorted(self._samples)

    def samples(self, machine: str) -> List[Sample]:
        """All samples recorded for a machine, oldest first."""
        return list(self._samples.get(machine, ()))

    def times(self, machine: str) -> List[float]:
        """Sample timestamps (seconds of simulated time) for a machine."""
        return [s.time for s in self._samples.get(machine, ())]

    def series(self, machine: str, node: str) -> List[float]:
        """Temperature time series for one node of one machine."""
        return [s.temperatures[node] for s in self._samples.get(machine, ())]

    def utilization_series(self, machine: str, component: str) -> List[float]:
        """Utilization time series for one component of one machine."""
        return [s.utilizations[component] for s in self._samples.get(machine, ())]

    def power_series(self, machine: str, component: str) -> List[float]:
        """Power time series (W) for one component of one machine."""
        return [s.powers[component] for s in self._samples.get(machine, ())]

    def last(self, machine: str) -> Sample:
        """Most recent sample for a machine."""
        return self._samples[machine][-1]

    def __len__(self) -> int:
        return sum(len(samples) for samples in self._samples.values())
