"""The Mercury solver: coarse-grained finite-element temperature emulation.

Per tick (1 second by default, paper section 2.3) the solver performs the
three traversals of section 2.2:

1. **inter-machine air movement** — each machine's inlet temperature is
   the perfect-mixing weighted average of the cluster edges feeding it
   (air-conditioner supplies and, for recirculation, other machines'
   exhausts from the previous tick);
2. **intra-machine air movement** — air regions are visited in flow
   (topological) order; each one mixes its incoming streams and then
   exchanges heat with the components it touches in the heat-flow graph
   (the analytically integrated stream exchange of
   :func:`repro.core.physics.stream_exchange`);
3. **inter-component heat flow** — component-to-component conduction plus
   each component's own heat production ``P(utilization) * dt``.

Temperatures of every component and air region can be queried at any
time; the fiddle tool can force temperatures and change any constant
between ticks.  The solver is deterministic: same inputs, same outputs.

Two interchangeable engines perform the per-machine traversals:

* ``engine="python"`` (the default) — the reference implementation in
  this module: per-node dict loops, easy to read and to audit against
  the paper's equations;
* ``engine="compiled"`` — :mod:`repro.core.compiled` lowers the layouts
  into flat NumPy arrays and runs all machines of a step as vectorized
  array operations.  It matches the reference engine within 1e-9 °C
  (see ``tests/golden`` and ``tests/core/test_compiled_equivalence.py``)
  and is the engine the large-cluster benchmarks use.

Both engines share this class's public surface: sensor reads, fiddle
mutations, ``force_temperature``, cluster source overrides, and
:class:`~repro.core.state.History` recording behave identically.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import units
from ..errors import SolverError, UnknownNodeError, UnknownSensorError
from ..telemetry import ensure as _ensure_telemetry
from ..telemetry.registry import LATENCY_BUCKETS
from . import physics
from .graph import ClusterLayout, MachineLayout
from .state import History, MachineState, Sample

#: Default solver tick, seconds ("one iteration per second by default").
DEFAULT_DT = 1.0

#: Supported solver engines.
ENGINES = ("python", "compiled")


class Solver:
    """Computes temperatures for one machine or a cluster of machines.

    Parameters
    ----------
    layouts:
        The machines to emulate.  For a clustered system pass ``cluster``
        as well; machine inlet temperatures are then driven by the
        inter-machine air-flow graph instead of each layout's fixed
        inlet temperature.
    dt:
        Emulation time step in seconds.
    initial_temperature:
        Starting temperature of every object and air region ("all objects
        and air regions start the emulation at a user-defined initial air
        temperature").  Defaults to the first layout's inlet temperature.
    record:
        When true, a :class:`~repro.core.state.History` sample is stored
        for every machine on every tick.
    engine:
        ``"python"`` (reference dict-loop implementation) or
        ``"compiled"`` (vectorized NumPy implementation from
        :mod:`repro.core.compiled`; requires NumPy).
    telemetry:
        An optional :class:`repro.telemetry.Telemetry`; when given, the
        solver records per-tick latency, node-update counts, and (for
        the compiled engine) recompiles.  ``None`` means the shared
        no-op facade — the tick hot path then pays only a flag check.
    topology:
        An optional :class:`repro.topology.Topology`.  Machine inlets
        are then the convex mix of their zone's cold-aisle supply and
        the recirculation edges feeding them (see
        :mod:`repro.topology.recirculation`), replacing the cluster
        air graph; ``cluster`` and ``topology`` are mutually exclusive.
    """

    def __init__(
        self,
        layouts: Sequence[MachineLayout],
        cluster: Optional[ClusterLayout] = None,
        dt: float = DEFAULT_DT,
        initial_temperature: Optional[float] = None,
        record: bool = True,
        engine: str = "python",
        telemetry=None,
        topology=None,
    ) -> None:
        if not layouts:
            raise SolverError("at least one machine layout is required")
        if dt <= 0.0:
            raise SolverError("dt must be positive")
        names = [layout.name for layout in layouts]
        if len(set(names)) != len(names):
            raise SolverError(f"duplicate machine names: {names}")
        if cluster is not None:
            missing = set(names) - set(cluster.machines)
            extra = set(cluster.machines) - set(names)
            if missing or extra:
                raise SolverError(
                    "cluster layout machines do not match solver machines "
                    f"(missing={sorted(missing)}, extra={sorted(extra)})"
                )
        if topology is not None:
            if cluster is not None:
                raise SolverError(
                    "pass either cluster or topology, not both"
                )
            missing = set(names) - set(topology.machines)
            extra = set(topology.machines) - set(names)
            if missing or extra:
                raise SolverError(
                    "topology machines do not match solver machines "
                    f"(missing={sorted(missing)}, extra={sorted(extra)})"
                )
        self.dt = dt
        self.cluster = cluster
        self.topology = topology
        if topology is not None:
            from ..topology.recirculation import RecirculationOperator

            self._topology_op = RecirculationOperator(topology)
        else:
            self._topology_op = None
        if initial_temperature is None:
            initial_temperature = layouts[0].inlet_temperature
        self.machines: Dict[str, MachineState] = {
            layout.name: MachineState(layout, initial_temperature)
            for layout in layouts
        }
        self.time = 0.0
        self.iterations = 0
        #: Ticks skipped by :meth:`coast` (idle fast-forward).
        self.coasted_ticks = 0
        self.record = record
        self.history = History()
        #: Cluster-source supply-temperature overrides (fiddle).
        self._source_overrides: Dict[str, float] = {}
        #: Live inter-machine edge fractions (fiddle can edit these).
        self._cluster_fractions: Dict[Tuple[str, str], float] = (
            {(e.src, e.dst): e.fraction for e in cluster.edges}
            if cluster is not None
            else {}
        )
        #: Cached perfect-mixing plan per machine: the (is_source, src,
        #: weight) triples of `_cluster_inlet`, hoisted because the edge
        #: set and flows are static between fiddle edits.
        self._inlet_plans: Optional[Dict[str, List[Tuple[bool, str, float]]]] = None
        #: Exhaust temperature of each machine at the end of the previous
        #: tick; used by the inter-machine traversal.
        self._prev_exhaust: Dict[str, float] = {
            name: initial_temperature for name in self.machines
        }
        if engine not in ENGINES:
            raise SolverError(f"unknown engine {engine!r}; pick from {ENGINES}")
        self.engine = engine
        self.telemetry = _ensure_telemetry(telemetry)
        engine_labels = {"engine": engine}
        self._tel_tick_hist = self.telemetry.histogram(
            "solver_tick_seconds", engine_labels, buckets=LATENCY_BUCKETS,
            help="Wall-clock latency of one solver tick.",
        )
        self._tel_ticks = self.telemetry.counter(
            "solver_ticks_total", engine_labels,
            help="Solver iterations performed.",
        )
        self._tel_nodes = self.telemetry.counter(
            "solver_node_updates_total", engine_labels,
            help="Node (component + air region) temperature updates.",
        )
        self._tel_recompiles = self.telemetry.counter(
            "solver_recompiles_total", engine_labels,
            help="Lazy flow-array recompiles after fiddle edits (compiled engine).",
        )
        self._tel_sim_time = self.telemetry.gauge(
            "solver_sim_time_seconds", help="Current emulated time.",
        )
        self._n_nodes = sum(
            len(state.temperatures) for state in self.machines.values()
        )
        if engine == "compiled":
            from .compiled import CompiledEngine

            self._impl = CompiledEngine(self)
        else:
            self._impl = _PythonEngine(self)
        if record:
            self._record_all()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def machine(self, name: str) -> MachineState:
        """The mutable state of the named machine."""
        try:
            return self.machines[name]
        except KeyError:
            raise UnknownSensorError(name, "<machine>") from None

    def temperature(self, machine: str, node: str) -> float:
        """Current temperature (Celsius) of a node, as a sensor would report.

        ``node`` may be an exact vertex name or the special name
        ``"inlet"`` / ``"exhaust"`` which resolve through the layout.
        """
        state = self.machine(machine)
        resolved = self._resolve_node(state, node)
        return state.temperatures[resolved]

    def _resolve_node(self, state: MachineState, node: str) -> str:
        layout = state.layout
        if node in state.temperatures:
            return node
        lowered = node.strip().lower()
        if lowered == "inlet":
            return layout.inlet
        if lowered == "exhaust":
            return layout.exhaust
        # Case-insensitive fallback so sensor names like "cpu" work.
        matches = [name for name in state.temperatures if name.lower() == lowered]
        if len(matches) == 1:
            return matches[0]
        raise UnknownSensorError(layout.name, node)

    def set_utilization(self, machine: str, component: str, utilization: float) -> None:
        """Feed a component utilization (monitord's update path)."""
        self.machine(machine).set_utilization(component, utilization)

    def set_utilizations(self, machine: str, utilizations: Mapping[str, float]) -> None:
        """Feed several component utilizations at once."""
        state = self.machine(machine)
        for component, utilization in utilizations.items():
            state.set_utilization(component, utilization)

    # ------------------------------------------------------------------
    # fiddle interface
    # ------------------------------------------------------------------

    def force_temperature(self, machine: str, node: str, value: float) -> None:
        """Force a node temperature; ``node`` accepts "inlet"/"exhaust" too.

        Forcing the inlet installs a persistent override (this is how an
        air-conditioning failure is emulated); forcing any other node sets
        its state once and lets physics take over again.
        """
        state = self.machine(machine)
        resolved = self._resolve_node(state, node)
        if resolved == state.layout.inlet:
            state.inlet_override = value
        state.set_temperature(resolved, value)

    def clear_inlet_override(self, machine: str) -> None:
        """Return a machine's inlet to layout/cluster control."""
        self.machine(machine).inlet_override = None

    def set_source_temperature(self, source: str, value: float) -> None:
        """Override a cluster cooling source's supply temperature."""
        if self.cluster is None or source not in self.cluster.sources:
            raise UnknownNodeError(source)
        self._source_overrides[source] = value

    def set_cluster_fraction(self, src: str, dst: str, value: float) -> None:
        """Change an inter-machine air edge's fraction (fiddle).

        Emulates rack/air-path changes at run time, e.g. a failed damper
        sending less AC air to a machine.  Invalidates the cached
        perfect-mixing inlet weights.
        """
        if self.cluster is None or (src, dst) not in self._cluster_fractions:
            raise UnknownNodeError(f"{src}->{dst}")
        if not 0.0 <= value <= 1.0:
            raise ValueError("cluster air fraction must be in [0, 1]")
        self._cluster_fractions[(src, dst)] = value
        self._inlet_plans = None

    def set_zone_supply(self, zone: str, value: float) -> None:
        """Override a topology zone's cold-aisle supply temperature (fiddle).

        Emulates a zonal air-conditioner failure or set-point change;
        every machine in the zone sees the new supply in its inlet mix
        from the next tick on.
        """
        if self._topology_op is None:
            raise SolverError("no topology configured")
        self._topology_op.set_supply(zone, value)

    def set_recirculation(self, src: str, dst: str, weight: float) -> None:
        """Change a topology recirculation edge's weight (fiddle).

        Emulates a containment/blanking-panel change: more or less of
        ``src``'s exhaust re-entering ``dst``'s inlet.  The edge must
        exist in the topology and the new incoming weights of ``dst``
        must stay convex (sum <= 1).
        """
        if self._topology_op is None:
            raise SolverError("no topology configured")
        self._topology_op.set_weight(src, dst, weight)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, ticks: int = 1) -> None:
        """Advance the emulation by ``ticks`` solver iterations."""
        for _ in range(ticks):
            self._tick()

    def run(self, duration: float) -> None:
        """Advance the emulation by ``duration`` seconds of simulated time."""
        ticks = int(round(duration / self.dt))
        self.step(ticks)

    def coast(self, ticks: int = 1) -> None:
        """Advance the clock ``ticks`` iterations without recomputing.

        The idle fast-forward path of the cluster harness calls this
        once it has established that every input is unchanged and the
        temperature field has converged: all node temperatures (and the
        previous-tick exhausts the inter-machine traversal reads) are
        held verbatim, so a later real :meth:`step` continues from
        exactly the state a full step sequence would have reached, to
        within the caller's convergence threshold.
        """
        for _ in range(ticks):
            self.time += self.dt
            self.coasted_ticks += 1
            if self.telemetry.enabled:
                self.telemetry.advance(self.time)
                self.telemetry.counter(
                    "solver_coasts_total", {"engine": self.engine},
                    help="Solver ticks skipped by idle fast-forward.",
                ).inc()
                self._tel_sim_time.set(self.time)
            if self.record:
                self._record_all()

    def _tick(self) -> None:
        impl = self._impl
        measure = self.telemetry.enabled and impl.measure_host_latency
        if measure:
            tick_start = _time.perf_counter()
        if impl.provides_inlets:
            # The engine (the sweep batch pool) derives inlets itself and
            # maintains _prev_exhaust when it actually computes the tick.
            impl.tick(None)
        else:
            inlet_temps = self._inter_machine_traversal()
            impl.tick(inlet_temps)
            for name, state in self.machines.items():
                self._prev_exhaust[name] = state.temperatures[
                    state.layout.exhaust
                ]
        self.time += self.dt
        self.iterations += 1
        if self.telemetry.enabled:
            # Keep the facade's sim clock current even when the solver
            # runs standalone (offline traces, `repro solve`).
            self.telemetry.advance(self.time)
            if measure:
                self._tel_tick_hist.observe(_time.perf_counter() - tick_start)
            self._tel_ticks.inc()
            self._tel_nodes.inc(self._n_nodes)
            self._tel_sim_time.set(self.time)
        if self.record:
            self._record_all()

    def _inter_machine_traversal(self) -> Dict[str, float]:
        """Compute each machine's inlet temperature for this tick."""
        result: Dict[str, float] = {}
        for name, state in self.machines.items():
            if state.inlet_override is not None:
                result[name] = state.inlet_override
            elif self._topology_op is not None:
                result[name] = self._topology_op.inlet(name, self._prev_exhaust)
            elif self.cluster is not None:
                result[name] = self._cluster_inlet(name)
            else:
                result[name] = state.layout.inlet_temperature
        return result

    def _inlet_plan(self, machine: str) -> List[Tuple[bool, str, float]]:
        """The hoisted mixing terms feeding one machine's inlet.

        Each entry is ``(is_source, src, weight)`` in cluster edge order;
        ``weight`` is the stream's volumetric flow times the edge
        fraction, which only changes when a fiddle edit touches the edge
        set (see :meth:`set_cluster_fraction`), so the whole table is
        cached rather than recomputed every tick.
        """
        assert self.cluster is not None
        if self._inlet_plans is None:
            self._inlet_plans = {}
        plan = self._inlet_plans.get(machine)
        if plan is None:
            plan = []
            for edge in self.cluster.incoming(machine):
                fraction = self._cluster_fractions[(edge.src, edge.dst)]
                if edge.src in self.cluster.sources:
                    source = self.cluster.sources[edge.src]
                    flow = source.flow_m3s
                    if flow is None:
                        flow = sum(
                            units.cfm_to_m3s(m.fan_cfm)
                            for m in self.cluster.machines.values()
                        )
                    plan.append((True, edge.src, flow * fraction))
                else:  # recirculation from another machine's exhaust
                    flow = units.cfm_to_m3s(self.cluster.machines[edge.src].fan_cfm)
                    plan.append((False, edge.src, flow * fraction))
            self._inlet_plans[machine] = plan
        return plan

    def _cluster_inlet(self, machine: str) -> float:
        """Perfect-mixing inlet temperature from the cluster air graph."""
        assert self.cluster is not None
        temps: List[float] = []
        weights: List[float] = []
        for is_source, src, weight in self._inlet_plan(machine):
            if is_source:
                source = self.cluster.sources[src]
                temp = self._source_overrides.get(src, source.supply_temperature)
            else:
                temp = self._prev_exhaust[src]
            temps.append(temp)
            weights.append(weight)
        if not temps:
            return self.machines[machine].layout.inlet_temperature
        return physics.mix_streams(temps, weights)

    def _machine_tick(self, state: MachineState, inlet_temperature: float) -> None:
        layout = state.layout
        dt = self.dt
        flows = state.flows()
        temps = state.temperatures
        start = dict(temps)  # component temps seen by all exchanges this tick

        # Heat gained by each component this tick (J), applied at the end.
        heat: Dict[str, float] = {name: 0.0 for name in layout.components}

        # --- intra-machine air traversal (advection + stream exchange) ---
        incoming = {region: layout.incoming_air(region) for region in layout.air_regions}
        air_heat_edges: Dict[str, List[Tuple[str, Tuple[str, str]]]] = {
            region: [] for region in layout.air_regions
        }
        for edge in layout.heat_edges:
            for region, other in ((edge.a, edge.b), (edge.b, edge.a)):
                if region in layout.air_regions and other in layout.components:
                    air_heat_edges[region].append((other, edge.key))

        for region in layout.air_order:
            flow = flows.get(region, 0.0)
            if region == layout.inlet:
                t_air = inlet_temperature
            else:
                mix_temps: List[float] = []
                mix_weights: List[float] = []
                for edge in incoming[region]:
                    fraction = state.fractions[(edge.src, edge.dst)]
                    upstream_flow = flows.get(edge.src, 0.0)
                    weight = upstream_flow * fraction
                    if weight > 0.0:
                        mix_temps.append(temps[edge.src])
                        mix_weights.append(weight)
                if mix_temps:
                    t_air = physics.mix_streams(mix_temps, mix_weights)
                else:
                    t_air = temps[region]  # stagnant pocket keeps its temperature
            capacity_rate = units.air_heat_capacity_rate(flow)
            for component, key in air_heat_edges[region]:
                exchange = physics.stream_exchange(
                    k=state.k[key],
                    t_body=start[component],
                    t_stream_in=t_air,
                    capacity_rate=capacity_rate,
                    dt=dt,
                )
                t_air = exchange.t_out
                heat[component] -= exchange.heat_to_stream
            temps[region] = t_air

        # --- inter-component heat flow + air-air conduction ---
        for edge in layout.heat_edges:
            a_is_comp = edge.a in layout.components
            b_is_comp = edge.b in layout.components
            k = state.k[edge.key]
            if a_is_comp and b_is_comp:
                mc_a = layout.components[edge.a].heat_capacity
                mc_b = layout.components[edge.b].heat_capacity
                q = physics.conduction_heat(k, start[edge.a], start[edge.b], dt, mc_a, mc_b)
                heat[edge.a] -= q
                heat[edge.b] += q
            elif not a_is_comp and not b_is_comp:
                # Air-air conduction between regions (rare; e.g. a stagnant
                # pocket).  Each side's per-tick thermal mass is the air
                # that transits it during the step.
                mc_a = max(units.air_heat_capacity_rate(flows.get(edge.a, 0.0)) * dt, 1e-9)
                mc_b = max(units.air_heat_capacity_rate(flows.get(edge.b, 0.0)) * dt, 1e-9)
                q = physics.conduction_heat(k, temps[edge.a], temps[edge.b], dt, mc_a, mc_b)
                temps[edge.a] -= q / mc_a
                temps[edge.b] += q / mc_b
            # component-air edges were handled in the air traversal

        # --- component self-heating and temperature update ---
        for name, component in layout.components.items():
            heat[name] += state.power_models[name].heat(state.utilizations[name], dt)
            temps[name] = start[name] + physics.temperature_delta(
                heat[name], component.mass, component.specific_heat
            )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot all mutable solver state as plain JSON-able data.

        Captures everything :meth:`restore` needs to continue a run
        bit-for-bit: the clock, per-machine temperatures and live
        constants (k, fractions, fan, power scales, utilizations,
        inlet overrides), cluster-level overrides, and the previous-tick
        exhaust temperatures the inter-machine traversal reads.

        :class:`~repro.core.state.History` recordings are *not*
        checkpointed — a resumed solver records from the resume point
        onward; callers needing the full series keep their own records
        (as :class:`~repro.cluster.simulation.ClusterSimulation` does).
        """
        machines: Dict[str, object] = {}
        for name, state in self.machines.items():
            machines[name] = {
                "temperatures": dict(state.temperatures),
                "k": {f"{a}|{b}": v for (a, b), v in state.k.items()},
                "fractions": {
                    f"{src}|{dst}": v
                    for (src, dst), v in state.fractions.items()
                },
                "fan_cfm": state.fan_cfm,
                "inlet_override": state.inlet_override,
                "utilizations": dict(state.utilizations),
                "power_factors": {
                    component: model.factor
                    for component, model in state.power_models.items()
                },
            }
        data = {
            "time": self.time,
            "iterations": self.iterations,
            "prev_exhaust": dict(self._prev_exhaust),
            "source_overrides": dict(self._source_overrides),
            "cluster_fractions": {
                f"{src}|{dst}": v
                for (src, dst), v in self._cluster_fractions.items()
            },
            "machines": machines,
        }
        # The key is present only when a topology is configured, so
        # topology-free checkpoints stay byte-identical to older ones.
        if self._topology_op is not None:
            data["topology"] = self._topology_op.checkpoint()
        return data

    def restore(self, data: Mapping[str, object]) -> None:
        """Restore a :meth:`checkpoint` onto this solver.

        The solver must have been built from the same layouts (same
        machines, nodes, and edges).  All state is written through the
        :class:`~repro.core.state.MachineState` setter methods, so an
        attached engine listener (the compiled engine's array mirror)
        observes every mutation and stays in sync.
        """
        for name, saved in data["machines"].items():  # type: ignore[union-attr]
            state = self.machine(name)
            for node, value in saved["temperatures"].items():
                state.set_temperature(node, value)
            for key, value in saved["k"].items():
                a, b = key.split("|")
                state.set_k(a, b, value)
            for key, value in saved["fractions"].items():
                src, dst = key.split("|")
                state.set_fraction(src, dst, value)
            state.set_fan_cfm(saved["fan_cfm"])
            state.inlet_override = saved["inlet_override"]
            for component, value in saved["utilizations"].items():
                state.set_utilization(component, value)
            for component, factor in saved["power_factors"].items():
                state.set_power_scale(component, factor)
        self.time = float(data["time"])
        self.iterations = int(data["iterations"])
        self._prev_exhaust = {
            name: float(v) for name, v in data["prev_exhaust"].items()
        }
        self._source_overrides = {
            name: float(v) for name, v in data["source_overrides"].items()
        }
        for key, value in data["cluster_fractions"].items():
            src, dst = key.split("|")
            if self._cluster_fractions.get((src, dst)) != value:
                self.set_cluster_fraction(src, dst, value)
        if self._topology_op is not None and "topology" in data:
            self._topology_op.restore(data["topology"])

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _record_all(self) -> None:
        for name, state in self.machines.items():
            self.history.append(
                name,
                Sample(
                    time=self.time,
                    temperatures=dict(state.temperatures),
                    utilizations=dict(state.utilizations),
                    powers={c: state.power(c) for c in state.layout.components},
                ),
            )

    def __repr__(self) -> str:
        return (
            f"Solver({len(self.machines)} machines, dt={self.dt}, "
            f"t={self.time:.0f}s, engine={self.engine!r})"
        )


class _PythonEngine:
    """The reference engine: per-machine dict-loop traversals."""

    #: See :class:`repro.core.compiled.CompiledEngine` for the contract.
    provides_inlets = False
    measure_host_latency = True

    def __init__(self, solver: Solver) -> None:
        self._solver = solver

    def tick(self, inlet_temps: Mapping[str, float]) -> None:
        solver = self._solver
        for name, state in solver.machines.items():
            solver._machine_tick(state, inlet_temps[name])
