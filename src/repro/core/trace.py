"""Utilization traces and the solver's offline (trace-fed) mode.

Mercury's solver can be fed either live by monitord or from a trace file
("which allows for fine-tuning of parameters without actually running the
system software").  Replicating traces lets Mercury "emulate large cluster
installations, even when the user's real system is much smaller".

A :class:`UtilizationTrace` is a step function from time to per-component
utilizations for one machine.  :func:`run_offline` replays one trace per
machine through a :class:`~repro.core.solver.Solver` and returns the
resulting history — "another file containing all the usage and
temperature information for each component in the system over time"
when written with :func:`save_history`.
"""

from __future__ import annotations

import bisect
import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..errors import TraceError
from .graph import ClusterLayout, MachineLayout
from .solver import DEFAULT_DT, Solver
from .state import History


@dataclass(frozen=True)
class TracePoint:
    """Utilizations in effect from ``time`` until the next point."""

    time: float
    utilizations: Dict[str, float]


class UtilizationTrace:
    """A per-machine component-utilization step function.

    Points must be time-sorted; the utilization at time ``t`` is that of
    the latest point with ``time <= t`` (before the first point, all
    components are idle).
    """

    def __init__(self, machine: str, points: Sequence[TracePoint]) -> None:
        self.machine = machine
        self.points: List[TracePoint] = list(points)
        for earlier, later in zip(self.points, self.points[1:]):
            if later.time <= earlier.time:
                raise TraceError(
                    f"trace for {machine!r} not strictly time-sorted at "
                    f"t={later.time}"
                )
        for point in self.points:
            for component, value in point.utilizations.items():
                if not 0.0 <= value <= 1.0:
                    raise TraceError(
                        f"trace for {machine!r}: utilization of {component!r} "
                        f"at t={point.time} is {value}, outside [0, 1]"
                    )
        self._times = [p.time for p in self.points]

    @classmethod
    def from_function(
        cls,
        machine: str,
        duration: float,
        interval: float,
        func: Callable[[float], Mapping[str, float]],
    ) -> "UtilizationTrace":
        """Sample ``func(t)`` every ``interval`` seconds for ``duration``."""
        if interval <= 0.0 or duration <= 0.0:
            raise TraceError("duration and interval must be positive")
        points = []
        t = 0.0
        while t < duration:
            points.append(TracePoint(time=t, utilizations=dict(func(t))))
            t += interval
        return cls(machine, points)

    @property
    def duration(self) -> float:
        """Time of the last point (seconds)."""
        return self._times[-1] if self._times else 0.0

    @property
    def components(self) -> List[str]:
        """All component names mentioned anywhere in the trace."""
        seen: Dict[str, None] = {}
        for point in self.points:
            for name in point.utilizations:
                seen.setdefault(name)
        return list(seen)

    def utilizations_at(self, time: float) -> Dict[str, float]:
        """Utilizations in effect at simulated time ``time``."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return {}
        return dict(self.points[idx].utilizations)

    def replicate(self, machines: Sequence[str]) -> List["UtilizationTrace"]:
        """Copies of this trace for each named machine (cluster emulation)."""
        return [UtilizationTrace(name, self.points) for name in machines]

    def shifted(self, offset: float) -> "UtilizationTrace":
        """The same trace delayed by ``offset`` seconds (>= 0)."""
        if offset < 0.0:
            raise TraceError("shift offset must be non-negative")
        return UtilizationTrace(
            self.machine,
            [TracePoint(p.time + offset, p.utilizations) for p in self.points],
        )

    def __len__(self) -> int:
        return len(self.points)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

_TRACE_FIELDS = ("time", "machine", "component", "utilization")


def save_traces(traces: Sequence[UtilizationTrace], path: Union[str, Path]) -> None:
    """Write traces to a CSV file (columns: time, machine, component, utilization)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TRACE_FIELDS)
        for trace in traces:
            for point in trace.points:
                for component, value in sorted(point.utilizations.items()):
                    writer.writerow([f"{point.time:.6g}", trace.machine, component, f"{value:.6g}"])


def load_traces(path: Union[str, Path]) -> List[UtilizationTrace]:
    """Read traces written by :func:`save_traces`."""
    rows: Dict[str, Dict[float, Dict[str, float]]] = {}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _TRACE_FIELDS:
            raise TraceError(f"bad trace header in {path}: {header}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != 4:
                raise TraceError(f"{path}:{lineno}: expected 4 columns, got {len(row)}")
            try:
                time = float(row[0])
                value = float(row[3])
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from None
            rows.setdefault(row[1], {}).setdefault(time, {})[row[2]] = value
    traces = []
    for machine, by_time in sorted(rows.items()):
        points = [
            TracePoint(time=t, utilizations=utils)
            for t, utils in sorted(by_time.items())
        ]
        traces.append(UtilizationTrace(machine, points))
    return traces


def save_history(history: History, path: Union[str, Path]) -> None:
    """Write a solver history to CSV (usage and temperature over time)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "machine", "node", "temperature", "utilization", "power"])
        for machine in history.machines():
            for sample in history.samples(machine):
                for node, temp in sorted(sample.temperatures.items()):
                    util = sample.utilizations.get(node, "")
                    power = sample.powers.get(node, "")
                    writer.writerow(
                        [
                            f"{sample.time:.6g}",
                            machine,
                            node,
                            f"{temp:.4f}",
                            f"{util:.6g}" if util != "" else "",
                            f"{power:.6g}" if power != "" else "",
                        ]
                    )


# ----------------------------------------------------------------------
# offline solving
# ----------------------------------------------------------------------


def run_offline(
    layouts: Sequence[MachineLayout],
    traces: Sequence[UtilizationTrace],
    cluster: Optional[ClusterLayout] = None,
    dt: float = DEFAULT_DT,
    duration: Optional[float] = None,
    initial_temperature: Optional[float] = None,
    events: Optional[Sequence["TimedEvent"]] = None,
    engine: str = "python",
    telemetry=None,
) -> History:
    """Replay utilization traces through a fresh solver and return history.

    ``events`` is an optional sequence of :class:`TimedEvent` callbacks
    (the fiddle script interpreter produces these) fired when simulated
    time first reaches each event's timestamp.  ``engine`` selects the
    solver implementation (``"python"`` or ``"compiled"``).  An enabled
    ``telemetry`` facade receives the solver's per-tick metrics.
    """
    by_machine = {trace.machine: trace for trace in traces}
    missing = [l.name for l in layouts if l.name not in by_machine]
    if missing:
        raise TraceError(f"no trace supplied for machines: {missing}")
    solver = Solver(
        layouts,
        cluster=cluster,
        dt=dt,
        initial_temperature=initial_temperature,
        record=True,
        engine=engine,
        telemetry=telemetry,
    )
    if duration is None:
        duration = max(trace.duration for trace in traces)
    pending = sorted(events or (), key=lambda e: e.time)
    next_event = 0
    ticks = int(round(duration / dt))
    for _ in range(ticks):
        while next_event < len(pending) and pending[next_event].time <= solver.time:
            pending[next_event].fire(solver)
            next_event += 1
        for layout in layouts:
            utils = by_machine[layout.name].utilizations_at(solver.time)
            if utils:
                solver.set_utilizations(layout.name, utils)
        solver.step()
    return solver.history


@dataclass(frozen=True)
class TimedEvent:
    """A callback fired once when simulated time reaches ``time``."""

    time: float
    action: Callable[[Solver], None]
    label: str = ""

    def fire(self, solver: Solver) -> None:
        """Run the event's action against the solver."""
        self.action(solver)
