"""Calibration: tuning Mercury's constants against a measured run.

Section 2.2: determining the heat- and air-flow constants from first
principles "can be time consuming and quite difficult", so "it is often
useful to have a calibration phase, where a single, isolated machine is
tested as fully as possible, and then the heat- and air-flow constants
are tuned until the emulated readings match the calibration experiment".

The workflow mirrors the paper's:

1. run calibration microbenchmarks on the (simulated) physical machine
   and record utilizations + sensor readings (:func:`measure_run`);
2. fit the heat-transfer constants — and optionally per-component power
   scales — so Mercury's emulated temperatures match the recording
   (:func:`calibrate`);
3. validate on a *different* benchmark without touching the inputs
   (:func:`emulate` + :func:`compare`).

Because "temperature changes are second-order effects on the constants",
the fitted constants remain valid for reasonable temperature ranges —
exactly the property the validation experiments (section 3.1) test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from ..errors import CalibrationError
from ..machine.procfs import ProcReader
from ..machine.server import SimulatedServer
from .graph import MachineLayout
from .solver import Solver

#: Sensor-name -> graph-node mapping used when recording measurements.
_SENSOR_NODES = {"cpu_air": "CPU Air", "disk": "Disk Platters"}


@dataclass
class Measurement:
    """A recorded run on the physical machine: what the experimenter sees.

    ``utilizations`` holds the per-interval component utilizations as
    monitord would report them (from /proc deltas); ``temperatures`` holds
    sensor readings keyed by graph-node name.  ``interval`` is the sample
    spacing in seconds.
    """

    interval: float
    times: List[float] = field(default_factory=list)
    utilizations: Dict[str, List[float]] = field(default_factory=dict)
    temperatures: Dict[str, List[float]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Span of the measurement in seconds."""
        return self.times[-1] if self.times else 0.0

    def downsample(self, factor: int) -> "Measurement":
        """A coarser view: every ``factor`` samples become one.

        Utilizations are averaged over each window (what a monitord with a
        longer period would have reported); temperatures take the last
        reading of the window (sensors report instantaneous values).
        """
        if factor <= 0:
            raise CalibrationError("downsample factor must be positive")
        if factor == 1:
            return self
        out = Measurement(interval=self.interval * factor)
        count = len(self.times) // factor
        for idx in range(count):
            lo, hi = idx * factor, (idx + 1) * factor
            out.times.append(self.times[hi - 1])
        for name, series in self.utilizations.items():
            out.utilizations[name] = [
                sum(series[i * factor:(i + 1) * factor]) / factor
                for i in range(count)
            ]
        for node, series in self.temperatures.items():
            out.temperatures[node] = [
                series[(i + 1) * factor - 1] for i in range(count)
            ]
        return out


def measure_run(
    server: SimulatedServer,
    duration: float,
    interval: float = 1.0,
) -> Measurement:
    """Run the physical machine and record what its instruments report.

    The server's attached workload drives utilization; readings are taken
    every ``interval`` seconds through /proc (utilizations) and the
    physical sensors (temperatures).
    """
    if interval <= 0.0 or duration <= 0.0:
        raise CalibrationError("duration and interval must be positive")
    reader = ProcReader(server.procfs)
    measurement = Measurement(interval=interval)
    for name in server.layout.monitored_components():
        measurement.utilizations[name] = []
    for sensor_name in server.sensors:
        node = _SENSOR_NODES.get(sensor_name, sensor_name)
        measurement.temperatures[node] = []
    steps = int(round(duration / interval))
    for _ in range(steps):
        server.step(interval)
        measurement.times.append(server.time)
        sampled = reader.sample()
        for name in measurement.utilizations:
            measurement.utilizations[name].append(sampled.get(name, 0.0))
        for sensor_name, sensor in server.sensors.items():
            node = _SENSOR_NODES.get(sensor_name, sensor_name)
            measurement.temperatures[node].append(sensor.read())
    return measurement


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted constants plus fit-quality numbers."""

    k_overrides: Dict[Tuple[str, str], float]
    power_scales: Dict[str, float]
    rmse: float
    max_error: float
    iterations: int

    def describe(self) -> str:
        """Human-readable summary of the fitted constants."""
        lines = [f"calibration fit: rmse={self.rmse:.3f} C, max={self.max_error:.3f} C"]
        for (a, b), k in sorted(self.k_overrides.items()):
            lines.append(f"  k[{a} -- {b}] = {k:.4f} W/K")
        for name, scale in sorted(self.power_scales.items()):
            lines.append(f"  power scale[{name}] = {scale:.4f}")
        return "\n".join(lines)


def emulate(
    layout: MachineLayout,
    measurement: Measurement,
    k_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
    power_scales: Optional[Mapping[str, float]] = None,
    dt: float = 1.0,
    initial_temperature: Optional[float] = None,
    nodes: Optional[Sequence[str]] = None,
) -> Dict[str, List[float]]:
    """Replay a measurement's utilizations through Mercury.

    Returns the emulated temperature series for ``nodes`` (default: the
    nodes present in the measurement) aligned with ``measurement.times``.
    """
    if nodes is None:
        nodes = list(measurement.temperatures)
    solver = Solver(
        [layout], dt=dt, initial_temperature=initial_temperature, record=False
    )
    state = solver.machine(layout.name)
    if k_overrides:
        for (a, b), value in k_overrides.items():
            state.set_k(a, b, value)
    if power_scales:
        for name, scale in power_scales.items():
            state.set_power_scale(name, scale)
    result: Dict[str, List[float]] = {node: [] for node in nodes}
    interval = measurement.interval
    if dt > interval + 1e-9:
        raise CalibrationError(
            f"solver dt ({dt}) coarser than the measurement interval "
            f"({interval}); downsample the measurement first"
        )
    ticks_per_sample = max(1, int(round(interval / dt)))
    for idx in range(len(measurement)):
        for component, series in measurement.utilizations.items():
            solver.set_utilization(layout.name, component, series[idx])
        solver.step(ticks_per_sample)
        for node in nodes:
            result[node].append(solver.temperature(layout.name, node))
    return result


def smooth_series(values: Sequence[float], window: int = 61) -> List[float]:
    """Centered moving average, used to strip sensor noise before scoring.

    Physical sensors quantize (the in-disk sensor to a whole degree) and
    jitter; the paper's accuracy claim is about tracking the *temperature
    trend*, so validation compares Mercury against the smoothed sensor
    trace.  The window should comfortably exceed the sensor noise
    correlation time but stay far below the thermal time constants
    (~60 samples at 1 Hz works for this server).
    """
    if window <= 0:
        raise CalibrationError("smoothing window must be positive")
    if window == 1 or len(values) == 0:
        return list(values)
    arr = np.asarray(values, dtype=float)
    window = min(window, 2 * len(arr) - 1)
    kernel = np.ones(window) / window
    # Reflect-pad so the ends are averaged over real data, not zeros.
    pad_front = window // 2
    pad_back = window - 1 - pad_front
    padded = np.concatenate(
        [
            arr[pad_front:0:-1] if pad_front else arr[:0],
            arr,
            arr[-2:-pad_back - 2:-1] if pad_back else arr[:0],
        ]
    )
    return np.convolve(padded, kernel, mode="valid").tolist()


def compare(
    measured: Mapping[str, Sequence[float]],
    emulated: Mapping[str, Sequence[float]],
    warmup: int = 0,
) -> Dict[str, Tuple[float, float]]:
    """Per-node (rmse, max absolute error) between measured and emulated.

    ``warmup`` samples at the start are excluded (initial-condition
    transients are not part of the accuracy claim).
    """
    report: Dict[str, Tuple[float, float]] = {}
    for node, series in measured.items():
        if node not in emulated:
            continue
        a = np.asarray(series[warmup:], dtype=float)
        b = np.asarray(emulated[node][warmup:], dtype=float)
        if len(a) != len(b):
            raise CalibrationError(
                f"series length mismatch for {node!r}: {len(a)} vs {len(b)}"
            )
        err = a - b
        report[node] = (float(np.sqrt(np.mean(err**2))), float(np.max(np.abs(err))))
    return report


def observable_edges(
    layout: MachineLayout, sensed_nodes: Sequence[str]
) -> List[Tuple[str, str]]:
    """Heat edges directly incident to a sensed node.

    These are the constants a calibration run can actually identify;
    edges further from any sensor are weakly observable and fitting them
    mostly lets the optimizer overfit transients.  They stay at their
    nominal values unless the caller opts in (or enables the prior-
    regularized full fit).
    """
    keys: List[Tuple[str, str]] = []
    for node in sensed_nodes:
        for edge in layout.heat_edges_of(node):
            if edge.key not in keys:
                keys.append(edge.key)
            # One hop further: the sensed signal also carries the edges of
            # the immediate neighbour (e.g. the disk platter sensor sees
            # the shell-to-air conductance through the shell).
            neighbour = edge.other(node)
            for far in layout.heat_edges_of(neighbour):
                if far.key not in keys:
                    keys.append(far.key)
    return keys


def calibrate(
    layout: MachineLayout,
    measurements: Sequence[Measurement],
    fit_edges: Optional[Sequence[Tuple[str, str]]] = None,
    fit_power: Sequence[str] = (),
    dt: float = 5.0,
    warmup: int = 30,
    max_nfev: int = 60,
    prior_weight: float = 0.0,
) -> CalibrationResult:
    """Fit heat-transfer constants (and optional power scales) to runs.

    ``fit_edges`` selects which heat edges to tune (default: the edges
    :func:`observable_edges` finds next to the sensed nodes, plus their
    one-hop neighbours along the sensed path); parameters are optimized
    in log space so constants stay positive.  ``dt`` is the solver step
    used *during fitting* — a coarse step makes each objective evaluation
    cheap; validation should use the production 1 s step.

    ``prior_weight`` adds a Tikhonov pull of the log-factors toward the
    nominal constants; use it when fitting weakly observable edges.
    """
    if not measurements:
        raise CalibrationError("at least one measurement is required")
    if fit_edges is None:
        sensed = sorted(
            {node for m in measurements for node in m.temperatures}
        )
        fit_edges = observable_edges(layout, sensed)
        if not fit_edges:
            raise CalibrationError("no heat edges adjacent to any sensed node")
    else:
        fit_edges = [tuple(sorted(edge)) for edge in fit_edges]
    nominal = {edge.key: edge.k for edge in layout.heat_edges}
    for key in fit_edges:
        if key not in nominal:
            raise CalibrationError(f"no heat edge {key}")
    fit_power = list(fit_power)
    n_k = len(fit_edges)
    # Fit against a view of the measurements no finer than the fitting dt,
    # so each objective evaluation stays cheap and time axes line up.
    fitted_measurements = []
    for measurement in measurements:
        factor = max(1, int(round(dt / measurement.interval)))
        fitted_measurements.append(measurement.downsample(factor))
    measurements = fitted_measurements

    def unpack(x: np.ndarray) -> Tuple[Dict[Tuple[str, str], float], Dict[str, float]]:
        k_over = {
            key: nominal[key] * math.exp(x[i]) for i, key in enumerate(fit_edges)
        }
        scales = {
            name: math.exp(x[n_k + j]) for j, name in enumerate(fit_power)
        }
        return k_over, scales

    # Track the most recent parameter vector the optimizer tried, so a
    # failure can report *which* parameters broke the model evaluation.
    last_x: List[float] = []

    def residuals(x: np.ndarray) -> np.ndarray:
        last_x[:] = [float(v) for v in x]
        k_over, scales = unpack(x)
        out: List[float] = []
        for measurement in measurements:
            emulated = emulate(
                layout, measurement, k_overrides=k_over, power_scales=scales, dt=dt
            )
            for node, series in measurement.temperatures.items():
                diff = np.asarray(series[warmup:], dtype=float) - np.asarray(
                    emulated[node][warmup:], dtype=float
                )
                out.extend(diff.tolist())
        if prior_weight > 0.0:
            out.extend((prior_weight * x).tolist())
        return np.asarray(out)

    x0 = np.zeros(n_k + len(fit_power))
    try:
        fit = least_squares(residuals, x0, max_nfev=max_nfev, xtol=1e-6, ftol=1e-6)
    except (ValueError, ArithmeticError, np.linalg.LinAlgError) as exc:
        # Numerical failures (non-finite residuals, singular Jacobians,
        # overflow in the model) — anything else is a real bug and must
        # propagate rather than masquerade as a calibration problem.
        raise CalibrationError(
            f"optimizer failed: {exc}", parameters=tuple(last_x) or None
        ) from exc
    k_over, scales = unpack(fit.x)
    final = residuals(fit.x)
    rmse = float(np.sqrt(np.mean(final**2))) if len(final) else 0.0
    max_error = float(np.max(np.abs(final))) if len(final) else 0.0
    return CalibrationResult(
        k_overrides=k_over,
        power_scales=scales,
        rmse=rmse,
        max_error=max_error,
        iterations=int(fit.nfev),
    )
