"""Heat-flow and air-flow graph structures (paper section 2.2, Figure 1).

Mercury is "at its heart a coarse-grained finite element analyzer": the
elements are vertices of a graph and the edges carry either heat-flow or
air-flow properties.  Three graphs describe a system:

* an **inter-component heat-flow graph** — undirected, because the
  direction of heat flow depends only on the temperature difference.
  Vertices are hardware components *and* the air regions around them;
  edges carry the ``k`` constant of Newton's law (W/K).
* an **intra-machine air-flow graph** — directed, because fans physically
  move air.  Vertices are air regions (inlet, per-component air,
  downstream regions, exhaust); edges carry the *fraction* of the source
  vertex's air that flows to the destination.
* an optional **inter-machine air-flow graph** for clusters — directed,
  connecting air-conditioner supplies to machine inlets and machine
  exhausts to the cluster exhaust (recirculation is expressed with
  machine-to-machine edges).

:class:`MachineLayout` bundles the first two plus the boundary conditions
(inlet temperature, fan speed); :class:`ClusterLayout` adds the third.
Both validate their structure eagerly (fraction conservation, dangling
references, air-graph acyclicity) so the solver can assume a well-formed
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import units
from ..errors import (
    AirFlowConservationError,
    DuplicateNodeError,
    GraphError,
    UnknownNodeError,
)
from .power import PowerModel

#: Tolerance when checking that outgoing air fractions sum to one.
_FRACTION_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Component:
    """A hardware component vertex: a solid body that produces heat.

    Parameters mirror Table 1: mass (kg), specific heat capacity
    (J/(K kg)), and a power model giving Watts as a function of
    utilization.  ``monitored`` marks components whose utilization is
    reported by monitord (CPU, disk, NIC); unmonitored components (power
    supply, motherboard) are emulated at a fixed utilization.
    """

    name: str
    mass: float
    specific_heat: float
    power_model: PowerModel
    monitored: bool = False

    def __post_init__(self) -> None:
        if self.mass <= 0.0:
            raise ValueError(f"component {self.name!r}: mass must be positive")
        if self.specific_heat <= 0.0:
            raise ValueError(f"component {self.name!r}: specific heat must be positive")

    @property
    def heat_capacity(self) -> float:
        """Total heat capacity ``m * c`` in J/K."""
        return self.mass * self.specific_heat


@dataclass(frozen=True)
class AirRegion:
    """An air-space vertex (inlet air, CPU air, void-space air, ...)."""

    name: str


@dataclass(frozen=True)
class HeatEdge:
    """Undirected heat-flow edge with Newton's-law constant ``k`` (W/K)."""

    a: str
    b: str
    k: float

    def __post_init__(self) -> None:
        if self.k < 0.0:
            raise ValueError(f"heat edge {self.a!r}--{self.b!r}: k must be >= 0")
        if self.a == self.b:
            raise ValueError(f"heat edge endpoints must differ, got {self.a!r} twice")

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical (sorted) endpoint pair identifying this edge."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def other(self, name: str) -> str:
        """The endpoint opposite ``name``."""
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise UnknownNodeError(name)


@dataclass(frozen=True)
class AirEdge:
    """Directed air-flow edge labelled with the fraction of source air moved."""

    src: str
    dst: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"air edge {self.src!r}->{self.dst!r}: fraction must be in [0, 1]"
            )
        if self.src == self.dst:
            raise ValueError(f"air edge endpoints must differ, got {self.src!r} twice")


class MachineLayout:
    """The thermal layout of one machine: components, air regions, and edges.

    A layout is an immutable *description*; the solver copies its constants
    into mutable per-run state, which is what the fiddle tool mutates.

    Parameters
    ----------
    name:
        Machine identifier (``machine1`` ...).
    components, air_regions:
        The graph vertices.
    heat_edges:
        Undirected heat-flow edges; endpoints may be components or air
        regions.
    air_edges:
        Directed air-flow edges; endpoints must be air regions.
    inlet, exhaust:
        Names of the inlet and exhaust air regions.
    inlet_temperature:
        Default inlet air temperature (Celsius); the cluster graph or the
        fiddle tool may override it at run time.
    fan_cfm:
        Volumetric fan flow through the case, in cubic feet per minute
        (Table 1 reports 38.6 ft^3/min).
    """

    def __init__(
        self,
        name: str,
        components: Sequence[Component],
        air_regions: Sequence[AirRegion],
        heat_edges: Sequence[HeatEdge],
        air_edges: Sequence[AirEdge],
        inlet: str,
        exhaust: str,
        inlet_temperature: float,
        fan_cfm: float,
    ) -> None:
        self.name = name
        self.components: Dict[str, Component] = {}
        self.air_regions: Dict[str, AirRegion] = {}
        for component in components:
            if component.name in self.components or component.name in self.air_regions:
                raise DuplicateNodeError(component.name)
            self.components[component.name] = component
        for region in air_regions:
            if region.name in self.components or region.name in self.air_regions:
                raise DuplicateNodeError(region.name)
            self.air_regions[region.name] = region
        self.heat_edges: List[HeatEdge] = list(heat_edges)
        self.air_edges: List[AirEdge] = list(air_edges)
        self.inlet = inlet
        self.exhaust = exhaust
        if inlet_temperature <= units.ABSOLUTE_ZERO_C:
            raise ValueError("inlet temperature below absolute zero")
        self.inlet_temperature = inlet_temperature
        if fan_cfm <= 0.0:
            raise ValueError("fan flow must be positive")
        self.fan_cfm = fan_cfm
        self._validate()
        self._air_order = self._topological_air_order()

    # -- validation ---------------------------------------------------

    def _validate(self) -> None:
        if self.inlet not in self.air_regions:
            raise UnknownNodeError(self.inlet)
        if self.exhaust not in self.air_regions:
            raise UnknownNodeError(self.exhaust)
        if self.inlet == self.exhaust:
            raise GraphError("inlet and exhaust must be distinct air regions")
        for edge in self.heat_edges:
            for endpoint in (edge.a, edge.b):
                if endpoint not in self.components and endpoint not in self.air_regions:
                    raise UnknownNodeError(endpoint)
        seen_heat = set()
        for edge in self.heat_edges:
            if edge.key in seen_heat:
                raise GraphError(f"duplicate heat edge {edge.a!r}--{edge.b!r}")
            seen_heat.add(edge.key)
        outgoing: Dict[str, float] = {}
        seen_air = set()
        for edge in self.air_edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self.air_regions:
                    if endpoint in self.components:
                        raise GraphError(
                            f"air edge {edge.src!r}->{edge.dst!r} touches a "
                            f"component; air edges connect air regions only"
                        )
                    raise UnknownNodeError(endpoint)
            if (edge.src, edge.dst) in seen_air:
                raise GraphError(f"duplicate air edge {edge.src!r}->{edge.dst!r}")
            seen_air.add((edge.src, edge.dst))
            outgoing[edge.src] = outgoing.get(edge.src, 0.0) + edge.fraction
        for region in self.air_regions:
            if region == self.exhaust:
                continue
            total = outgoing.get(region, 0.0)
            if abs(total - 1.0) > _FRACTION_TOLERANCE:
                raise AirFlowConservationError(region, total)
        if self.exhaust in outgoing:
            raise GraphError("exhaust region must have no outgoing air edges")

    def _topological_air_order(self) -> List[str]:
        """Kahn topological order of air regions along the flow direction."""
        indegree = {region: 0 for region in self.air_regions}
        successors: Dict[str, List[str]] = {region: [] for region in self.air_regions}
        for edge in self.air_edges:
            indegree[edge.dst] += 1
            successors[edge.src].append(edge.dst)
        ready = sorted(region for region, deg in indegree.items() if deg == 0)
        if self.inlet not in ready:
            raise GraphError("inlet region must have no incoming air edges")
        order: List[str] = []
        while ready:
            region = ready.pop(0)
            order.append(region)
            for nxt in successors[region]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.air_regions):
            cyclic = sorted(set(self.air_regions) - set(order))
            raise GraphError(f"air-flow graph has a cycle involving {cyclic}")
        return order

    # -- derived quantities -------------------------------------------

    @property
    def air_order(self) -> List[str]:
        """Air regions in flow (topological) order, inlet first."""
        return list(self._air_order)

    @property
    def node_names(self) -> List[str]:
        """All vertex names: components first, then air regions."""
        return list(self.components) + list(self.air_regions)

    def air_flow_rates(
        self,
        fan_cfm: Optional[float] = None,
        fractions: Optional[Mapping[Tuple[str, str], float]] = None,
    ) -> Dict[str, float]:
        """Volumetric flow (m^3/s) through every air region.

        Flow is injected at the inlet at the fan rate and propagated along
        air edges proportionally to the edge fractions.  ``fan_cfm`` and
        ``fractions`` override the layout's constants; the solver passes
        its mutable copies so fiddle-time changes take effect.
        """
        cfm = self.fan_cfm if fan_cfm is None else fan_cfm
        flows = {region: 0.0 for region in self.air_regions}
        flows[self.inlet] = units.cfm_to_m3s(cfm)
        edges_from: Dict[str, List[AirEdge]] = {}
        for edge in self.air_edges:
            edges_from.setdefault(edge.src, []).append(edge)
        for region in self._air_order:
            for edge in edges_from.get(region, ()):
                fraction = edge.fraction
                if fractions is not None:
                    fraction = fractions.get((edge.src, edge.dst), fraction)
                flows[edge.dst] += flows[region] * fraction
        return flows

    def heat_edges_of(self, name: str) -> List[HeatEdge]:
        """All heat edges incident to the named vertex."""
        if name not in self.components and name not in self.air_regions:
            raise UnknownNodeError(name)
        return [edge for edge in self.heat_edges if name in (edge.a, edge.b)]

    def incoming_air(self, name: str) -> List[AirEdge]:
        """Air edges arriving at the named region."""
        return [edge for edge in self.air_edges if edge.dst == name]

    def monitored_components(self) -> List[str]:
        """Names of components whose utilization monitord reports."""
        return [name for name, c in self.components.items() if c.monitored]

    def __repr__(self) -> str:
        return (
            f"MachineLayout({self.name!r}, {len(self.components)} components, "
            f"{len(self.air_regions)} air regions)"
        )


@dataclass(frozen=True)
class ClusterAirEdge:
    """Directed inter-machine air edge (Figure 1(c))."""

    src: str
    dst: str
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"cluster edge {self.src!r}->{self.dst!r}: fraction must be in [0, 1]"
            )


@dataclass
class CoolingSource:
    """An air-conditioner vertex supplying air at a set temperature."""

    name: str
    supply_temperature: float
    #: Volumetric supply flow, m^3/s.  By convention the total flow an AC
    #: pushes is the sum of the fan flows of the machines it feeds; the
    #: default of ``None`` means "computed from the machines".
    flow_m3s: Optional[float] = None


class ClusterLayout:
    """Inter-machine air-flow graph plus the per-machine layouts.

    Vertices are cooling sources (AC units), machines (referenced by the
    name of their :class:`MachineLayout`), and named sinks such as the
    cluster exhaust.  An edge ``AC -> machine`` with fraction ``f`` sends
    ``f`` of the AC's supply air to that machine's inlet; an edge
    ``machineA -> machineB`` models recirculation (part of A's exhaust
    reaching B's inlet); ``machine -> sink`` edges discharge exhaust air.
    """

    def __init__(
        self,
        machines: Sequence[MachineLayout],
        sources: Sequence[CoolingSource],
        edges: Sequence[ClusterAirEdge],
        sinks: Sequence[str] = ("Cluster Exhaust",),
    ) -> None:
        self.machines: Dict[str, MachineLayout] = {}
        for machine in machines:
            if machine.name in self.machines:
                raise DuplicateNodeError(machine.name)
            self.machines[machine.name] = machine
        self.sources: Dict[str, CoolingSource] = {}
        for source in sources:
            if source.name in self.sources or source.name in self.machines:
                raise DuplicateNodeError(source.name)
            self.sources[source.name] = source
        self.sinks: List[str] = list(sinks)
        self.edges: List[ClusterAirEdge] = list(edges)
        self._validate()

    def _validate(self) -> None:
        valid = set(self.machines) | set(self.sources) | set(self.sinks)
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in valid:
                    raise UnknownNodeError(endpoint)
            if edge.src in self.sinks:
                raise GraphError(f"sink {edge.src!r} cannot have outgoing air edges")
            if edge.dst in self.sources:
                raise GraphError(f"source {edge.dst!r} cannot have incoming air edges")
        for name in list(self.sources) + list(self.machines):
            total = sum(e.fraction for e in self.edges if e.src == name)
            if abs(total - 1.0) > _FRACTION_TOLERANCE:
                raise AirFlowConservationError(name, total)

    def incoming(self, machine: str) -> List[ClusterAirEdge]:
        """Cluster edges feeding the named machine's inlet."""
        if machine not in self.machines:
            raise UnknownNodeError(machine)
        return [edge for edge in self.edges if edge.dst == machine]

    def __repr__(self) -> str:
        return (
            f"ClusterLayout({len(self.machines)} machines, "
            f"{len(self.sources)} sources, {len(self.edges)} edges)"
        )
