"""Semantic loading: mdot AST -> solver layout objects.

Turns parsed machine blocks into :class:`~repro.core.graph.MachineLayout`
and the cluster block into :class:`~repro.core.graph.ClusterLayout`,
checking attribute types and required fields along the way.  Structural
validation (fraction conservation, cycles, dangling names) is done by the
layout classes themselves.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.graph import (
    AirEdge,
    AirRegion,
    ClusterAirEdge,
    ClusterLayout,
    Component,
    CoolingSource,
    HeatEdge,
    MachineLayout,
)
from ..core.power import ConstantPowerModel, LinearPowerModel
from ..errors import MdotSemanticError
from .ast import Attr, ClusterBlock, MachineBlock, MdotFile
from .parser import parse

#: Machine-level properties and whether they are required.
_MACHINE_PROPS = {
    "inlet": (str, True),
    "exhaust": (str, True),
    "inlet_temperature": (float, True),
    "fan_cfm": (float, True),
}

_COMPONENT_ATTRS = {
    "mass": (float, True),
    "specific_heat": (float, True),
    "p_base": (float, False),
    "p_max": (float, False),
    "power": (float, False),
    "monitored": (bool, False),
}


def _typed(attr: Attr, expected: type, context: str) -> object:
    value = attr.value
    if expected is float and isinstance(value, bool):
        raise MdotSemanticError(
            f"{context}: attribute {attr.name!r} must be a number (line {attr.line})"
        )
    if expected is float and isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, expected):
        return value
    raise MdotSemanticError(
        f"{context}: attribute {attr.name!r} must be {expected.__name__} "
        f"(line {attr.line})"
    )


def _check_known(attrs: Dict[str, Attr], known: Dict[str, tuple], context: str) -> None:
    for name, attr in attrs.items():
        if name not in known:
            raise MdotSemanticError(
                f"{context}: unknown attribute {name!r} (line {attr.line})"
            )


def load_machine(block: MachineBlock) -> MachineLayout:
    """Build a validated :class:`MachineLayout` from a machine block."""
    context = f"machine {block.name!r}"
    for name, (expected, required) in _MACHINE_PROPS.items():
        if required and name not in block.props:
            raise MdotSemanticError(f"{context}: missing property {name!r}")
    props: Dict[str, object] = {}
    for name, prop in block.props.items():
        if name not in _MACHINE_PROPS:
            raise MdotSemanticError(
                f"{context}: unknown property {name!r} (line {prop.line})"
            )
        expected = _MACHINE_PROPS[name][0]
        props[name] = _typed(
            Attr(name=name, value=prop.value, line=prop.line), expected, context
        )

    components: List[Component] = []
    for decl in block.components:
        c_context = f"{context}, component {decl.name!r}"
        _check_known(decl.attrs, _COMPONENT_ATTRS, c_context)
        for name, (expected, required) in _COMPONENT_ATTRS.items():
            if required and name not in decl.attrs:
                raise MdotSemanticError(f"{c_context}: missing attribute {name!r}")

        def get(name: str, default=None):
            if name not in decl.attrs:
                return default
            return _typed(decl.attrs[name], _COMPONENT_ATTRS[name][0], c_context)

        power = get("power")
        p_base = get("p_base")
        p_max = get("p_max")
        if power is not None:
            if p_base is not None or p_max is not None:
                raise MdotSemanticError(
                    f"{c_context}: give either 'power' or 'p_base'/'p_max', not both"
                )
            model = ConstantPowerModel(power)
        else:
            if p_base is None or p_max is None:
                raise MdotSemanticError(
                    f"{c_context}: needs 'power' or both 'p_base' and 'p_max'"
                )
            if p_base == p_max:
                model = ConstantPowerModel(p_base)
            else:
                model = LinearPowerModel(p_base=p_base, p_max=p_max)
        components.append(
            Component(
                name=decl.name,
                mass=get("mass"),
                specific_heat=get("specific_heat"),
                power_model=model,
                monitored=bool(get("monitored", False)),
            )
        )

    air_regions = [AirRegion(decl.name) for decl in block.airs]

    heat_edges: List[HeatEdge] = []
    air_edges: List[AirEdge] = []
    for edge in block.edges:
        e_context = f"{context}, edge {edge.src!r}->{edge.dst!r} (line {edge.line})"
        if edge.directed:
            if "fraction" not in edge.attrs:
                raise MdotSemanticError(f"{e_context}: air edge needs 'fraction'")
            _check_known(edge.attrs, {"fraction": (float, True)}, e_context)
            fraction = _typed(edge.attrs["fraction"], float, e_context)
            air_edges.append(AirEdge(edge.src, edge.dst, fraction))
        else:
            if "k" not in edge.attrs:
                raise MdotSemanticError(f"{e_context}: heat edge needs 'k'")
            _check_known(edge.attrs, {"k": (float, True)}, e_context)
            k = _typed(edge.attrs["k"], float, e_context)
            heat_edges.append(HeatEdge(edge.src, edge.dst, k))

    return MachineLayout(
        name=block.name,
        components=components,
        air_regions=air_regions,
        heat_edges=heat_edges,
        air_edges=air_edges,
        inlet=props["inlet"],
        exhaust=props["exhaust"],
        inlet_temperature=props["inlet_temperature"],
        fan_cfm=props["fan_cfm"],
    )


def load_cluster(
    block: ClusterBlock, machines: List[MachineLayout]
) -> ClusterLayout:
    """Build a validated :class:`ClusterLayout` from a cluster block."""
    sources: List[CoolingSource] = []
    for decl in block.sources:
        context = f"source {decl.name!r}"
        _check_known(
            decl.attrs, {"temperature": (float, True), "flow": (float, False)}, context
        )
        if "temperature" not in decl.attrs:
            raise MdotSemanticError(f"{context}: missing 'temperature'")
        temperature = _typed(decl.attrs["temperature"], float, context)
        flow = None
        if "flow" in decl.attrs:
            flow = _typed(decl.attrs["flow"], float, context)
        sources.append(
            CoolingSource(decl.name, supply_temperature=temperature, flow_m3s=flow)
        )
    edges: List[ClusterAirEdge] = []
    for edge in block.edges:
        context = f"cluster edge {edge.src!r}->{edge.dst!r} (line {edge.line})"
        if "fraction" not in edge.attrs:
            raise MdotSemanticError(f"{context}: needs 'fraction'")
        fraction = _typed(edge.attrs["fraction"], float, context)
        edges.append(ClusterAirEdge(edge.src, edge.dst, fraction))
    sinks = [decl.name for decl in block.sinks]
    if not sinks:
        raise MdotSemanticError("cluster block declares no sinks")
    return ClusterLayout(machines=machines, sources=sources, edges=edges, sinks=sinks)


def loads(source: str) -> Tuple[List[MachineLayout], Optional[ClusterLayout]]:
    """Load machine layouts (and an optional cluster) from mdot text."""
    tree: MdotFile = parse(source)
    machines = [load_machine(block) for block in tree.machines]
    cluster = None
    if tree.cluster is not None:
        if not machines:
            raise MdotSemanticError("cluster block without any machine blocks")
        cluster = load_cluster(tree.cluster, machines)
    return machines, cluster


def load_file(
    path: Union[str, Path]
) -> Tuple[List[MachineLayout], Optional[ClusterLayout]]:
    """Load an mdot file from disk."""
    with open(path) as handle:
        return loads(handle.read())
