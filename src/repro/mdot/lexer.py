"""Tokenizer for the mdot language.

Token kinds: quoted strings, numbers, identifiers/keywords, booleans, and
the punctuation ``{ } [ ] = , ;`` plus the two edge operators ``--`` and
``->``.  Comments run from ``//`` or ``#`` to end of line.  Every token
carries its line and column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import MdotSyntaxError

#: Token kinds.
STRING = "STRING"
NUMBER = "NUMBER"
IDENT = "IDENT"
BOOL = "BOOL"
PUNCT = "PUNCT"
EOF = "EOF"

_PUNCT_TWO = ("--", "->")
_PUNCT_ONE = "{}[]=,;"
_KEYWORD_BOOLS = {"true": True, "false": False}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize an mdot source string; raises MdotSyntaxError on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    idx = 0
    length = len(source)

    def error(message: str) -> MdotSyntaxError:
        return MdotSyntaxError(message, line, column)

    while idx < length:
        ch = source[idx]
        # -- whitespace ------------------------------------------------
        if ch == "\n":
            idx += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            idx += 1
            column += 1
            continue
        # -- comments ----------------------------------------------------
        if ch == "#" or source.startswith("//", idx):
            while idx < length and source[idx] != "\n":
                idx += 1
            continue
        # -- two-character operators --------------------------------------
        two = source[idx:idx + 2]
        if two in _PUNCT_TWO:
            tokens.append(Token(PUNCT, two, line, column))
            idx += 2
            column += 2
            continue
        # -- single punctuation -------------------------------------------
        if ch in _PUNCT_ONE:
            tokens.append(Token(PUNCT, ch, line, column))
            idx += 1
            column += 1
            continue
        # -- quoted string ---------------------------------------------
        if ch == '"':
            start_line, start_col = line, column
            idx += 1
            column += 1
            chars: List[str] = []
            while True:
                if idx >= length:
                    raise MdotSyntaxError("unterminated string", start_line, start_col)
                cur = source[idx]
                if cur == "\n":
                    raise MdotSyntaxError("newline in string", start_line, start_col)
                if cur == "\\":
                    if idx + 1 >= length:
                        raise MdotSyntaxError("dangling escape", line, column)
                    nxt = source[idx + 1]
                    escapes = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                    if nxt not in escapes:
                        raise MdotSyntaxError(f"bad escape \\{nxt}", line, column)
                    chars.append(escapes[nxt])
                    idx += 2
                    column += 2
                    continue
                if cur == '"':
                    idx += 1
                    column += 1
                    break
                chars.append(cur)
                idx += 1
                column += 1
            tokens.append(Token(STRING, "".join(chars), start_line, start_col))
            continue
        # -- number -----------------------------------------------------
        if ch.isdigit() or (ch in "+-." and idx + 1 < length
                            and (source[idx + 1].isdigit() or source[idx + 1] == ".")):
            start_line, start_col = line, column
            start = idx
            idx += 1
            while idx < length and (source[idx].isdigit() or source[idx] in ".eE+-"):
                # Only allow +/- immediately after an exponent marker.
                if source[idx] in "+-" and source[idx - 1] not in "eE":
                    break
                idx += 1
            text = source[start:idx]
            try:
                value = float(text)
            except ValueError:
                raise MdotSyntaxError(f"bad number {text!r}", start_line, start_col)
            column += idx - start
            tokens.append(Token(NUMBER, value, start_line, start_col))
            continue
        # -- identifier / keyword ------------------------------------------
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column
            start = idx
            while idx < length and (source[idx].isalnum() or source[idx] == "_"):
                idx += 1
            text = source[start:idx]
            column += idx - start
            if text in _KEYWORD_BOOLS:
                tokens.append(Token(BOOL, _KEYWORD_BOOLS[text], start_line, start_col))
            else:
                tokens.append(Token(IDENT, text, start_line, start_col))
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token(EOF, None, line, column))
    return tokens
