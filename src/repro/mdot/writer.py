"""Serialize layouts back to mdot text, and export to plain graphviz dot.

Round-tripping (``loads(dumps(layout))``) is lossless for everything the
layout model carries; the graphviz export exists because "the language
enables freely available programs to draw the graphs for visualizing the
system" — the exported dot renders with stock graphviz.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.graph import ClusterLayout, MachineLayout
from ..core.power import ConstantPowerModel, PowerModel


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _number(value: float) -> str:
    text = f"{value:.10g}"
    return text


def _power_attrs(model: PowerModel) -> str:
    if isinstance(model, ConstantPowerModel):
        return f"power={_number(model.watts)}"
    return f"p_base={_number(model.idle_power)}, p_max={_number(model.max_power)}"


def dump_machine(layout: MachineLayout) -> str:
    """mdot source for one machine block."""
    lines: List[str] = [f"machine {_quote(layout.name)} {{"]
    lines.append(f"  inlet = {_quote(layout.inlet)};")
    lines.append(f"  exhaust = {_quote(layout.exhaust)};")
    lines.append(f"  inlet_temperature = {_number(layout.inlet_temperature)};")
    lines.append(f"  fan_cfm = {_number(layout.fan_cfm)};")
    lines.append("")
    for component in layout.components.values():
        attrs = [
            f"mass={_number(component.mass)}",
            f"specific_heat={_number(component.specific_heat)}",
            _power_attrs(component.power_model),
        ]
        if component.monitored:
            attrs.append("monitored=true")
        lines.append(
            f"  component {_quote(component.name)} [{', '.join(attrs)}];"
        )
    lines.append("")
    for region in layout.air_regions.values():
        lines.append(f"  air {_quote(region.name)};")
    lines.append("")
    for edge in layout.heat_edges:
        lines.append(
            f"  {_quote(edge.a)} -- {_quote(edge.b)} [k={_number(edge.k)}];"
        )
    lines.append("")
    for edge in layout.air_edges:
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)} "
            f"[fraction={_number(edge.fraction)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dump_cluster(cluster: ClusterLayout) -> str:
    """mdot source for the cluster block (machines serialized separately)."""
    lines: List[str] = ["cluster {"]
    for source in cluster.sources.values():
        attrs = [f"temperature={_number(source.supply_temperature)}"]
        if source.flow_m3s is not None:
            attrs.append(f"flow={_number(source.flow_m3s)}")
        lines.append(f"  source {_quote(source.name)} [{', '.join(attrs)}];")
    for sink in cluster.sinks:
        lines.append(f"  sink {_quote(sink)};")
    for edge in cluster.edges:
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)} "
            f"[fraction={_number(edge.fraction)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dumps(
    machines: Sequence[MachineLayout], cluster: Optional[ClusterLayout] = None
) -> str:
    """Full mdot source for a set of machines and an optional cluster."""
    parts = [dump_machine(machine) for machine in machines]
    if cluster is not None:
        parts.append(dump_cluster(cluster))
    return "\n".join(parts)


def to_graphviz(layout: MachineLayout) -> str:
    """Plain graphviz dot rendering both graphs of one machine.

    Heat edges render undirected (``dir=none``, red); air edges render as
    blue arrows labelled with their fraction.  Components are boxes, air
    regions ellipses.
    """
    lines = [f"digraph {_quote(layout.name)} {{", "  rankdir=LR;"]
    for component in layout.components.values():
        lines.append(f"  {_quote(component.name)} [shape=box];")
    for region in layout.air_regions.values():
        lines.append(f"  {_quote(region.name)} [shape=ellipse];")
    for edge in layout.heat_edges:
        lines.append(
            f"  {_quote(edge.a)} -> {_quote(edge.b)} "
            f"[dir=none, color=red, label=\"k={_number(edge.k)}\"];"
        )
    for edge in layout.air_edges:
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)} "
            f"[color=blue, label=\"{_number(edge.fraction)}\"];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
