"""The mdot graph-description language: lexer, parser, loader, writer."""

from .loader import load_file, loads
from .parser import parse
from .writer import dump_cluster, dump_machine, dumps, to_graphviz

__all__ = [
    "dump_cluster", "dump_machine", "dumps", "load_file", "loads",
    "parse", "to_graphviz",
]
