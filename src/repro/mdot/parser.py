"""Recursive-descent parser for the mdot language.

Grammar (see :mod:`repro.mdot.ast` for the surface syntax):

.. code-block:: text

    file         := (machine_block | cluster_block)*
    machine_block:= 'machine' STRING '{' machine_stmt* '}'
    machine_stmt := prop | component | air | edge
    prop         := IDENT '=' value ';'
    component    := 'component' STRING attrs? ';'
    air          := 'air' STRING ';'
    edge         := STRING ('--' | '->') STRING attrs? ';'
    cluster_block:= 'cluster' '{' cluster_stmt* '}'
    cluster_stmt := source | sink | edge
    source       := 'source' STRING attrs? ';'
    sink         := 'sink' STRING ';'
    attrs        := '[' IDENT '=' value (',' IDENT '=' value)* ']'
    value        := NUMBER | STRING | BOOL
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import MdotSyntaxError
from . import lexer
from .ast import (
    AirDecl,
    Attr,
    AttrValue,
    ClusterBlock,
    ComponentDecl,
    EdgeDecl,
    MachineBlock,
    MdotFile,
    PropDecl,
    SinkDecl,
    SourceDecl,
)


class _Parser:
    def __init__(self, tokens: List[lexer.Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing --------------------------------------------------

    @property
    def _current(self) -> lexer.Token:
        return self._tokens[self._pos]

    def _error(self, message: str) -> MdotSyntaxError:
        tok = self._current
        return MdotSyntaxError(message, tok.line, tok.column)

    def _advance(self) -> lexer.Token:
        tok = self._current
        if tok.kind != lexer.EOF:
            self._pos += 1
        return tok

    def _expect_punct(self, value: str) -> lexer.Token:
        tok = self._current
        if tok.kind != lexer.PUNCT or tok.value != value:
            raise self._error(f"expected {value!r}, found {tok.value!r}")
        return self._advance()

    def _expect_string(self, what: str) -> lexer.Token:
        tok = self._current
        if tok.kind != lexer.STRING:
            raise self._error(f"expected {what} (a quoted string), found {tok.value!r}")
        return self._advance()

    def _at_punct(self, value: str) -> bool:
        tok = self._current
        return tok.kind == lexer.PUNCT and tok.value == value

    def _at_ident(self, value: Optional[str] = None) -> bool:
        tok = self._current
        if tok.kind != lexer.IDENT:
            return False
        return value is None or tok.value == value

    # -- grammar ----------------------------------------------------------

    def parse_file(self) -> MdotFile:
        result = MdotFile()
        while self._current.kind != lexer.EOF:
            if self._at_ident("machine"):
                result.machines.append(self._machine_block())
            elif self._at_ident("cluster"):
                if result.cluster is not None:
                    raise self._error("only one cluster block is allowed")
                result.cluster = self._cluster_block()
            else:
                raise self._error(
                    f"expected 'machine' or 'cluster', found {self._current.value!r}"
                )
        return result

    def _machine_block(self) -> MachineBlock:
        keyword = self._advance()  # 'machine'
        name = self._expect_string("machine name")
        block = MachineBlock(name=str(name.value), line=keyword.line)
        self._expect_punct("{")
        while not self._at_punct("}"):
            if self._current.kind == lexer.EOF:
                raise self._error("unterminated machine block")
            self._machine_statement(block)
        self._expect_punct("}")
        return block

    def _machine_statement(self, block: MachineBlock) -> None:
        if self._at_ident("component"):
            tok = self._advance()
            name = self._expect_string("component name")
            attrs = self._maybe_attrs()
            self._expect_punct(";")
            block.components.append(
                ComponentDecl(name=str(name.value), attrs=attrs, line=tok.line)
            )
        elif self._at_ident("air"):
            tok = self._advance()
            name = self._expect_string("air-region name")
            self._expect_punct(";")
            block.airs.append(AirDecl(name=str(name.value), line=tok.line))
        elif self._current.kind == lexer.STRING:
            block.edges.append(self._edge())
        elif self._current.kind == lexer.IDENT:
            prop = self._prop()
            if prop.name in block.props:
                raise MdotSyntaxError(
                    f"duplicate property {prop.name!r}", prop.line, 1
                )
            block.props[prop.name] = prop
        else:
            raise self._error(f"unexpected {self._current.value!r} in machine block")

    def _prop(self) -> PropDecl:
        name = self._advance()
        self._expect_punct("=")
        value = self._value()
        self._expect_punct(";")
        return PropDecl(name=str(name.value), value=value, line=name.line)

    def _edge(self) -> EdgeDecl:
        src = self._expect_string("edge endpoint")
        tok = self._current
        if self._at_punct("--"):
            directed = False
        elif self._at_punct("->"):
            directed = True
        else:
            raise self._error(f"expected '--' or '->', found {tok.value!r}")
        self._advance()
        dst = self._expect_string("edge endpoint")
        attrs = self._maybe_attrs()
        self._expect_punct(";")
        return EdgeDecl(
            src=str(src.value),
            dst=str(dst.value),
            directed=directed,
            attrs=attrs,
            line=src.line,
        )

    def _cluster_block(self) -> ClusterBlock:
        keyword = self._advance()  # 'cluster'
        block = ClusterBlock(line=keyword.line)
        self._expect_punct("{")
        while not self._at_punct("}"):
            if self._current.kind == lexer.EOF:
                raise self._error("unterminated cluster block")
            if self._at_ident("source"):
                tok = self._advance()
                name = self._expect_string("source name")
                attrs = self._maybe_attrs()
                self._expect_punct(";")
                block.sources.append(
                    SourceDecl(name=str(name.value), attrs=attrs, line=tok.line)
                )
            elif self._at_ident("sink"):
                tok = self._advance()
                name = self._expect_string("sink name")
                self._expect_punct(";")
                block.sinks.append(SinkDecl(name=str(name.value), line=tok.line))
            elif self._current.kind == lexer.STRING:
                edge = self._edge()
                if not edge.directed:
                    raise MdotSyntaxError(
                        "cluster edges must be directed ('->')", edge.line, 1
                    )
                block.edges.append(edge)
            else:
                raise self._error(
                    f"unexpected {self._current.value!r} in cluster block"
                )
        self._expect_punct("}")
        return block

    def _maybe_attrs(self) -> Dict[str, Attr]:
        attrs: Dict[str, Attr] = {}
        if not self._at_punct("["):
            return attrs
        self._advance()
        while True:
            name_tok = self._current
            if name_tok.kind != lexer.IDENT:
                raise self._error(
                    f"expected attribute name, found {name_tok.value!r}"
                )
            self._advance()
            self._expect_punct("=")
            value = self._value()
            name = str(name_tok.value)
            if name in attrs:
                raise MdotSyntaxError(
                    f"duplicate attribute {name!r}", name_tok.line, name_tok.column
                )
            attrs[name] = Attr(name=name, value=value, line=name_tok.line)
            if self._at_punct(","):
                self._advance()
                continue
            break
        self._expect_punct("]")
        return attrs

    def _value(self) -> AttrValue:
        tok = self._current
        if tok.kind in (lexer.NUMBER, lexer.STRING, lexer.BOOL):
            self._advance()
            return tok.value  # type: ignore[return-value]
        raise self._error(f"expected a value, found {tok.value!r}")


def parse(source: str) -> MdotFile:
    """Parse mdot source text into an :class:`~repro.mdot.ast.MdotFile`."""
    return _Parser(lexer.tokenize(source)).parse_file()
