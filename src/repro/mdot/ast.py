"""Abstract syntax tree for the mdot graph-description language.

Section 2.3: "The user can specify the input graphs to the solver using
our modified version of the language dot.  Our modifications mainly
involved changing its syntax to allow the specification of air fractions,
component masses, etc."

An mdot file contains ``machine`` blocks (one per machine layout) and at
most one ``cluster`` block.  Inside a machine block:

* ``component "CPU" [mass=0.151, specific_heat=896, p_base=7, p_max=31,
  monitored=true];`` declares a hardware component vertex;
* ``air "CPU Air";`` declares an air-region vertex;
* ``"CPU" -- "CPU Air" [k=0.75];`` declares an undirected heat edge;
* ``"Inlet" -> "Disk Air" [fraction=0.4];`` declares a directed air edge;
* ``inlet = "Inlet"; exhaust = "Exhaust"; inlet_temperature = 21.6;
  fan_cfm = 38.6;`` set the machine's boundary conditions.

A cluster block declares ``source``/``sink`` vertices and directed
fraction-labelled edges between sources, machines, and sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

#: Attribute values an mdot attribute list may carry.
AttrValue = Union[float, str, bool]


@dataclass(frozen=True)
class Attr:
    """One ``name=value`` attribute with its source position."""

    name: str
    value: AttrValue
    line: int


@dataclass(frozen=True)
class ComponentDecl:
    """``component "name" [attrs];``"""

    name: str
    attrs: Dict[str, Attr]
    line: int


@dataclass(frozen=True)
class AirDecl:
    """``air "name";``"""

    name: str
    line: int


@dataclass(frozen=True)
class EdgeDecl:
    """``"a" -- "b" [attrs];`` (heat) or ``"a" -> "b" [attrs];`` (air)."""

    src: str
    dst: str
    directed: bool
    attrs: Dict[str, Attr]
    line: int


@dataclass(frozen=True)
class PropDecl:
    """``name = value;`` machine-level property."""

    name: str
    value: AttrValue
    line: int


@dataclass
class MachineBlock:
    """One ``machine "name" { ... }`` block."""

    name: str
    line: int
    components: List[ComponentDecl] = field(default_factory=list)
    airs: List[AirDecl] = field(default_factory=list)
    edges: List[EdgeDecl] = field(default_factory=list)
    props: Dict[str, PropDecl] = field(default_factory=dict)


@dataclass(frozen=True)
class SourceDecl:
    """``source "name" [temperature=21.6];``"""

    name: str
    attrs: Dict[str, Attr]
    line: int


@dataclass(frozen=True)
class SinkDecl:
    """``sink "name";``"""

    name: str
    line: int


@dataclass
class ClusterBlock:
    """The ``cluster { ... }`` block."""

    line: int
    sources: List[SourceDecl] = field(default_factory=list)
    sinks: List[SinkDecl] = field(default_factory=list)
    edges: List[EdgeDecl] = field(default_factory=list)


@dataclass
class MdotFile:
    """A parsed mdot source file."""

    machines: List[MachineBlock] = field(default_factory=list)
    cluster: Optional[ClusterBlock] = None
