"""fiddle: the thermal-emergency tool (paper section 2.3).

"To simulate temperature emergencies and other environmental changes, we
created a tool called fiddle.  Fiddle can force the solver to change any
constant or temperature on-line."  Examples from the paper: raising a
machine's inlet temperature to emulate an air-conditioning failure, and
changing air-flow or power-consumption information to emulate multi-speed
fans or CPU-driven thermal management (DVFS / clock throttling).

:class:`Fiddle` is the programmatic face; each verb maps to a solver
mutation:

==============  ====================================================
verb            effect
==============  ====================================================
``temperature`` force a node temperature (``inlet`` installs an
                override until cleared)
``k``           change a heat edge's conductance
``fraction``    change an air edge's fraction
``fan``         change a machine's fan flow (ft^3/min)
``power``       scale a component's power draw (DVFS/throttling)
``source``      change a cluster cooling source's supply temperature
``fraction``    (cluster) change an inter-machine air edge's fraction
``zone``        change a topology zone's cold-aisle supply temperature
``recirculation`` change a topology recirculation edge's weight
``restore``     clear a machine's inlet override
==============  ====================================================

The string command form (:meth:`Fiddle.command`) accepts shell-like
lines — ``fiddle machine1 temperature inlet 30`` — with quoting for
multi-word node names; :mod:`repro.fiddle.script` builds timed scripts
out of these.
"""

from __future__ import annotations

import shlex
from typing import List, Optional, Sequence

from ..core.solver import Solver
from ..errors import FiddleError

#: Verbs and the number of target tokens they take before the value.
_VERBS = {
    "temperature": 1,
    "k": 2,
    "fraction": 2,
    "fan": 0,
    "power": 1,
    "restore": 0,
}


class Fiddle:
    """Runtime mutator for a solver (single machine or cluster)."""

    def __init__(self, solver: Solver) -> None:
        self._solver = solver
        #: Audit log of applied commands, for experiment write-ups.
        self.log: List[str] = []

    # -- verbs ------------------------------------------------------------

    def temperature(self, machine: str, node: str, value: float) -> None:
        """Force a node's temperature (Celsius)."""
        self._solver.force_temperature(machine, node, value)
        self._record(f"{machine} temperature {node} {value}")

    def k(self, machine: str, a: str, b: str, value: float) -> None:
        """Change the heat-transfer constant between two nodes (W/K)."""
        self._solver.machine(machine).set_k(a, b, value)
        self._record(f"{machine} k {a}|{b} {value}")

    def fraction(self, machine: str, src: str, dst: str, value: float) -> None:
        """Change an air edge's flow fraction."""
        self._solver.machine(machine).set_fraction(src, dst, value)
        self._record(f"{machine} fraction {src}|{dst} {value}")

    def fan(self, machine: str, cfm: float) -> None:
        """Change a machine's fan flow (emulates multi-speed fans)."""
        self._solver.machine(machine).set_fan_cfm(cfm)
        self._record(f"{machine} fan {cfm}")

    def power(self, machine: str, component: str, factor: float) -> None:
        """Scale a component's power (emulates DVFS / clock throttling)."""
        self._solver.machine(machine).set_power_scale(component, factor)
        self._record(f"{machine} power {component} {factor}")

    def source(self, source: str, value: float) -> None:
        """Change a cluster cooling source's supply temperature."""
        self._solver.set_source_temperature(source, value)
        self._record(f"cluster source {source} {value}")

    def cluster_fraction(self, src: str, dst: str, value: float) -> None:
        """Change an inter-machine air edge's fraction (e.g. a failed damper)."""
        self._solver.set_cluster_fraction(src, dst, value)
        self._record(f"cluster fraction {src}|{dst} {value}")

    def zone(self, zone: str, value: float) -> None:
        """Change a topology zone's cold-aisle supply temperature."""
        self._solver.set_zone_supply(zone, value)
        self._record(f"cluster zone {zone} {value}")

    def recirculation(self, src: str, dst: str, value: float) -> None:
        """Change a topology recirculation edge's weight."""
        self._solver.set_recirculation(src, dst, value)
        self._record(f"cluster recirculation {src}|{dst} {value}")

    def restore(self, machine: str) -> None:
        """Clear a machine's inlet override (cooling restored)."""
        self._solver.clear_inlet_override(machine)
        self._record(f"{machine} restore")

    def _record(self, entry: str) -> None:
        self.log.append(entry)

    # -- command-string form ------------------------------------------------

    def command(self, line: str) -> None:
        """Apply one shell-style fiddle command line.

        Forms (node names with spaces need quotes)::

            fiddle <machine> temperature <node> <value>
            fiddle <machine> k <node-a> <node-b> <value>
            fiddle <machine> fraction <src> <dst> <value>
            fiddle <machine> fan <cfm>
            fiddle <machine> power <component> <factor>
            fiddle <machine> restore
            fiddle cluster source <source> <value>
            fiddle cluster fraction <src> <dst> <value>
            fiddle cluster zone <zone> <value>
            fiddle cluster recirculation <src> <dst> <value>

        The leading ``fiddle`` word is optional.
        """
        tokens = shlex.split(line, comments=True)
        if not tokens:
            raise FiddleError("empty fiddle command")
        if tokens[0] == "fiddle":
            tokens = tokens[1:]
        if len(tokens) < 2:
            raise FiddleError(f"short fiddle command: {line!r}")
        target, verb, rest = tokens[0], tokens[1], tokens[2:]
        if target == "cluster":
            if verb == "source" and len(rest) == 2:
                self.source(rest[0], _number(rest[1], line))
                return
            if verb == "fraction" and len(rest) == 3:
                self.cluster_fraction(rest[0], rest[1], _number(rest[2], line))
                return
            if verb == "zone" and len(rest) == 2:
                self.zone(rest[0], _number(rest[1], line))
                return
            if verb == "recirculation" and len(rest) == 3:
                self.recirculation(rest[0], rest[1], _number(rest[2], line))
                return
            raise FiddleError(
                "cluster commands are 'cluster source <name> <value>', "
                "'cluster fraction <src> <dst> <value>', "
                "'cluster zone <zone> <value>', or "
                f"'cluster recirculation <src> <dst> <value>': {line!r}"
            )
        if verb not in _VERBS:
            raise FiddleError(f"unknown fiddle verb {verb!r} in {line!r}")
        n_targets = _VERBS[verb]
        needs_value = verb != "restore"
        expected = n_targets + (1 if needs_value else 0)
        if len(rest) != expected:
            raise FiddleError(
                f"verb {verb!r} takes {expected} arguments, got {len(rest)}: {line!r}"
            )
        if verb == "temperature":
            self.temperature(target, rest[0], _number(rest[1], line))
        elif verb == "k":
            self.k(target, rest[0], rest[1], _number(rest[2], line))
        elif verb == "fraction":
            self.fraction(target, rest[0], rest[1], _number(rest[2], line))
        elif verb == "fan":
            self.fan(target, _number(rest[0], line))
        elif verb == "power":
            self.power(target, rest[0], _number(rest[1], line))
        elif verb == "restore":
            self.restore(target)


def _number(token: str, line: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise FiddleError(f"expected a number, got {token!r} in {line!r}") from None
