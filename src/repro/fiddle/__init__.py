"""fiddle: runtime thermal-emergency injection and scripted emergencies."""

from .script import ScriptRunner, events_from_script, parse_script
from .tool import Fiddle

__all__ = ["Fiddle", "ScriptRunner", "events_from_script", "parse_script"]
