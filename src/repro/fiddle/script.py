"""fiddle scripts: timed sequences of fiddle commands (Figure 4).

The paper drives emergencies with small shell scripts::

    #!/bin/bash
    sleep 100
    fiddle machine1 temperature inlet 30
    sleep 200
    fiddle machine1 temperature inlet 21.6

:func:`parse_script` accepts exactly that surface syntax (``sleep N``
accumulates simulated time; ``fiddle ...`` lines are
:mod:`repro.fiddle.tool` commands; ``#`` comments and the shebang are
ignored) and produces :class:`TimedCommand` entries.  These convert to
:class:`~repro.core.trace.TimedEvent` objects for the offline solver, or
are applied live by :class:`ScriptRunner` inside a simulation loop.

The grammar also admits ``fault`` statements (see
:mod:`repro.faults.schedule`), so thermal emergencies and infrastructure
failures compose in one script::

    sleep 480
    fiddle machine1 temperature inlet 38.6
    fault net loss 0.05

Fault statements need a :class:`~repro.faults.injector.FaultInjector` at
run time; :class:`ScriptRunner` routes them there, while the offline
solver path (:func:`to_events`) rejects them — the offline solver has no
sensors or daemons to break.

:func:`write_script` renders timed commands back to script text;
``parse_script(write_script(parse_script(s)))`` is the identity on the
parsed form.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.solver import Solver
from ..core.trace import TimedEvent
from ..errors import FaultError, FiddleError, FiddleScriptError
from ..faults.schedule import is_fault_command, parse_fault_command
from ..telemetry import ensure as _ensure_telemetry
from .tool import Fiddle


@dataclass(frozen=True)
class TimedCommand:
    """One fiddle command scheduled at an absolute simulated time."""

    time: float
    command: str


def parse_script(text: str) -> List[TimedCommand]:
    """Parse a Figure 4-style fiddle script into timed commands."""
    commands: List[TimedCommand] = []
    clock = 0.0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = shlex.split(line, comments=True)
        if not tokens:
            continue
        if tokens[0] == "sleep":
            if len(tokens) != 2:
                raise FiddleScriptError(
                    f"line {lineno}: sleep takes one argument", line=lineno
                )
            try:
                delay = float(tokens[1])
            except ValueError:
                raise FiddleScriptError(
                    f"line {lineno}: bad sleep duration {tokens[1]!r}",
                    line=lineno,
                ) from None
            if delay < 0.0:
                raise FiddleScriptError(
                    f"line {lineno}: negative sleep", line=lineno
                )
            clock += delay
        elif tokens[0] == "fiddle":
            commands.append(TimedCommand(time=clock, command=line))
        elif tokens[0] == "fault":
            try:
                parse_fault_command(line)  # validate eagerly, like fiddle's shape
            except FaultError as exc:
                # parse_fault_command and FaultSpec validation raise only
                # FaultError; anything else is a genuine bug and should
                # propagate rather than be masked as a script error.
                raise FiddleScriptError(
                    f"line {lineno}: {exc}", line=lineno
                ) from None
            commands.append(TimedCommand(time=clock, command=line))
        else:
            raise FiddleScriptError(
                f"line {lineno}: expected 'sleep', 'fiddle' or 'fault', "
                f"got {tokens[0]!r}",
                line=lineno,
            )
    return commands


def write_script(commands: Sequence[TimedCommand]) -> str:
    """Render timed commands back to Figure 4 script text.

    Emits a shebang, ``sleep`` lines for the gaps, and the command lines
    in time order.  Round-trips: parsing the output reproduces the input
    commands exactly.
    """
    lines = ["#!/bin/bash"]
    clock = 0.0
    for command in sorted(commands, key=lambda c: c.time):
        if command.time > clock:
            # repr() is the shortest exact form, so parsing round-trips.
            lines.append(f"sleep {command.time - clock!r}")
            clock = command.time
        lines.append(command.command)
    return "\n".join(lines) + "\n"


def to_events(commands: Sequence[TimedCommand]) -> List[TimedEvent]:
    """Convert timed commands into offline-solver events.

    Fault statements are rejected: the offline solver has no sensors,
    datagrams, or daemons to break — run those through
    :class:`~repro.cluster.simulation.ClusterSimulation` instead.
    """

    def make_action(command: str):
        def action(solver: Solver) -> None:
            Fiddle(solver).command(command)

        return action

    for cmd in commands:
        if is_fault_command(cmd.command):
            raise FiddleError(
                f"fault statements need a running cluster simulation, not "
                f"the offline solver: {cmd.command!r}"
            )
    return [
        TimedEvent(time=cmd.time, action=make_action(cmd.command), label=cmd.command)
        for cmd in commands
    ]


def events_from_script(text: str) -> List[TimedEvent]:
    """Parse a script and return offline-solver events in one step."""
    return to_events(parse_script(text))


class ScriptRunner:
    """Applies a parsed script against a live solver as time advances.

    Call :meth:`advance_to` with the current simulated time; every
    command whose timestamp has been reached fires exactly once, in
    order.  ``fiddle`` commands mutate the solver; ``fault`` commands go
    to the ``injector`` (required if the script contains any).
    """

    def __init__(
        self,
        solver: Solver,
        commands: Sequence[TimedCommand],
        injector: Optional[object] = None,
        telemetry=None,
    ) -> None:
        self._fiddle = Fiddle(solver)
        self._commands = sorted(commands, key=lambda c: c.time)
        self._next = 0
        self._injector = injector
        self.telemetry = _ensure_telemetry(telemetry)
        if injector is None and any(
            is_fault_command(c.command) for c in self._commands
        ):
            raise FiddleError(
                "script contains fault statements but no fault injector "
                "was provided"
            )

    @property
    def pending(self) -> int:
        """Commands not yet fired."""
        return len(self._commands) - self._next

    @property
    def commands(self) -> List[TimedCommand]:
        """The parsed commands, in firing order (snapshot)."""
        return list(self._commands)

    @property
    def fiddle(self) -> Fiddle:
        """The underlying Fiddle (exposes the audit log)."""
        return self._fiddle

    def fire(self, index: int) -> str:
        """Fire exactly one command (the event-kernel entry point).

        Commands fire strictly in order: ``index`` must be the cursor
        position, which the kernel guarantees because it schedules one
        event per command with the parse order as the tie-breaker.
        """
        if index != self._next:
            raise FiddleError(
                f"script commands must fire in order: expected index "
                f"{self._next}, got {index}"
            )
        entry = self._commands[index]
        if is_fault_command(entry.command):
            self._injector.inject(
                parse_fault_command(entry.command), now=entry.time
            )
        else:
            self._fiddle.command(entry.command)
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "fiddle_commands_total",
                    help="fiddle script commands applied to the solver.",
                ).inc()
                self.telemetry.event(
                    "fiddle_command", "fiddle", command=entry.command,
                )
        self._next += 1
        return entry.command

    def advance_to(self, time: float) -> List[str]:
        """Fire all commands due at or before ``time``; returns them."""
        fired: List[str] = []
        while (
            self._next < len(self._commands)
            and self._commands[self._next].time <= time
        ):
            fired.append(self.fire(self._next))
        return fired
