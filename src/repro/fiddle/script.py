"""fiddle scripts: timed sequences of fiddle commands (Figure 4).

The paper drives emergencies with small shell scripts::

    #!/bin/bash
    sleep 100
    fiddle machine1 temperature inlet 30
    sleep 200
    fiddle machine1 temperature inlet 21.6

:func:`parse_script` accepts exactly that surface syntax (``sleep N``
accumulates simulated time; ``fiddle ...`` lines are
:mod:`repro.fiddle.tool` commands; ``#`` comments and the shebang are
ignored) and produces :class:`TimedCommand` entries.  These convert to
:class:`~repro.core.trace.TimedEvent` objects for the offline solver, or
are applied live by :class:`ScriptRunner` inside a simulation loop.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import List, Sequence

from ..core.solver import Solver
from ..core.trace import TimedEvent
from ..errors import FiddleError
from .tool import Fiddle


@dataclass(frozen=True)
class TimedCommand:
    """One fiddle command scheduled at an absolute simulated time."""

    time: float
    command: str


def parse_script(text: str) -> List[TimedCommand]:
    """Parse a Figure 4-style fiddle script into timed commands."""
    commands: List[TimedCommand] = []
    clock = 0.0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = shlex.split(line, comments=True)
        if not tokens:
            continue
        if tokens[0] == "sleep":
            if len(tokens) != 2:
                raise FiddleError(f"line {lineno}: sleep takes one argument")
            try:
                delay = float(tokens[1])
            except ValueError:
                raise FiddleError(
                    f"line {lineno}: bad sleep duration {tokens[1]!r}"
                ) from None
            if delay < 0.0:
                raise FiddleError(f"line {lineno}: negative sleep")
            clock += delay
        elif tokens[0] == "fiddle":
            commands.append(TimedCommand(time=clock, command=line))
        else:
            raise FiddleError(
                f"line {lineno}: expected 'sleep' or 'fiddle', got {tokens[0]!r}"
            )
    return commands


def to_events(commands: Sequence[TimedCommand]) -> List[TimedEvent]:
    """Convert timed commands into offline-solver events."""

    def make_action(command: str):
        def action(solver: Solver) -> None:
            Fiddle(solver).command(command)

        return action

    return [
        TimedEvent(time=cmd.time, action=make_action(cmd.command), label=cmd.command)
        for cmd in commands
    ]


def events_from_script(text: str) -> List[TimedEvent]:
    """Parse a script and return offline-solver events in one step."""
    return to_events(parse_script(text))


class ScriptRunner:
    """Applies a parsed script against a live solver as time advances.

    Call :meth:`advance_to` with the current simulated time; every
    command whose timestamp has been reached fires exactly once, in
    order.
    """

    def __init__(self, solver: Solver, commands: Sequence[TimedCommand]) -> None:
        self._fiddle = Fiddle(solver)
        self._commands = sorted(commands, key=lambda c: c.time)
        self._next = 0

    @property
    def pending(self) -> int:
        """Commands not yet fired."""
        return len(self._commands) - self._next

    @property
    def fiddle(self) -> Fiddle:
        """The underlying Fiddle (exposes the audit log)."""
        return self._fiddle

    def advance_to(self, time: float) -> List[str]:
        """Fire all commands due at or before ``time``; returns them."""
        fired: List[str] = []
        while (
            self._next < len(self._commands)
            and self._commands[self._next].time <= time
        ):
            command = self._commands[self._next].command
            self._fiddle.command(command)
            fired.append(command)
            self._next += 1
        return fired
