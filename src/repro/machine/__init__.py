"""The simulated physical server Mercury is validated against."""

from .groundtruth import DEFAULT_TRUTH, GroundTruthServer, PhysicalTruth
from .procfs import ProcReader, SimulatedProcFS
from .server import SimulatedServer
from .workloads import (
    ConstantWorkload,
    MixedBenchmark,
    StepWorkload,
    Workload,
    cpu_microbenchmark,
    disk_microbenchmark,
)

__all__ = [
    "ConstantWorkload", "DEFAULT_TRUTH", "GroundTruthServer",
    "MixedBenchmark", "PhysicalTruth", "ProcReader", "SimulatedProcFS",
    "SimulatedServer", "StepWorkload", "Workload",
    "cpu_microbenchmark", "disk_microbenchmark",
]
