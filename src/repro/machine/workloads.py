"""Workloads that drive the simulated server (paper section 3.1).

The validation uses three benchmarks:

* a **CPU microbenchmark** "putting it through various levels of
  utilization interspersed with idle periods" (Figure 5);
* a **disk microbenchmark** doing the same for the disk (Figure 6);
* a **"more challenging" mixed benchmark** that "exercises the CPU and
  disk at the same time, generating widely different utilizations over
  time ... utilizations change constantly and quickly" (Figures 7-8).

Each workload is a deterministic function from time to per-component
utilization; the mixed benchmark is seeded so experiments repeat exactly.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..config import table1


class Workload(ABC):
    """A deterministic utilization schedule for one machine."""

    @abstractmethod
    def utilizations(self, time: float) -> Dict[str, float]:
        """Component utilizations in effect at simulated time ``time``."""

    @property
    @abstractmethod
    def duration(self) -> float:
        """Total workload length in seconds."""


@dataclass(frozen=True)
class Phase:
    """A constant-utilization phase of a step workload."""

    length: float
    utilizations: Dict[str, float]


class StepWorkload(Workload):
    """A sequence of constant phases; idle after the last phase ends."""

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ValueError("at least one phase is required")
        self._phases: List[Phase] = list(phases)
        starts = []
        t = 0.0
        for phase in self._phases:
            if phase.length <= 0.0:
                raise ValueError("phase lengths must be positive")
            starts.append(t)
            t += phase.length
        self._starts = starts
        self._duration = t

    @property
    def duration(self) -> float:
        return self._duration

    def utilizations(self, time: float) -> Dict[str, float]:
        if time < 0.0 or time >= self._duration:
            return {}
        # Linear scan is fine: phase counts are tens, and callers sample
        # sequentially anyway.
        for start, phase in zip(reversed(self._starts), reversed(self._phases)):
            if time >= start:
                return dict(phase.utilizations)
        return {}


def cpu_microbenchmark(
    levels: Sequence[float] = (0.25, 0.50, 0.75, 1.00, 0.60, 0.30),
    busy_length: float = 1500.0,
    idle_length: float = 800.0,
    component: str = table1.CPU,
) -> StepWorkload:
    """The Figure 5 calibration benchmark: utilization steps with idle gaps.

    Defaults give a ~14,000 s run like the paper's.
    """
    phases: List[Phase] = []
    for level in levels:
        phases.append(Phase(busy_length, {component: level, table1.DISK_PLATTERS: 0.0}))
        phases.append(Phase(idle_length, {component: 0.0, table1.DISK_PLATTERS: 0.0}))
    return StepWorkload(phases)


def disk_microbenchmark(
    levels: Sequence[float] = (0.30, 0.60, 0.90, 1.00, 0.50, 0.20),
    busy_length: float = 1500.0,
    idle_length: float = 800.0,
) -> StepWorkload:
    """The Figure 6 calibration benchmark: disk utilization steps."""
    phases: List[Phase] = []
    for level in levels:
        phases.append(Phase(busy_length, {table1.DISK_PLATTERS: level, table1.CPU: 0.0}))
        phases.append(Phase(idle_length, {table1.DISK_PLATTERS: 0.0, table1.CPU: 0.0}))
    return StepWorkload(phases)


class MixedBenchmark(Workload):
    """The "challenging" validation benchmark of Figures 7-8.

    CPU and disk utilizations change together, rapidly and widely: every
    30-90 s (drawn from a seeded RNG) both components jump to new random
    levels, occasionally to full blast or idle.
    """

    def __init__(self, duration: float = 5000.0, seed: int = 7) -> None:
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        self._duration = duration
        rng = random.Random(seed)
        phases: List[Phase] = []
        t = 0.0
        while t < duration:
            length = rng.uniform(30.0, 90.0)
            roll = rng.random()
            if roll < 0.15:
                cpu, disk = 0.0, 0.0  # idle burst
            elif roll < 0.30:
                cpu, disk = 1.0, rng.random()  # CPU blast
            elif roll < 0.45:
                cpu, disk = rng.random(), 1.0  # disk blast
            else:
                cpu, disk = rng.random(), rng.random()
            phases.append(
                Phase(length, {table1.CPU: cpu, table1.DISK_PLATTERS: disk})
            )
            t += length
        self._steps = StepWorkload(phases)

    @property
    def duration(self) -> float:
        return self._duration

    def utilizations(self, time: float) -> Dict[str, float]:
        if time >= self._duration:
            return {}
        return self._steps.utilizations(time)


class ConstantWorkload(Workload):
    """Fixed utilizations forever; handy for steady-state studies."""

    def __init__(self, utilizations: Dict[str, float], duration: float = float("inf")) -> None:
        self._utils = dict(utilizations)
        self._duration = duration

    @property
    def duration(self) -> float:
        return self._duration

    def utilizations(self, time: float) -> Dict[str, float]:
        if time >= self._duration:
            return {}
        return dict(self._utils)
